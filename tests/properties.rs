//! Property-based integration tests over the cross-crate invariants.

use cs_traffic::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random "traffic" matrix with speeds in 3..80 km/h.
fn speed_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (2..max_rows, 2..max_cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(3.0f64..80.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Completion output always has the input's shape and finite values,
    /// for any mask that leaves at least one observation.
    #[test]
    fn completion_shape_and_finiteness(
        truth in speed_matrix(20, 16),
        integrity in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(truth.rows(), truth.cols(), integrity, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        prop_assume!(tcm.observed_count() > 0);
        let cfg = CsConfig { rank: 2, lambda: 0.5, iterations: 20, ..CsConfig::default() };
        let est = complete_matrix(&tcm, &cfg).unwrap();
        prop_assert_eq!(est.shape(), truth.shape());
        prop_assert!(est.as_slice().iter().all(|v| v.is_finite()));
    }

    /// A rank-1 matrix with no noise is recovered near-exactly from half
    /// its entries, regardless of which half (compressive-sensing
    /// exactness on genuinely low-rank data).
    #[test]
    fn rank_one_matrix_recovered(
        row_scale in proptest::collection::vec(0.5f64..2.0, 12),
        col_scale in proptest::collection::vec(10.0f64..50.0, 10),
        seed in 0u64..1000,
    ) {
        let truth = Matrix::from_fn(12, 10, |i, j| row_scale[i] * col_scale[j]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(12, 10, 0.5, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        prop_assume!(tcm.observed_count() > 30);
        // A fully unobserved row/column is unrecoverable by *any*
        // completion method (no equation touches it); exact recovery is
        // only promised when every row and column is sampled.
        prop_assume!(probes::integrity::per_road(&tcm).iter().all(|&r| r > 0.0));
        prop_assume!(probes::integrity::per_slot(&tcm).iter().all(|&s| s > 0.0));
        let cfg = CsConfig { rank: 1, lambda: 1e-6, iterations: 60, ..CsConfig::default() };
        let est = complete_matrix(&tcm, &cfg).unwrap();
        let err = nmae_on_missing(&truth, &est, tcm.indicator());
        prop_assert!(err < 0.05, "NMAE {} for rank-1 recovery", err);
    }

    /// NMAE is zero iff the estimate matches the truth on missing cells;
    /// scaling truth and estimate together leaves it unchanged.
    #[test]
    fn nmae_scale_invariance(
        truth in speed_matrix(12, 10),
        scale in 0.1f64..10.0,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(truth.rows(), truth.cols(), 0.5, &mut rng);
        let est = truth.map(|v| v + 1.0);
        let e1 = nmae_on_missing(&truth, &est, &mask);
        let scaled_truth = truth.map(|v| v * scale);
        let scaled_est = est.map(|v| v * scale);
        let e2 = nmae_on_missing(&scaled_truth, &scaled_est, &mask);
        prop_assert!((e1 - e2).abs() < 1e-9, "{} vs {}", e1, e2);
        prop_assert!((nmae_on_missing(&truth, &truth, &mask)).abs() < 1e-12);
    }

    /// Baseline imputations preserve observed entries exactly.
    #[test]
    fn baselines_preserve_observations(
        truth in speed_matrix(14, 10),
        integrity in 0.2f64..0.8,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(truth.rows(), truth.cols(), integrity, &mut rng);
        let tcm = Tcm::complete(truth).masked(&mask).unwrap();
        prop_assume!(tcm.observed_count() > 0);
        for est in [
            naive_knn_impute(&tcm, 4),
            correlation_knn_impute(&tcm, 2),
        ] {
            for (i, j, v) in tcm.observed_entries() {
                prop_assert_eq!(est.get(i, j), v);
            }
        }
    }

    /// Masking then measuring integrity is consistent: the TCM integrity
    /// equals the number of kept cells over the total.
    #[test]
    fn integrity_matches_mask_density(
        truth in speed_matrix(16, 12),
        integrity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(truth.rows(), truth.cols(), integrity, &mut rng);
        let kept = mask.sum();
        let tcm = Tcm::complete(truth).masked(&mask).unwrap();
        let expected = kept / tcm.indicator().len() as f64;
        prop_assert!((tcm.integrity() - expected).abs() < 1e-12);
        // Per-road and per-slot marginals average back to the overall.
        let roads = probes::integrity::per_road(&tcm);
        let mean_road = roads.iter().sum::<f64>() / roads.len() as f64;
        prop_assert!((mean_road - tcm.integrity()).abs() < 1e-9);
    }

    /// Route validity holds for arbitrary od pairs on arbitrary grid
    /// cities: each returned path is connected and starts/ends right.
    #[test]
    fn routing_paths_are_connected(
        rows in 3usize..7,
        cols in 3usize..7,
        seed in 0u64..500,
    ) {
        let mut cfg = GridCityConfig::small_test();
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.seed = seed;
        let net = generate_grid_city(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some((from, to, route)) = roadnet::routing::random_trip(&net, &mut rng) {
            let mut cur = from;
            for &sid in &route.segments {
                let seg = net.segment(sid);
                prop_assert_eq!(seg.from, cur);
                cur = seg.to;
            }
            prop_assert_eq!(cur, to);
        }
    }

    /// Map matching a point on a segment always returns a geometrically
    /// coincident segment (forward or reverse twin).
    #[test]
    fn matching_snaps_to_geometry(
        seed in 0u64..500,
        t in 0.0f64..1.0,
    ) {
        let mut cfg = GridCityConfig::small_test();
        cfg.seed = seed;
        let net = generate_grid_city(&cfg);
        let index = SegmentIndex::build(&net, 100.0);
        let sid = SegmentId((seed % net.segment_count() as u64) as u32);
        let p = net.segment_point(sid, t);
        let m = index.match_point(&net, p, 20.0).expect("on-network point matches");
        prop_assert!(m.distance_m < 1e-6);
    }
}

/// Deterministic replay of the one case the old `.proptest-regressions`
/// file recorded for `rank_one_matrix_recovered` (constant factors
/// `row_scale = [0.5; 12]`, `col_scale = [10.0; 10]`, `seed = 716` — a
/// constant rank-one matrix, the hardest identifiability corner the
/// generator can produce). The vendored proptest runner never reads
/// regressions files, so the case is pinned here as a plain test that
/// always runs; the stale sidecar file is gone.
#[test]
fn regression_constant_rank_one_seed_716_recovers() {
    let truth = Matrix::from_fn(12, 10, |_, _| 0.5 * 10.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(716);
    let mask = random_mask(12, 10, 0.5, &mut rng);
    let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
    assert!(tcm.observed_count() > 30, "seed 716 must keep enough entries");
    assert!(probes::integrity::per_road(&tcm).iter().all(|&r| r > 0.0));
    assert!(probes::integrity::per_slot(&tcm).iter().all(|&s| s > 0.0));
    let cfg = CsConfig { rank: 1, lambda: 1e-6, iterations: 60, ..CsConfig::default() };
    let est = complete_matrix(&tcm, &cfg).unwrap();
    let err = nmae_on_missing(&truth, &est, tcm.indicator());
    assert!(err < 0.05, "NMAE {err} replaying the recorded regression case");
}
