//! End-to-end integration: city → fleet → reports → TCM → completion.

use cs_traffic::prelude::*;

/// The full monitoring pipeline produces a usable estimate from real
/// (simulated) probe motion, not just from uniform masking.
#[test]
fn pipeline_from_probe_reports_to_estimate() {
    let mut scenario = ScenarioConfig::small_test();
    scenario.duration_s = 24 * 3600;
    scenario.fleet.fleet_size = 60;
    scenario.granularity = Granularity::Min30;
    let sim = scenario.run();
    assert!(!sim.reports.is_empty());

    let index = SegmentIndex::build(&sim.network, 100.0);
    let measured = build_tcm_from_reports(&sim.reports, &sim.network, &index, &sim.grid, 80.0);
    let integrity = measured.integrity();
    assert!(integrity > 0.05 && integrity < 0.9, "integrity {integrity}");

    let cfg = CsConfig { rank: 2, lambda: 0.5, ..CsConfig::default() };
    let estimate = complete_matrix(&measured, &cfg).expect("completion runs");
    assert_eq!(estimate.shape(), (measured.num_slots(), measured.num_segments()));

    // NMAE against the simulation's ground truth: bounded by a loose
    // sanity ceiling (includes GPS/sampling noise, not just completion).
    let err = nmae_on_missing(sim.ground_truth.values(), &estimate, measured.indicator());
    assert!(err < 0.5, "pipeline NMAE {err}");
    // And the estimate must beat the trivial zero estimate by far.
    let zero = Matrix::zeros(measured.num_slots(), measured.num_segments());
    let zero_err = nmae_on_missing(sim.ground_truth.values(), &zero, measured.indicator());
    assert!(err < 0.5 * zero_err, "no better than zeros: {err} vs {zero_err}");
}

/// Everything in the pipeline is seeded: two identical runs give
/// identical bytes.
#[test]
fn pipeline_is_deterministic() {
    let scenario = ScenarioConfig::small_test();
    let a = scenario.run();
    let b = scenario.run();
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.ground_truth.values(), b.ground_truth.values());

    let index = SegmentIndex::build(&a.network, 100.0);
    let ta = build_tcm_from_reports(&a.reports, &a.network, &index, &a.grid, 80.0);
    let tb = build_tcm_from_reports(&b.reports, &b.network, &index, &b.grid, 80.0);
    assert_eq!(ta, tb);

    let cfg = CsConfig::default();
    if ta.observed_count() > 0 {
        let ea = complete_matrix(&ta, &cfg).unwrap();
        let eb = complete_matrix(&tb, &cfg).unwrap();
        assert_eq!(ea, eb);
    }
}

/// The measured TCM's observed cells approximate the ground truth — the
/// paper's Definition 1 approximation holds through the whole stack
/// (movement, GPS noise, map matching, binning).
#[test]
fn measured_cells_track_ground_truth() {
    let mut scenario = ScenarioConfig::small_test();
    scenario.duration_s = 12 * 3600;
    scenario.fleet.fleet_size = 80;
    scenario.granularity = Granularity::Min60;
    let sim = scenario.run();
    let index = SegmentIndex::build(&sim.network, 100.0);
    let measured = build_tcm_from_reports(&sim.reports, &sim.network, &index, &sim.grid, 60.0);

    let mut rel = Vec::new();
    for (t, c, v) in measured.observed_entries() {
        let truth = sim.ground_truth.values().get(t, c);
        rel.push((v - truth).abs() / truth);
    }
    assert!(rel.len() > 30, "too few observed cells: {}", rel.len());
    let mean_rel = rel.iter().sum::<f64>() / rel.len() as f64;
    assert!(mean_rel < 0.35, "mean relative sensing error {mean_rel}");
}

/// Canyon segments lose disproportionately many reports.
#[test]
fn urban_canyons_are_undersampled() {
    let mut scenario = ScenarioConfig::small_test();
    scenario.city.canyon_prob_core = 0.9;
    scenario.city.canyon_prob_outer = 0.0;
    scenario.gps.canyon_dropout_prob = 0.9;
    scenario.gps.dropout_prob = 0.0;
    scenario.duration_s = 12 * 3600;
    scenario.fleet.fleet_size = 80;
    let sim = scenario.run();
    let index = SegmentIndex::build(&sim.network, 100.0);
    let measured = build_tcm_from_reports(&sim.reports, &sim.network, &index, &sim.grid, 60.0);
    let roads = probes::integrity::per_road(&measured);
    let (mut canyon_sum, mut canyon_n, mut open_sum, mut open_n) = (0.0, 0usize, 0.0, 0usize);
    for seg in sim.network.segments() {
        let r = roads[seg.id.index()];
        if seg.urban_canyon {
            canyon_sum += r;
            canyon_n += 1;
        } else {
            open_sum += r;
            open_n += 1;
        }
    }
    assert!(canyon_n > 0 && open_n > 0);
    let canyon_mean = canyon_sum / canyon_n as f64;
    let open_mean = open_sum / open_n as f64;
    assert!(canyon_mean < 0.6 * open_mean, "canyon {canyon_mean} vs open {open_mean}");
}

/// Coarser time slots monotonically raise integrity on the same reports
/// (the paper's Table 1 row structure).
#[test]
fn integrity_rises_with_granularity() {
    let mut scenario = ScenarioConfig::small_test();
    scenario.duration_s = 24 * 3600;
    scenario.fleet.fleet_size = 30;
    let sim = scenario.run();
    let index = SegmentIndex::build(&sim.network, 100.0);
    let mut last = 0.0;
    for g in Granularity::all() {
        let grid = SlotGrid::covering(0, scenario.duration_s, g);
        let tcm = build_tcm_from_reports(&sim.reports, &sim.network, &index, &grid, 80.0);
        let integ = tcm.integrity();
        assert!(integ >= last, "{g}: {integ} < {last}");
        last = integ;
    }
}
