//! Integration tests pinning the paper's qualitative claims on
//! small-scale (fast) instances of the evaluation pipeline. The
//! full-scale numbers live in EXPERIMENTS.md; these tests guard the
//! *shape* of every headline result against regressions.

use cs_traffic::prelude::*;
use probes::SlotGrid;

/// A week-long ground-truth TCM over a small city.
fn week_truth(granularity: Granularity, seed: u64) -> Tcm {
    let mut city = GridCityConfig::small_test();
    city.rows = 8;
    city.cols = 8;
    city.seed = seed;
    let net = generate_grid_city(&city);
    let grid = SlotGrid::covering(0, 7 * 86_400, granularity);
    let cfg = GroundTruthConfig { seed, ..GroundTruthConfig::default() };
    GroundTruthModel::generate(&net, grid, &cfg).tcm()
}

fn mask_to(truth: &Tcm, integrity: f64, seed: u64) -> Tcm {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mask = random_mask(truth.num_slots(), truth.num_segments(), integrity, &mut rng);
    truth.masked(&mask).unwrap()
}

fn cs_cfg(truth: &Tcm) -> CsConfig {
    // λ scaled from the paper's 100 by matrix size (see DESIGN.md).
    let cells = (truth.num_slots() * truth.num_segments()) as f64;
    CsConfig { rank: 2, lambda: (100.0 * cells / (672.0 * 221.0)).max(0.01), ..CsConfig::default() }
}

fn nmae_of(est: &Estimator, truth: &Tcm, masked: &Tcm) -> f64 {
    let e = est.estimate(masked).expect("estimator runs");
    nmae_on_missing(truth.values(), &e, masked.indicator())
}

/// Section 3.1 / Fig. 4: traffic condition matrices are effectively low
/// rank — a handful of components carry ≥90% of the energy.
#[test]
fn tcm_has_low_effective_rank() {
    let truth = week_truth(Granularity::Min30, 1);
    let k90 = traffic_cs::pca::effective_rank(truth.values(), 0.9).unwrap();
    assert!(k90 <= 5, "90% energy needs {k90} components");
}

/// Headline claim (abstract): ≈20% estimate error with >80% of data
/// missing.
#[test]
fn twenty_percent_error_at_twenty_percent_integrity() {
    let truth = week_truth(Granularity::Min60, 2);
    let masked = mask_to(&truth, 0.2, 2);
    let err = nmae_of(&Estimator::CompressiveSensing(cs_cfg(&truth)), &truth, &masked);
    assert!(err < 0.22, "NMAE {err} at 20% integrity");
}

/// Fig. 11 ranking at low integrity: CS < {corr-KNN, MSSA} < naive KNN.
#[test]
fn algorithm_ranking_at_low_integrity() {
    let truth = week_truth(Granularity::Min60, 3);
    let masked = mask_to(&truth, 0.2, 3);
    let cs = nmae_of(&Estimator::CompressiveSensing(cs_cfg(&truth)), &truth, &masked);
    let naive = nmae_of(&Estimator::NaiveKnn { k: 4 }, &truth, &masked);
    let corr = nmae_of(&Estimator::CorrelationKnn { k_range: 2 }, &truth, &masked);
    let mssa = nmae_of(
        &Estimator::Mssa(MssaConfig { max_iterations: 8, ..MssaConfig::default() }),
        &truth,
        &masked,
    );
    assert!(cs < naive, "cs {cs} vs naive {naive}");
    assert!(cs < corr, "cs {cs} vs corr {corr}");
    assert!(cs < mssa, "cs {cs} vs mssa {mssa}");
}

/// Fig. 11: CS error decays fast until ~40% integrity, then flattens;
/// it never explodes at low integrity.
#[test]
fn cs_error_flat_in_integrity() {
    let truth = week_truth(Granularity::Min60, 4);
    let est = Estimator::CompressiveSensing(cs_cfg(&truth));
    let e10 = nmae_of(&est, &truth, &mask_to(&truth, 0.1, 4));
    let e40 = nmae_of(&est, &truth, &mask_to(&truth, 0.4, 5));
    let e80 = nmae_of(&est, &truth, &mask_to(&truth, 0.8, 6));
    assert!(e40 <= e10 + 1e-9, "{e10} -> {e40}");
    assert!(e80 <= e40 + 0.02, "{e40} -> {e80}");
    // Flat regime: dropping from 40% to 10% observed costs little.
    assert!(e10 - e80 < 0.15, "error explodes at low integrity: {e10} vs {e80}");
}

/// Fig. 11: finer granularity → higher error for the CS algorithm
/// (weaker structure within shorter slots).
#[test]
fn finer_granularity_is_harder() {
    let e_at = |g: Granularity| {
        let truth = week_truth(g, 7);
        let masked = mask_to(&truth, 0.2, 7);
        nmae_of(&Estimator::CompressiveSensing(cs_cfg(&truth)), &truth, &masked)
    };
    let e15 = e_at(Granularity::Min15);
    let e60 = e_at(Granularity::Min60);
    assert!(e15 > e60 - 0.01, "15 min {e15} should be ≥ 60 min {e60}");
}

/// Figs. 11–12: the Shenzhen-like configuration (sparser, noisier) gives
/// higher error than the Shanghai-like one at equal settings.
#[test]
fn noisier_dataset_has_higher_error() {
    let make = |noise: f64, jitter: f64, seed: u64| {
        let mut city = GridCityConfig::small_test();
        city.rows = 8;
        city.cols = 8;
        let net = generate_grid_city(&city);
        let grid = SlotGrid::covering(0, 7 * 86_400, Granularity::Min60);
        let cfg = GroundTruthConfig {
            noise_std_kmh: noise,
            coupling_jitter: jitter,
            seed,
            ..GroundTruthConfig::default()
        };
        GroundTruthModel::generate(&net, grid, &cfg).tcm()
    };
    let clean = make(1.5, 0.1, 8);
    let noisy = make(4.0, 0.25, 8);
    let e_clean =
        nmae_of(&Estimator::CompressiveSensing(cs_cfg(&clean)), &clean, &mask_to(&clean, 0.2, 9));
    let e_noisy =
        nmae_of(&Estimator::CompressiveSensing(cs_cfg(&noisy)), &noisy, &mask_to(&noisy, 0.2, 9));
    assert!(e_noisy > e_clean, "noisy {e_noisy} vs clean {e_clean}");
}

/// Figs. 13–14: at 20% integrity, most per-entry relative errors are
/// small (paper: ~80% below 0.25 at 60-minute granularity).
#[test]
fn relative_error_distribution_concentrates() {
    let truth = week_truth(Granularity::Min60, 10);
    let masked = mask_to(&truth, 0.2, 10);
    let est = Estimator::CompressiveSensing(cs_cfg(&truth)).estimate(&masked).unwrap();
    let cdf = relative_error_cdf(truth.values(), &est, masked.indicator());
    let frac_below_025 = linalg::stats::cdf_at(&cdf, 0.25);
    assert!(frac_below_025 > 0.7, "only {frac_below_025} below 0.25");
}

/// Section 3.4: the GA's chosen parameters transfer across time — tuned
/// on one week, still good on the next (the paper: "the two parameters
/// obtained by Algorithm 2 are stable over different times").
#[test]
fn ga_parameters_stable_over_time() {
    let mut city = GridCityConfig::small_test();
    city.rows = 8;
    city.cols = 8;
    let net = generate_grid_city(&city);
    let week = |start_week: u64| {
        let grid = SlotGrid::covering(start_week * 7 * 86_400, 7 * 86_400, Granularity::Min60);
        GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default()).tcm()
    };
    let week1 = week(0);
    let week2 = week(1);
    let masked1 = mask_to(&week1, 0.3, 11);
    let ga = optimize_parameters(
        &masked1,
        &GaConfig {
            population: 8,
            generations: 4,
            rank_bounds: (1, 12),
            cs: CsConfig { iterations: 15, ..CsConfig::default() },
            ..GaConfig::default()
        },
    )
    .unwrap();
    // Apply week-1's parameters to week 2.
    let masked2 = mask_to(&week2, 0.3, 12);
    let cfg = CsConfig { rank: ga.rank, lambda: ga.lambda, ..CsConfig::default() };
    let est = complete_matrix(&masked2, &cfg).unwrap();
    let err = nmae_on_missing(week2.values(), &est, masked2.indicator());
    assert!(err < 0.15, "transferred parameters NMAE {err}");
}

/// Robustness: the core result is not a grid artifact — on a radial
/// (ring-and-spoke) city, the CS algorithm still beats naive KNN at low
/// integrity and keeps its error in the same regime.
#[test]
fn results_hold_on_radial_topology() {
    use roadnet::generator::{generate_radial_city, RadialCityConfig};
    let cfg = RadialCityConfig { rings: 5, spokes: 12, ..RadialCityConfig::small_test() };
    let net = generate_radial_city(&cfg);
    let grid = SlotGrid::covering(0, 7 * 86_400, Granularity::Min60);
    let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
    let truth = model.tcm();
    let masked = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let mask = random_mask(truth.num_slots(), truth.num_segments(), 0.2, &mut rng);
        truth.masked(&mask).unwrap()
    };
    let cs = nmae_of(&Estimator::CompressiveSensing(cs_cfg(&truth)), &truth, &masked);
    let knn = nmae_of(&Estimator::NaiveKnn { k: 4 }, &truth, &masked);
    assert!(cs < knn, "radial city: cs {cs} vs knn {knn}");
    assert!(cs < 0.2, "radial city CS error {cs}");
}
