//! Integration: incident detection from sparse probe data against the
//! simulator's labelled incidents — the full loop from the paper's
//! "type-2 eigenflows are incidents" observation to an operational
//! detector running on completed matrices.

use cs_traffic::prelude::*;
use probes::SlotGrid;
use traffic_cs::anomaly::{
    detect_anomalies, detect_anomalies_sparse, precision_recall, seasonal_median_baseline,
    AnomalyConfig, Baseline,
};

fn incident_world() -> (GroundTruthModel, Vec<(usize, usize, usize)>) {
    let mut city = GridCityConfig::small_test();
    city.rows = 7;
    city.cols = 7;
    let net = generate_grid_city(&city);
    // Five weekdays: the seasonal-median baseline assumes exchangeable
    // days.
    let grid = SlotGrid::covering(0, 5 * 86_400, Granularity::Min30);
    let cfg = GroundTruthConfig {
        incident_rate_per_segment_day: 0.06,
        incident_severity: (0.55, 0.8),
        ..GroundTruthConfig::default()
    };
    let model = GroundTruthModel::generate(&net, grid, &cfg);
    let labels = model.incidents().iter().map(|i| (i.segment, i.start_slot, i.end_slot)).collect();
    (model, labels)
}

#[test]
fn detector_on_ground_truth_recalls_all_incidents() {
    let (model, labels) = incident_world();
    assert!(labels.len() > 10, "too few incidents to evaluate: {}", labels.len());
    let cfg = AnomalyConfig {
        baseline: Baseline::SeasonalMedian { period_slots: 48 },
        threshold_sigma: 3.5,
        // Same operational floor as the sparse test below: a
        // statistically significant dip under 8 km/h is not an incident,
        // and without the floor single-slot noise blips dominate the
        // false-alarm count.
        min_peak_drop: 8.0,
        ..AnomalyConfig::default()
    };
    let detections = detect_anomalies(model.speeds(), &cfg).unwrap();
    let (precision, recall) = precision_recall(&detections, &labels);
    assert_eq!(recall, 1.0, "missed incidents");
    assert!(precision > 0.6, "precision {precision}");
}

#[test]
fn sparse_detector_survives_the_sensing_gap() {
    let (model, labels) = incident_world();
    let truth = model.tcm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mask = random_mask(truth.num_slots(), truth.num_segments(), 0.35, &mut rng);
    let observed = truth.masked(&mask).unwrap();

    // Complete, clamp, build the robust baseline from the estimate.
    let cs = CsConfig { rank: 8, lambda: 0.1, ..CsConfig::default() };
    let estimate = complete_matrix(&observed, &cs).unwrap().map(|v| v.clamp(3.0, 80.0));
    let baseline = seasonal_median_baseline(&estimate, 48).unwrap();

    let cfg =
        AnomalyConfig { threshold_sigma: 3.5, min_peak_drop: 8.0, ..AnomalyConfig::default() };
    let detections = detect_anomalies_sparse(&observed, &baseline, &cfg).unwrap();
    let (precision, recall) = precision_recall(&detections, &labels);
    // Recall is bounded by sensing: only incidents some probe observed
    // can ever be flagged. Precision must stay high — false alarms are
    // the operational cost.
    assert!(precision > 0.6, "precision {precision} ({} detections)", detections.len());
    assert!(recall > 0.4, "recall {recall}");

    // Upper bound on achievable recall: incidents with ≥1 observed cell.
    let observable =
        labels.iter().filter(|&&(s, a, b)| (a..=b).any(|t| observed.is_observed(t, s))).count()
            as f64
            / labels.len() as f64;
    assert!(recall <= observable + 1e-9, "recall {recall} exceeds observable bound {observable}");
}
