//! Full monitoring-centre pipeline, end to end:
//!
//! ```text
//! cargo run --release --example city_pipeline
//! ```
//!
//! 1. generate a city road network;
//! 2. simulate ground-truth traffic and a probe-taxi fleet for a day;
//! 3. map-match the delivered GPS reports and bin them into a traffic
//!    condition matrix — sparse and uneven, exactly the paper's
//!    missing-data problem (Section 2.3);
//! 4. complete the matrix with the compressive-sensing algorithm;
//! 5. score the estimate against the withheld ground truth.
//!
//! Unlike `quickstart` (which masks ground truth uniformly, as the
//! paper's Section 4 experiments do), the missing pattern here comes
//! from real simulated taxi motion: arterials oversampled, side streets
//! empty, canyon segments dropped.

use cs_traffic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized city so the fleet leaves realistic gaps.
    let mut scenario = ScenarioConfig::shanghai_like();
    scenario.city.rows = 15;
    scenario.city.cols = 15;
    scenario.fleet.fleet_size = 80;
    scenario.duration_s = 24 * 3600;
    scenario.granularity = Granularity::Min30;

    println!("simulating {} taxis for 24 h ...", scenario.fleet.fleet_size);
    let sim = scenario.run();
    println!(
        "network: {} segments; delivered probe reports: {}",
        sim.network.segment_count(),
        sim.reports.len()
    );

    // Monitoring centre: map-match and bin.
    let index = SegmentIndex::build(&sim.network, 150.0);
    let measured = build_tcm_from_reports(&sim.reports, &sim.network, &index, &sim.grid, 80.0);
    println!(
        "measured TCM: {} x {}, integrity {:.1}%",
        measured.num_slots(),
        measured.num_segments(),
        measured.integrity() * 100.0
    );

    // Per-road coverage is heavily uneven (Fig. 2's story).
    let roads = probes::integrity::per_road(&measured);
    let never_seen = roads.iter().filter(|&&r| r == 0.0).count();
    println!("roads never observed in any slot: {} / {}", never_seen, roads.len());

    // Tune (r, λ) on the measured matrix with Algorithm 2 — fleet-shaped
    // missingness is structured (arterials oversampled, side streets
    // bare), so the paper's protocol of running the genetic search once
    // per matrix matters more than under uniform masking.
    let ga = optimize_parameters(
        &measured,
        &GaConfig {
            population: 10,
            generations: 5,
            rank_bounds: (1, 8),
            cs: CsConfig { iterations: 30, ..CsConfig::default() },
            ..GaConfig::default()
        },
    )?;
    println!("Algorithm 2 picked r = {}, λ = {:.2}", ga.rank, ga.lambda);
    let cfg = CsConfig { rank: ga.rank, lambda: ga.lambda, ..CsConfig::default() };
    let estimate = complete_matrix(&measured, &cfg)?;

    // Score on cells that are missing in the measurement but known in
    // the simulation's ground truth. Note the measurement itself is a
    // *noisy sample* of the ground truth (GPS error, finite probes), so
    // this NMAE includes sensing noise, not just completion error.
    let err = nmae_on_missing(sim.ground_truth.values(), &estimate, measured.indicator());
    println!("\ncompressive-sensing NMAE over unobserved cells: {:.3}", err);

    let knn = naive_knn_impute(&measured, 4);
    let knn_err = nmae_on_missing(sim.ground_truth.values(), &knn, measured.indicator());
    println!("naive-KNN NMAE over unobserved cells:           {:.3}", knn_err);
    println!(
        "\nnote: under fleet-shaped (non-uniform) masks on this synthetic city,\n\
         naive KNN is unusually strong because the generator assigns adjacent\n\
         column indices to geographically adjacent streets, turning index\n\
         neighbourhoods into spatial interpolation. Under the paper's uniform\n\
         masking protocol (see `experiments fig11` or `quickstart`) the\n\
         compressive-sensing algorithm wins at every granularity."
    );
    Ok(())
}
