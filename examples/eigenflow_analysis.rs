//! The Section 3.1 structure study on a simulated week of traffic:
//!
//! ```text
//! cargo run --release --example eigenflow_analysis
//! ```
//!
//! Computes the SVD of a traffic condition matrix, prints the
//! singular-value knee (Fig. 4), classifies the eigenflows into the
//! paper's three types (Eq. 10, Figs. 5 and 8), and reconstructs one
//! segment's series from five components (Fig. 6).

use cs_traffic::prelude::*;
use probes::SlotGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One week of ground truth over a small city at 30-minute slots.
    let mut city = GridCityConfig::small_test();
    city.rows = 10;
    city.cols = 10;
    let net = generate_grid_city(&city);
    let grid = SlotGrid::covering(0, 7 * 86_400, Granularity::Min30);
    let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
    let x = model.speeds();
    println!("TCM: {} slots x {} segments", x.rows(), x.cols());

    // Fig. 4: singular-value spectrum.
    let svd = Svd::compute(x)?;
    let s = svd.singular_values();
    println!("\nsingular values (ratio to max):");
    for (i, v) in s.iter().take(10).enumerate() {
        let bar = "#".repeat(((v / s[0]) * 50.0).ceil() as usize);
        println!("  σ{:<2} {:>7.4}  {}", i + 1, v / s[0], bar);
    }
    let k90 = svd.components_for_energy(0.9);
    println!("components for 90% energy: {k90} (the paper's 'sharp knee')");

    // Figs. 5 & 8: eigenflow classification.
    let analysis = EigenflowAnalysis::compute(x)?;
    let (p, sp, n) = analysis.type_counts();
    println!("\neigenflow types: {p} periodic, {sp} spike, {n} noise");
    print!("first 30 (by decreasing σ): ");
    for t in analysis.types().iter().take(30) {
        print!(
            "{}",
            match t {
                EigenflowType::Periodic => '1',
                EigenflowType::Spike => '2',
                EigenflowType::Noise => '3',
            }
        );
    }
    println!();

    // Fig. 6: rank-5 reconstruction of one segment.
    let col = x.cols() / 2;
    let rec = traffic_cs::pca::reconstruct_segment(x, col, 5)?;
    println!("\nrank-5 reconstruction of segment {col}: RMSE = {:.2} km/h", rec.rmse);
    println!("(paper reports ≈ 9.67 km/h on its Shanghai matrix)");

    // Fig. 7: how much each type contributes.
    for ty in [EigenflowType::Periodic, EigenflowType::Spike, EigenflowType::Noise] {
        let part = analysis.reconstruct_by_type(ty);
        let frac = part.frobenius_norm() / x.frobenius_norm();
        println!("  {ty}: {:.1}% of the Frobenius norm", frac * 100.0);
    }
    Ok(())
}
