//! Incident detection from sparse probe data, end to end:
//!
//! ```text
//! cargo run --release --example incident_detection
//! ```
//!
//! The simulator injects labelled traffic incidents; we observe only a
//! fraction of the traffic condition matrix, complete it with the
//! compressive-sensing algorithm, and run the robust anomaly detector on
//! the estimate. Precision/recall against the injected labels shows how
//! much incident visibility survives the sensing gap.

use cs_traffic::prelude::*;
use probes::SlotGrid;
use traffic_cs::anomaly::{
    detect_anomalies, detect_anomalies_sparse, precision_recall, AnomalyConfig, Baseline,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five weekdays of traffic (the daily-median baseline assumes the
    // days are exchangeable; mixing weekday and weekend rhythms would
    // flag every rush hour as anomalous).
    let mut city = GridCityConfig::small_test();
    city.rows = 8;
    city.cols = 8;
    let net = generate_grid_city(&city);
    let grid = SlotGrid::covering(0, 5 * 86_400, Granularity::Min30);
    let gt_cfg = GroundTruthConfig {
        incident_rate_per_segment_day: 0.08,
        incident_severity: (0.5, 0.8),
        ..GroundTruthConfig::default()
    };
    let model = GroundTruthModel::generate(&net, grid, &gt_cfg);
    let labels: Vec<(usize, usize, usize)> =
        model.incidents().iter().map(|i| (i.segment, i.start_slot, i.end_slot)).collect();
    println!("injected incidents: {}", labels.len());

    // Observe 30% of the matrix, complete it.
    let truth = model.tcm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let mask = random_mask(truth.num_slots(), truth.num_segments(), 0.3, &mut rng);
    let observed = truth.masked(&mask)?;
    // Rank above the structural rank so incident energy survives into
    // the estimate.
    let cfg = CsConfig { rank: 8, lambda: 0.1, ..CsConfig::default() };
    let estimate = complete_matrix(&observed, &cfg)?;
    // Completion knows no physics: clamp the estimate into the plausible
    // speed range before analysis (as any consumer would — compare
    // navigator::TravelTimeField::from_estimate).
    let estimate = estimate.map(|v| v.clamp(3.0, 80.0));

    // Detect on the completed matrix (48 slots per day at 30 min).
    let detector = AnomalyConfig {
        baseline: Baseline::SeasonalMedian { period_slots: 48 },
        threshold_sigma: 3.5,
        min_run_slots: 1,
        ..AnomalyConfig::default()
    };
    // Sparse-evidence detection: the completed estimate provides the
    // "normal traffic" baseline (via its seasonal median), but only
    // *observed* probe cells can raise an alert — a rank-limited
    // completion smears strong simultaneous incidents into cells it has
    // no evidence for, and a monitoring centre shouldn't page anyone on
    // smeared cells.
    let baseline = traffic_cs::anomaly::seasonal_median_baseline(&estimate, 48)?;
    let sparse_cfg = AnomalyConfig { min_peak_drop: 8.0, ..detector.clone() };
    let on_estimate = detect_anomalies_sparse(&observed, &baseline, &sparse_cfg)?;
    let (p_est, r_est) = precision_recall(&on_estimate, &labels);

    // Reference: detection on the full ground truth (no sensing gap).
    let on_truth = detect_anomalies(truth.values(), &detector)?;
    let (p_truth, r_truth) = precision_recall(&on_truth, &labels);

    println!("\n{:<28} {:>10} {:>8}", "input", "precision", "recall");
    println!("{:<28} {:>9.2} {:>8.2}", "complete ground truth", p_truth, r_truth);
    println!("{:<28} {:>9.2} {:>8.2}", "estimate from 30% probes", p_est, r_est);
    println!("\nstrongest detections on the estimate:");
    for d in on_estimate.iter().take(5) {
        println!(
            "  segment {:>3}, slots {:>3}–{:<3} (z = {:.1})",
            d.segment, d.start_slot, d.end_slot, d.peak_zscore
        );
    }
    Ok(())
}
