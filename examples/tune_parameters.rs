//! Algorithm 2 in action: genetic search for (rank bound r, tradeoff λ).
//!
//! ```text
//! cargo run --release --example tune_parameters
//! ```
//!
//! Builds a masked traffic condition matrix, sweeps r and λ by hand to
//! show the sensitivity the paper's Figs. 15–16 document, then lets the
//! genetic algorithm find the optimum automatically.

use cs_traffic::prelude::*;
use probes::SlotGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: three days over a small city, 30-minute slots.
    let mut city = GridCityConfig::small_test();
    city.rows = 8;
    city.cols = 8;
    let net = generate_grid_city(&city);
    let grid = SlotGrid::covering(0, 3 * 86_400, Granularity::Min30);
    let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
    let truth = model.tcm();

    // Observe 30% of the entries.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mask = random_mask(truth.num_slots(), truth.num_segments(), 0.3, &mut rng);
    let observed = truth.masked(&mask)?;
    println!(
        "matrix {} x {}, integrity {:.0}%",
        truth.num_slots(),
        truth.num_segments(),
        observed.integrity() * 100.0
    );

    // Manual sensitivity sweep (Figs. 15–16 in miniature).
    println!("\nmanual rank sweep (λ = 1):");
    for rank in [1usize, 2, 4, 8, 16] {
        let cfg = CsConfig { rank, lambda: 1.0, ..CsConfig::default() };
        let est = complete_matrix(&observed, &cfg)?;
        let err = nmae_on_missing(truth.values(), &est, observed.indicator());
        println!("  r = {rank:<3} NMAE = {err:.3}");
    }
    println!("manual λ sweep (r = 8):");
    for lambda in [0.001, 0.1, 1.0, 10.0, 100.0] {
        let cfg = CsConfig { rank: 8, lambda, ..CsConfig::default() };
        let est = complete_matrix(&observed, &cfg)?;
        let err = nmae_on_missing(truth.values(), &est, observed.indicator());
        println!("  λ = {lambda:<7} NMAE = {err:.3}");
    }

    // Algorithm 2: automatic search (fitness = NMAE on a held-out
    // validation split of the *observed* entries — no ground truth
    // needed, so this works in deployment).
    println!("\nrunning the genetic search ...");
    let ga_cfg =
        GaConfig { population: 12, generations: 8, rank_bounds: (1, 16), ..GaConfig::default() };
    let result = optimize_parameters(&observed, &ga_cfg)?;
    println!(
        "GA found r = {}, λ = {:.3} (validation NMAE {:.3})",
        result.rank, result.lambda, result.fitness
    );

    // Confirm on the genuinely missing entries.
    let cfg = CsConfig { rank: result.rank, lambda: result.lambda, ..CsConfig::default() };
    let est = complete_matrix(&observed, &cfg)?;
    let err = nmae_on_missing(truth.values(), &est, observed.indicator());
    println!("test NMAE with GA parameters: {err:.3}");
    Ok(())
}
