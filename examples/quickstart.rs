//! Quickstart: recover a traffic condition matrix from 20% observations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a small city's ground-truth traffic for three days, hides
//! 80% of the entries (the paper's headline missing-data regime), runs
//! the compressive-sensing completion, and reports the NMAE against the
//! baselines.

use cs_traffic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a city and its ground-truth traffic. Three days of
    // 30-minute slots: the compressive-sensing algorithm feeds on the
    // daily rhythm, so give it more than a few hours to find one.
    let mut scenario = ScenarioConfig::small_test();
    scenario.duration_s = 3 * 86_400;
    scenario.granularity = Granularity::Min30;
    scenario.fleet.fleet_size = 0; // ground truth only; see city_pipeline for the fleet
    let sim = scenario.run();
    let truth = &sim.ground_truth;
    println!(
        "ground truth: {} time slots x {} road segments",
        truth.num_slots(),
        truth.num_segments()
    );

    // 2. Keep only 20% of the entries, uniformly at random.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2011);
    let mask = random_mask(truth.num_slots(), truth.num_segments(), 0.2, &mut rng);
    let observed = truth.masked(&mask)?;
    println!("observed integrity: {:.1}%", observed.integrity() * 100.0);

    // 3. Estimate the missing entries with each algorithm.
    // (λ is scaled down from the paper's 100 by matrix size — the fit
    // term of Eq. 16 grows with the number of observed cells.)
    let cells = (truth.num_slots() * truth.num_segments()) as f64;
    let lambda = (100.0 * cells / (672.0 * 221.0)).max(0.01);
    let algorithms = vec![
        Estimator::CompressiveSensing(CsConfig { rank: 2, lambda, ..CsConfig::default() }),
        Estimator::NaiveKnn { k: 4 },
        Estimator::CorrelationKnn { k_range: 2 },
        Estimator::Mssa(MssaConfig::default()),
    ];
    println!("\n{:<18} NMAE on missing entries", "algorithm");
    for alg in algorithms {
        let estimate = alg.estimate(&observed)?;
        let err = nmae_on_missing(truth.values(), &estimate, observed.indicator());
        println!("{:<18} {:.3}", alg.kind().to_string(), err);
    }
    Ok(())
}
