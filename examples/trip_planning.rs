//! Trip planning on estimated traffic — the application the paper's
//! introduction motivates.
//!
//! ```text
//! cargo run --release --example trip_planning
//! ```
//!
//! Builds a day of ground-truth traffic, recovers it from 25% of the
//! entries, and compares trips planned on the *estimate* against trips
//! planned with perfect knowledge: the regret (extra travel time) is the
//! end-user cost of the estimation error.

use cs_traffic::prelude::*;
use navigator::{planner, TravelTimeField};
use probes::SlotGrid;
use roadnet::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut city = GridCityConfig::small_test();
    city.rows = 10;
    city.cols = 10;
    let net = generate_grid_city(&city);
    let grid = SlotGrid::covering(0, 86_400, Granularity::Min30);
    let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
    let truth = model.tcm();
    let truth_field = TravelTimeField::new(&net, truth.clone(), grid)?;

    // Recover from 25% observations.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mask = random_mask(truth.num_slots(), truth.num_segments(), 0.25, &mut rng);
    let observed = truth.masked(&mask)?;
    let cells = (truth.num_slots() * truth.num_segments()) as f64;
    let cfg = CsConfig {
        rank: 2,
        lambda: (100.0 * cells / (672.0 * 221.0)).max(0.01),
        ..CsConfig::default()
    };
    let estimate = complete_matrix(&observed, &cfg)?;
    let est_field = TravelTimeField::from_estimate(&net, &estimate, grid)?;
    println!(
        "recovered {}x{} TCM from {:.0}% observations",
        truth.num_slots(),
        truth.num_segments(),
        observed.integrity() * 100.0
    );

    // Plan the same commute at different times of day.
    let from = NodeId(0);
    let to = NodeId((net.node_count() - 1) as u32);
    println!("\n{:<8} {:>12} {:>12} {:>9}", "depart", "optimal (s)", "planned (s)", "regret");
    let mut worst: f64 = 0.0;
    for hour in [3u64, 8, 12, 18, 22] {
        let depart = hour * 3600;
        let optimal = planner::fastest_route(&net, &truth_field, from, to, depart).unwrap();
        let planned = planner::fastest_route(&net, &est_field, from, to, depart).unwrap();
        let planned_true =
            planner::route_travel_time(&net, &truth_field, &planned.segments, depart);
        let regret = (planned_true - optimal.travel_time_s) / optimal.travel_time_s;
        worst = worst.max(regret);
        println!(
            "{:>2}:00    {:>12.1} {:>12.1} {:>8.1}%",
            hour,
            optimal.travel_time_s,
            planned_true,
            regret * 100.0
        );
    }
    println!("\nworst-case regret from planning on the estimate: {:.1}%", worst * 100.0);
    Ok(())
}
