//! Online (streaming) estimation — the paper's Section 6 extension.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! Probe observations arrive slot by slot into a sliding-window
//! `StreamingTcm`; every new slot triggers a warm-started matrix
//! completion (`OnlineEstimator`) whose last row is the live traffic
//! map. Warm starts make each update far cheaper than the offline
//! `t = 100`-sweep solve.

use cs_traffic::prelude::*;
use probes::stream::StreamingTcm;
use probes::SlotGrid;
use rand::RngExt;
use traffic_cs::online::OnlineEstimator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth to sample probe observations from.
    let city = GridCityConfig::small_test();
    let net = generate_grid_city(&city);
    let slot_len = Granularity::Min15.seconds();
    let grid = SlotGrid::covering(0, 86_400, Granularity::Min15);
    let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
    let n = net.segment_count();

    const WINDOW: usize = 32; // 8 hours of 15-minute slots
    let mut stream = StreamingTcm::new(0, slot_len, WINDOW, n)?;
    let cfg = CsConfig { rank: 2, lambda: 0.3, tol: 1e-4, ..CsConfig::default() };
    let mut online = OnlineEstimator::new(cfg, WINDOW)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    println!("{:>6} {:>10} {:>8} {:>7}", "slot", "integrity", "NMAE", "sweeps");
    for slot in 0..grid.num_slots() {
        // ~40 probe observations arrive during this slot.
        for _ in 0..40 {
            let seg = rng.random_range(0..n);
            let truth = model.speeds().get(slot, seg);
            let speed = (truth + linalg::rng::normal(&mut rng, 0.0, 2.0)).max(0.0);
            let ts = slot as u64 * slot_len + rng.random_range(0..slot_len);
            stream.observe(ts, seg, speed)?;
        }
        // Once the window is full, re-estimate after every slot.
        if slot + 1 >= WINDOW && (slot + 1) % 4 == 0 {
            let window = stream.snapshot();
            let result = online.update_detailed(&window)?;
            // Score the estimate against ground truth for this window.
            let first_slot = slot + 1 - WINDOW;
            let truth = model.speeds().submatrix(first_slot, slot + 1, 0, n);
            let err = nmae_on_missing(&truth, &result.estimate, window.indicator());
            println!(
                "{:>6} {:>9.1}% {:>8.3} {:>7}",
                slot,
                window.integrity() * 100.0,
                err,
                result.sweeps
            );
        }
    }
    println!(
        "\n{} online updates, {:.1} ALS sweeps per update on average (offline uses 100)",
        online.updates(),
        online.mean_sweeps()
    );
    Ok(())
}
