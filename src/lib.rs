//! # cs-traffic — Compressive Sensing Approach to Urban Traffic Sensing
//!
//! A from-scratch Rust reproduction of Z. Li, Y. Zhu, H. Zhu, M. Li,
//! *"Compressive Sensing Approach to Urban Traffic Sensing"* (IEEE ICDCS
//! 2011; journal version IEEE TMC 2013): metropolitan-scale road-traffic
//! estimation from sparse GPS probe-vehicle data via low-rank matrix
//! completion.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`linalg`] — dense matrices, QR, Jacobi SVD, symmetric eigen, FFT,
//!   statistics (no external math dependencies).
//! * [`roadnet`] — road-network graph, synthetic grid-city generator,
//!   Dijkstra routing, GPS map matching.
//! * [`traffic_sim`] — generative ground-truth traffic model and
//!   probe-taxi fleet simulator (the stand-in for the paper's Shanghai /
//!   Shenzhen datasets; see DESIGN.md).
//! * [`probes`] — probe reports, time slotting, traffic-condition-matrix
//!   assembly, masking, integrity metrics.
//! * [`traffic_cs`] — the paper's contribution: Algorithm 1 (alternating
//!   least-squares matrix completion), Algorithm 2 (genetic parameter
//!   search), the KNN/MSSA baselines, PCA and eigenflow analysis, plus a
//!   fault-tolerant streaming estimation service ([`traffic_cs::service`]),
//!   its segment-range sharded wrapper ([`traffic_cs::sharded`]), and a
//!   socket-serving daemon ([`traffic_cs::daemon`]).
//! * [`proto`] — the `cs-wire/v1` protocol: versioned length-prefixed
//!   frames, typed request/response messages, TCP/Unix transport, and a
//!   blocking client.
//!
//! # Quickstart
//!
//! ```
//! use cs_traffic::prelude::*;
//!
//! // Simulate a small city and its taxi fleet.
//! let sim = ScenarioConfig::small_test().run();
//!
//! // Hide 80% of the ground truth, then recover it.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mask = random_mask(
//!     sim.ground_truth.num_slots(),
//!     sim.ground_truth.num_segments(),
//!     0.2,
//!     &mut rng,
//! );
//! let observed = sim.ground_truth.masked(&mask)?;
//! let cfg = CsConfig { rank: 2, lambda: 5.0, ..CsConfig::default() };
//! let estimate = complete_matrix(&observed, &cfg)?;
//! let err = nmae_on_missing(sim.ground_truth.values(), &estimate, observed.indicator());
//! assert!(err < 0.25, "NMAE {err}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use linalg;
pub use navigator;
pub use probes;
pub use proto;
pub use roadnet;
pub use traffic_cs;
pub use traffic_sim;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use linalg::{Matrix, Svd};
    pub use navigator::{planner, TravelTimeField};
    pub use probes::mask::random_mask;
    pub use probes::tcm::build_tcm_from_reports;
    pub use probes::{Granularity, ProbeReport, SlotGrid, Tcm, VehicleId};
    pub use proto::client::Client as WireClient;
    pub use proto::msg::{Request as WireRequest, Response as WireResponse};
    pub use proto::net::BindAddr;
    pub use rand::SeedableRng;
    pub use roadnet::generator::{generate_grid_city, GridCityConfig};
    pub use roadnet::matching::SegmentIndex;
    pub use roadnet::{RoadClass, RoadNetwork, SegmentId};
    pub use traffic_cs::baselines::{
        correlation_knn_impute, mssa_impute, naive_knn_impute, MssaConfig,
    };
    pub use traffic_cs::cs::{
        complete_matrix, complete_matrix_detailed, CompletionResult, CsConfig,
    };
    pub use traffic_cs::daemon::{Daemon, DaemonConfig, DaemonHandle, DaemonStats};
    pub use traffic_cs::eigenflow::{EigenflowAnalysis, EigenflowType};
    pub use traffic_cs::estimator::{Estimator, EstimatorKind};
    pub use traffic_cs::ga::{optimize_parameters, GaConfig};
    pub use traffic_cs::metrics::{nmae_on_missing, relative_error_cdf};
    pub use traffic_cs::online::OnlineEstimator;
    pub use traffic_cs::selection::{adaptive_matrix, select_correlated};
    pub use traffic_cs::service::{LiveEstimate, ServeConfig, Service};
    pub use traffic_cs::sharded::{ShardPlan, ShardedService};
    pub use traffic_cs::weighted::{complete_matrix_weighted, WeightScheme};
    pub use traffic_cs::{ConfigError, Error as TrafficCsError};
    pub use traffic_sim::config::central_segments;
    pub use traffic_sim::fleet::FleetConfig;
    pub use traffic_sim::gps::GpsConfig;
    pub use traffic_sim::{GroundTruthConfig, GroundTruthModel, ScenarioConfig, SimulationOutput};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let cfg = CsConfig::default();
        assert_eq!(cfg.rank, 2);
        assert_eq!(Granularity::all().len(), 3);
        let serve = ServeConfig::builder().num_segments(4).build().unwrap();
        assert!(Service::new(serve).is_ok());
        let sharded = ServeConfig::builder()
            .num_segments(4)
            .shards(ShardPlan::with_count(2))
            .build()
            .unwrap();
        assert_eq!(ShardedService::new(sharded).unwrap().shard_count(), 2);
        assert!(BindAddr::parse("tcp:127.0.0.1:0").is_ok());
    }
}
