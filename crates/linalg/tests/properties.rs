//! Property-based tests of the linear-algebra kernels: the invariants
//! every downstream module silently relies on.

use linalg::eig::symmetric_eigen;
use linalg::fft::{dft_magnitude_naive, fft_real};
use linalg::lstsq::{solve_normal_equations, solve_qr};
use linalg::stats::{empirical_cdf, mean, pearson, quantile, std_dev};
use linalg::{Matrix, QrDecomposition, Svd};
use proptest::prelude::*;

/// Random matrix strategy with entries in [-10, 10].
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_involution(a in matrix(1..12, 1..12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_associative(
        a in matrix(2..6, 2..6),
        bdata in proptest::collection::vec(-5.0f64..5.0, 36),
        cdata in proptest::collection::vec(-5.0f64..5.0, 36),
    ) {
        let b = Matrix::from_vec(a.cols(), 6, bdata[..a.cols() * 6].to_vec()).unwrap();
        let c = Matrix::from_vec(6, 6, cdata).unwrap();
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(ab_c.approx_eq(&a_bc, 1e-8));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(2..6, 4..5),
        b in matrix(4..5, 2..6),
        c in matrix(4..5, 1..2),
    ) {
        // (shape-align b and c by cols of a)
        prop_assume!(b.rows() == a.cols() && c.rows() == a.cols());
        let b2 = b.clone();
        let bc = b2.hstack(&c).unwrap();
        let prod = a.matmul(&bc).unwrap();
        let left = a.matmul(&b).unwrap();
        let right = a.matmul(&c).unwrap();
        let stacked = left.hstack(&right).unwrap();
        prop_assert!(prod.approx_eq(&stacked, 1e-9));
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(2..8, 2..8), s in -3.0f64..3.0) {
        let b = a.map(|v| v * s);
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
        // Homogeneity.
        prop_assert!((b.frobenius_norm() - s.abs() * a.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn svd_reconstructs_and_is_orthonormal(a in matrix(2..10, 2..10)) {
        let svd = Svd::compute(&a).unwrap();
        let k = a.rows().min(a.cols());
        prop_assert!(svd.truncate(k).approx_eq(&a, 1e-7));
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(k), 1e-7));
        // Spectrum sorted, non-negative.
        for w in svd.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(svd.singular_values().iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_spectral_energy_matches_frobenius(a in matrix(2..10, 2..10)) {
        let svd = Svd::compute(&a).unwrap();
        let energy: f64 = svd.singular_values().iter().map(|s| s * s).sum();
        prop_assert!((energy - a.frobenius_norm_sq()).abs() <= 1e-7 * a.frobenius_norm_sq().max(1.0));
    }

    #[test]
    fn qr_reconstructs_tall_matrices(a in matrix(6..12, 2..6)) {
        prop_assume!(a.rows() >= a.cols());
        let qr = QrDecomposition::new(&a).unwrap();
        prop_assert!(qr.q().matmul(qr.r()).unwrap().approx_eq(&a, 1e-8));
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(a.cols()), 1e-8));
    }

    #[test]
    fn ridge_solvers_agree(a in matrix(8..14, 2..5), lambda in 0.01f64..10.0) {
        let b = Matrix::filled(a.rows(), 2, 1.0);
        let ne = solve_normal_equations(&a, &b, lambda).unwrap();
        let qr = solve_qr(&a, &b, lambda).unwrap();
        prop_assert!(ne.approx_eq(&qr, 1e-6));
    }

    #[test]
    fn symmetric_eigen_reconstructs(a in matrix(2..8, 2..8)) {
        prop_assume!(a.rows() == a.cols());
        let sym = (&a + &a.transpose()).map(|v| v / 2.0);
        let e = symmetric_eigen(&sym).unwrap();
        let lam = Matrix::diag(&e.eigenvalues);
        let back = e.eigenvectors.matmul(&lam).unwrap().matmul(&e.eigenvectors.transpose()).unwrap();
        prop_assert!(back.approx_eq(&sym, 1e-7));
        // Trace preservation.
        let trace: f64 = (0..sym.rows()).map(|i| sym.get(i, i)).sum();
        let eig_sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-7 * trace.abs().max(1.0));
    }

    #[test]
    fn fft_matches_naive_dft(signal in proptest::collection::vec(-5.0f64..5.0, 16)) {
        let fast = fft_real(&signal);
        let slow = dft_magnitude_naive(&signal);
        for k in 0..16 {
            prop_assert!((fast[k].abs() - slow[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_parseval(signal in proptest::collection::vec(-5.0f64..5.0, 32)) {
        let spec = fft_real(&signal);
        let time: f64 = signal.iter().map(|x| x * x).sum();
        let freq: f64 = spec.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / 32.0;
        prop_assert!((time - freq).abs() < 1e-8 * time.max(1.0));
    }

    #[test]
    fn stats_bounds(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(std_dev(&xs) >= 0.0);
        prop_assert!(quantile(&xs, 0.0) == lo && quantile(&xs, 1.0) == hi);
        // Quantile is monotone in q.
        prop_assert!(quantile(&xs, 0.25) <= quantile(&xs, 0.75) + 1e-12);
    }

    #[test]
    fn pearson_in_unit_interval(
        a in proptest::collection::vec(-10.0f64..10.0, 10),
        b in proptest::collection::vec(-10.0f64..10.0, 10),
    ) {
        let r = pearson(&a, &b);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        // Symmetry and self-correlation.
        prop_assert!((r - pearson(&b, &a)).abs() < 1e-12);
        if std_dev(&a) > 0.0 {
            prop_assert!((pearson(&a, &a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_cdf_is_valid_distribution(xs in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
        let cdf = empirical_cdf(&xs);
        prop_assert_eq!(cdf.len(), xs.len());
        prop_assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].value <= w[1].value);
            prop_assert!(w[0].fraction <= w[1].fraction);
        }
    }

    #[test]
    fn hadamard_commutes(a in matrix(2..8, 2..8)) {
        let b = a.map(|v| v * 0.5 - 1.0);
        let ab = a.hadamard(&b).unwrap();
        let ba = b.hadamard(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn select_columns_then_rows_commute(a in matrix(4..10, 4..10)) {
        let cols = vec![0usize, a.cols() - 1];
        let rows = vec![1usize, a.rows() - 1];
        let cr = a.select_columns(&cols).select_rows(&rows);
        let rc = a.select_rows(&rows).select_columns(&cols);
        prop_assert_eq!(cr, rc);
    }
}
