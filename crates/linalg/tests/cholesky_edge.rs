//! Cholesky edge-case suite for every Gram kernel variant.
//!
//! Three layers:
//!
//! 1. **Condition sweep** — Gram matrices graded from benign to
//!    numerically singular (two nearly-parallel design rows, separation
//!    δ = 2⁻ᵗ): every variant must return the *same* result, success or
//!    failure, at every grade, and the well-conditioned grades must
//!    succeed.
//! 2. **λ = 0 rank deficiency** — deterministically rejected, same
//!    `SolveError` on every rerun, for every variant.
//! 3. **Pivot-index pinning** — a zeroed design column `k` zeroes the
//!    `k`-th Cholesky pivot *exactly* (no rounding involved), so every
//!    variant must report `NotPositiveDefinite { index: k }` for every
//!    `k`, including lanes in the middle of a 4-wide block.

use linalg::kernel::KernelVariant;
use linalg::lstsq::{GramScratch, SolveError};

fn solve(
    variant: KernelVariant,
    r: usize,
    rows: &[(Vec<f64>, f64)],
    lambda: f64,
) -> Result<Vec<u64>, SolveError> {
    let mut scratch = GramScratch::with_variant(r, variant);
    let mut out = vec![0.0; r];
    scratch
        .solve_ridge(rows.iter().map(|(row, y)| (row.as_slice(), *y)), lambda, &mut out)
        .map(|()| out.iter().map(|v| v.to_bits()).collect())
}

/// Two nearly-parallel rows separated by δ = 2⁻ᵗ: Gram condition number
/// grows like δ⁻², crossing from comfortably solvable to numerically
/// singular inside the sweep. Parity is required at every grade; the
/// comfortable grades must additionally succeed, and a modest λ must
/// rescue every grade.
#[test]
fn condition_sweep_parity_across_variants() {
    for t in 1u32..=40 {
        let delta = (2.0f64).powi(-(t as i32));
        let rows: Vec<(Vec<f64>, f64)> = vec![(vec![1.0, 1.0], 1.0), (vec![1.0, 1.0 + delta], 2.0)];
        let reference = solve(KernelVariant::Scalar, 2, &rows, 0.0);
        for variant in KernelVariant::supported(2).skip(1) {
            assert_eq!(
                reference,
                solve(variant, 2, &rows, 0.0),
                "t={t}: variant {variant} disagrees with scalar at λ=0"
            );
        }
        if t <= 20 {
            assert!(reference.is_ok(), "t={t}: well-conditioned grade must solve at λ=0");
        }
        // λ rescues every grade, in every variant, with identical bits.
        let rescued = solve(KernelVariant::Scalar, 2, &rows, 1e-6);
        assert!(rescued.is_ok(), "t={t}: λ=1e-6 must rescue the system");
        for variant in KernelVariant::supported(2).skip(1) {
            assert_eq!(
                rescued,
                solve(variant, 2, &rows, 1e-6),
                "t={t}: variant {variant} disagrees with scalar at λ=1e-6"
            );
        }
    }
}

/// λ = 0 on a rank-deficient design is rejected deterministically:
/// every variant, every rerun, the same error value.
#[test]
fn lambda_zero_rank_deficiency_is_deterministic() {
    for r in [2usize, 4, 5, 8, 16] {
        // All columns identical: the second pivot collapses.
        let rows: Vec<(Vec<f64>, f64)> = (0..4).map(|i| (vec![(i + 1) as f64; r], 1.0)).collect();
        for variant in KernelVariant::supported(r) {
            let first = solve(variant, r, &rows, 0.0);
            assert_eq!(
                first.clone().unwrap_err(),
                SolveError::NotPositiveDefinite { index: 1 },
                "r={r} variant {variant}"
            );
            for _ in 0..3 {
                assert_eq!(
                    first,
                    solve(variant, r, &rows, 0.0),
                    "r={r} variant {variant}: rerun drifted"
                );
            }
        }
    }
}

/// A zeroed design column `k` makes the `k`-th pivot *exactly* zero
/// (every contributing product is a float zero, no rounding), so the
/// failing index is pinned for each `k` — including k = 0, lane
/// positions inside a 4-wide block, and the final lane — in every
/// kernel variant.
#[test]
fn pivot_index_is_pinned_per_variant() {
    for r in [4usize, 5, 8, 16, 17] {
        for k in 0..r {
            // Identity rows keep the leading principal minors positive
            // definite (so no earlier pivot can fail), two dense dyadic
            // rows exercise the accumulation lanes, and column k is
            // zeroed throughout — its pivot is *exactly* 0.0.
            let mut rows: Vec<(Vec<f64>, f64)> = (0..r)
                .map(|i| {
                    let mut row = vec![0.0; r];
                    if i != k {
                        row[i] = 1.0;
                    }
                    (row, 1.0)
                })
                .collect();
            for m in 0..2usize {
                let row: Vec<f64> = (0..r)
                    .map(|j| if j == k { 0.0 } else { ((m * 3 + j * 5) % 7 + 1) as f64 / 4.0 })
                    .collect();
                rows.push((row, 0.5));
            }
            for variant in KernelVariant::supported(r) {
                assert_eq!(
                    solve(variant, r, &rows, 0.0).unwrap_err(),
                    SolveError::NotPositiveDefinite { index: k },
                    "r={r} k={k} variant {variant}: pivot index"
                );
            }
        }
    }
}

/// The zero-column pivot is *exactly* k when the leading k×k principal
/// minor is well conditioned — pin the exact index on small cases where
/// the remaining columns are linearly independent by construction.
#[test]
fn pivot_index_exact_on_orthogonal_designs() {
    for r in [4usize, 8, 16] {
        for k in 0..r {
            // Identity-like design with column k zeroed: gram = I with
            // row/col k zero, pivots 0..k are exactly 1, pivot k is
            // exactly 0.
            let rows: Vec<(Vec<f64>, f64)> = (0..r)
                .map(|i| {
                    let mut row = vec![0.0; r];
                    if i != k {
                        row[i] = 1.0;
                    }
                    (row, 1.0)
                })
                .collect();
            for variant in KernelVariant::supported(r) {
                assert_eq!(
                    solve(variant, r, &rows, 0.0).unwrap_err(),
                    SolveError::NotPositiveDefinite { index: k },
                    "r={r} k={k} variant {variant}: exact pivot index"
                );
            }
        }
    }
}
