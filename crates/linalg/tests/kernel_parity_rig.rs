//! Kernel-parity differential rig.
//!
//! Drives the scalar reference, the 4-lane unrolled kernel, and the
//! fixed-rank kernels over adversarial geometries — r = 1..=17, empty
//! axes (zero observation rows), single-observation rows, subnormal and
//! huge-magnitude values, λ sweeps including λ = 0 — and diffs every
//! intermediate (Gram lower triangle, RHS) and final (solution vector or
//! `SolveError`) against the scalar kernel.
//!
//! # Ulp-bound policy
//!
//! The comparator supports a configurable ulp budget so the rig could
//! admit a documented reassociation, but every *shipped* kernel is
//! gated at **0 ulps** (`SHIPPED_MAX_ULPS`): the variants restrict
//! themselves to transformations that preserve the scalar op order per
//! accumulator (see `linalg::kernel`), and the repo's replay parity,
//! solve-cache digests, and chaos oracles all compare exact bits, so no
//! divergence is permitted. Because the shipped budget is zero, there
//! is no "permitted divergence" to replay through `Service`; the
//! stronger end-to-end statement — scalar vs. auto kernels produce
//! byte-identical `Service` replays — is pinned in
//! `crates/core/tests/kernel_parity.rs`.
//!
//! A negative control (`rig_detects_reassociation`) proves the rig
//! notices a single reassociated addition: summing the same products in
//! reverse order shifts the result by 1 ulp on a crafted stream, and
//! the comparator reports exactly that.

use linalg::kernel::{set_kernel_override, KernelVariant};
use linalg::lstsq::{GramScratch, SolveError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ulp budget for every kernel variant this repo ships. Any future
/// variant that needs a nonzero budget must document the reassociation
/// in `linalg::kernel` and extend the `Service` replay-parity suite.
const SHIPPED_MAX_ULPS: u64 = 0;

/// Distance in units-in-the-last-place between two finite doubles,
/// mapped through the standard monotonic reinterpretation of the IEEE
/// bit pattern. Identical bit patterns (including identical NaNs) are
/// distance 0; differing NaN involvement is `u64::MAX`.
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.to_bits() == b.to_bits() {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn monotonic(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    }
    monotonic(a).wrapping_sub(monotonic(b)).unsigned_abs()
}

/// Everything one kernel variant computes for one problem, as bits.
#[derive(Debug, PartialEq)]
struct KernelRun {
    gram: Vec<f64>,
    rhs: Vec<f64>,
    solution: Result<Vec<f64>, SolveError>,
}

fn run_variant(
    variant: KernelVariant,
    r: usize,
    rows: &[(Vec<f64>, f64)],
    lambda: f64,
) -> KernelRun {
    let mut gram = vec![0.0; r * r];
    let mut rhs = vec![0.0; r];
    variant.accumulate(
        rows.iter().map(|(row, y)| (row.as_slice(), *y)),
        lambda,
        &mut gram,
        &mut rhs,
    );
    let mut scratch = GramScratch::with_variant(r, variant);
    let mut out = vec![0.0; r];
    let solution = scratch
        .solve_ridge(rows.iter().map(|(row, y)| (row.as_slice(), *y)), lambda, &mut out)
        .map(|()| out);
    KernelRun { gram, rhs, solution }
}

/// Diffs `got` against the scalar `reference`, naming the variant, the
/// stage, and the exact lane of the first mismatch. The Gram triangle
/// and RHS are always held to 0 ulps (their accumulation order is
/// specified); the solution honours `max_ulps`.
fn compare(
    reference: &KernelRun,
    got: &KernelRun,
    variant: KernelVariant,
    r: usize,
    max_ulps: u64,
) -> Result<(), TestCaseError> {
    for i in 0..r {
        for j in 0..r {
            let (e, g) = (reference.gram[i * r + j], got.gram[i * r + j]);
            prop_assert!(
                e.to_bits() == g.to_bits(),
                "variant {variant} r={r}: gram[{i}][{j}] differs: {e:?} ({:#018x}) vs {g:?} ({:#018x})",
                e.to_bits(),
                g.to_bits()
            );
        }
    }
    for (k, (e, g)) in reference.rhs.iter().zip(&got.rhs).enumerate() {
        prop_assert!(
            e.to_bits() == g.to_bits(),
            "variant {variant} r={r}: rhs[{k}] differs: {e:?} vs {g:?}"
        );
    }
    match (&reference.solution, &got.solution) {
        (Ok(expected), Ok(out)) => {
            for (k, (e, g)) in expected.iter().zip(out).enumerate() {
                let ulps = ulp_distance(*e, *g);
                prop_assert!(
                    ulps <= max_ulps,
                    "variant {variant} r={r}: solution[{k}] off by {ulps} ulps \
                     (budget {max_ulps}): {e:?} vs {g:?}"
                );
            }
        }
        (Err(expected), Err(err)) => {
            prop_assert_eq!(expected, err, "variant {} r={}: error mismatch", variant, r);
        }
        (expected, got) => {
            return Err(TestCaseError::Fail(format!(
                "variant {variant} r={r}: scalar returned {expected:?} but kernel returned {got:?}"
            )));
        }
    }
    Ok(())
}

/// One adversarial scalar: moderate, huge (~1e100), or subnormal-range
/// magnitude, per the drawn class (class 3 mixes all of them).
fn draw_value(rng: &mut StdRng, class: usize) -> f64 {
    let pick = if class == 3 { rng.random_range(0..3usize) } else { class };
    match pick {
        0 => rng.random_range(-2.0..2.0),
        1 => rng.random_range(-1.0..1.0) * 1e100,
        _ => rng.random_range(-1.0..1.0) * 1e-308,
    }
}

fn draw_rows(rng: &mut StdRng, r: usize, nrows: usize, class: usize) -> Vec<(Vec<f64>, f64)> {
    (0..nrows)
        .map(|_| {
            let row: Vec<f64> = (0..r).map(|_| draw_value(rng, class)).collect();
            let y = draw_value(rng, class);
            (row, y)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: every variant that supports the drawn
    /// rank reproduces the scalar kernel bit for bit — Gram triangle,
    /// RHS, and solution (or the identical `SolveError`) — across
    /// adversarial ranks, row counts (including empty and
    /// single-observation units), magnitudes, and λ values (including
    /// λ = 0, where failure parity is part of the contract).
    #[test]
    fn variants_match_scalar_bitwise_over_adversarial_geometries(
        r in 1usize..=17,
        nrows in 0usize..12,
        lambda_class in 0usize..4,
        value_class in 0usize..4,
        seed in 0u64..(1 << 20),
    ) {
        let lambda = [0.0, 1e-300, 0.5, 1e12][lambda_class];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let rows = draw_rows(&mut rng, r, nrows, value_class);
        let reference = run_variant(KernelVariant::Scalar, r, &rows, lambda);
        for variant in KernelVariant::supported(r).skip(1) {
            let got = run_variant(variant, r, &rows, lambda);
            compare(&reference, &got, variant, r, SHIPPED_MAX_ULPS)?;
        }
    }

    /// λ sweep at the fixed ranks: the regularizer lands on the
    /// diagonal through the same final addition in every variant, from
    /// denormal λ up to λ large enough to dominate the Gram entries.
    #[test]
    fn lambda_sweep_preserves_bit_parity_at_fixed_ranks(
        rank_pick in 0usize..3,
        lambda_exp in -320i32..300,
        nrows in 1usize..9,
        seed in 0u64..(1 << 20),
    ) {
        let r = [4usize, 8, 16][rank_pick];
        let lambda = 10f64.powi(lambda_exp);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let rows = draw_rows(&mut rng, r, nrows, 0);
        let reference = run_variant(KernelVariant::Scalar, r, &rows, lambda);
        for variant in KernelVariant::supported(r).skip(1) {
            let got = run_variant(variant, r, &rows, lambda);
            compare(&reference, &got, variant, r, SHIPPED_MAX_ULPS)?;
        }
    }
}

/// Empty axes: with no observation rows the Gram matrix is exactly λI
/// and the solution is exactly zero in every variant; with λ = 0 every
/// variant must fail at pivot 0.
#[test]
fn empty_axis_parity() {
    for r in [1usize, 4, 5, 8, 16, 17] {
        let reference = run_variant(KernelVariant::Scalar, r, &[], 0.5);
        let zeros = vec![0u64; r];
        assert_eq!(
            reference.solution.as_ref().unwrap().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            zeros,
            "scalar empty-axis solution must be exactly zero at r={r}"
        );
        for variant in KernelVariant::supported(r).skip(1) {
            let got = run_variant(variant, r, &[], 0.5);
            compare(&reference, &got, variant, r, SHIPPED_MAX_ULPS).unwrap();
            let failed = run_variant(variant, r, &[], 0.0);
            assert_eq!(
                failed.solution.unwrap_err(),
                SolveError::NotPositiveDefinite { index: 0 },
                "variant {variant} r={r}: empty axis with λ=0 must fail at pivot 0"
            );
        }
    }
}

/// Rank-deficient design with λ = 0 must be rejected deterministically
/// by every variant, with the same pivot index: all-identical columns
/// zero the second pivot regardless of rank or kernel.
#[test]
fn rank_deficient_lambda_zero_error_parity() {
    for r in [2usize, 4, 5, 8, 16] {
        let rows: Vec<(Vec<f64>, f64)> = (0..3).map(|k| (vec![1.0 + k as f64; r], 1.0)).collect();
        for variant in KernelVariant::supported(r) {
            let got = run_variant(variant, r, &rows, 0.0);
            assert_eq!(
                got.solution.unwrap_err(),
                SolveError::NotPositiveDefinite { index: 1 },
                "variant {variant} r={r}: rank-deficient λ=0 pivot index"
            );
        }
    }
}

/// Negative control: the rig must be able to see a reassociation. A
/// kernel that sums the same per-entry products in reverse observation
/// order lands 1 ulp away from the reference on this crafted stream
/// (1e16 absorbs the two 1.0 contributions in forward order but not in
/// reverse), so a variant that reordered accumulation could not pass
/// the 0-ulp gate above.
#[test]
fn rig_detects_reassociation() {
    let rows: Vec<(Vec<f64>, f64)> = vec![(vec![1.0], 1e16), (vec![1.0], 1.0), (vec![1.0], 1.0)];
    let forward = run_variant(KernelVariant::Scalar, 1, &rows, 0.5);
    let reversed_rows: Vec<(Vec<f64>, f64)> = rows.iter().rev().cloned().collect();
    let reversed = run_variant(KernelVariant::Scalar, 1, &reversed_rows, 0.5);
    let (f, rv) = (forward.rhs[0], reversed.rhs[0]);
    assert_eq!(f, 1e16, "forward accumulation absorbs the unit contributions");
    assert_eq!(
        ulp_distance(f, rv),
        1,
        "reversed accumulation must land exactly 1 ulp away: {f:?} vs {rv:?}"
    );
    assert!(
        compare(&forward, &reversed, KernelVariant::Scalar, 1, SHIPPED_MAX_ULPS).is_err(),
        "the shipped 0-ulp gate must reject a reassociated accumulation"
    );
    // Accumulation order is *specified*, not merely preferred: the RHS
    // stage is held to 0 ulps regardless of the solution budget, so no
    // budget can launder a reordered accumulation through the rig.
    assert!(
        compare(&forward, &reversed, KernelVariant::Scalar, 1, u64::MAX).is_err(),
        "even an unlimited solution budget must not admit a reassociated RHS"
    );
}

/// The comparator itself: adjacent doubles are 1 ulp apart, sign
/// straddles measure through zero, and NaN mismatches are infinite.
#[test]
fn ulp_distance_is_calibrated() {
    assert_eq!(ulp_distance(1.0, 1.0), 0);
    assert_eq!(ulp_distance(-0.0, 0.0), 0);
    assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
    assert_eq!(ulp_distance(5e-324, 0.0), 1);
    assert_eq!(ulp_distance(-5e-324, 5e-324), 2);
    assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
    let nan = f64::NAN;
    assert_eq!(ulp_distance(nan, nan), 0, "identical NaN bits compare equal");
}

/// The process-global override steers `GramScratch::new` (and nothing
/// else): scratches pin their variant at construction, unsupported
/// fixed-rank overrides degrade to the unrolled family, and with the
/// `kernel` feature off the override is ignored entirely.
#[test]
fn kernel_override_controls_auto_selection() {
    set_kernel_override(None);
    let auto8 = GramScratch::new(8).variant();
    if cfg!(feature = "kernel") {
        assert_eq!(auto8, KernelVariant::Fixed8);
        set_kernel_override(Some(KernelVariant::Scalar));
        assert_eq!(GramScratch::new(8).variant(), KernelVariant::Scalar);
        set_kernel_override(Some(KernelVariant::Unrolled));
        assert_eq!(GramScratch::new(8).variant(), KernelVariant::Unrolled);
        // A fixed-rank override that cannot serve the rank degrades to
        // unrolled rather than panicking mid-sweep.
        set_kernel_override(Some(KernelVariant::Fixed4));
        assert_eq!(GramScratch::new(8).variant(), KernelVariant::Unrolled);
        assert_eq!(GramScratch::new(4).variant(), KernelVariant::Fixed4);
    } else {
        assert_eq!(auto8, KernelVariant::Scalar);
        set_kernel_override(Some(KernelVariant::Unrolled));
        assert_eq!(GramScratch::new(8).variant(), KernelVariant::Scalar);
    }
    set_kernel_override(None);
}
