//! Householder QR decomposition and QR-based least squares.
//!
//! Algorithm 1 of the paper repeatedly solves over-determined
//! ("contradictory", Eq. 17) linear systems `[L; sqrt(λ) I] R' = [M; 0]`.
//! The reference pseudo-code uses normal equations (`PᵀP \ PᵀQ`), which is
//! fast but squares the condition number; this module provides the more
//! robust QR route, and [`crate::lstsq`] exposes both so the bench suite can
//! ablate the choice.

use crate::{Matrix, MatrixShapeError};

/// Error returned by QR-based solvers when the system is unsolvable.
#[derive(Debug, Clone, PartialEq)]
pub enum QrError {
    /// Input shapes are inconsistent.
    Shape(MatrixShapeError),
    /// The matrix is (numerically) rank deficient: a diagonal entry of `R`
    /// fell below the given tolerance, so back substitution would divide by
    /// ~zero.
    RankDeficient {
        /// Index of the offending diagonal entry.
        index: usize,
        /// Magnitude found on the diagonal.
        value: f64,
    },
}

impl std::fmt::Display for QrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrError::Shape(e) => write!(f, "{e}"),
            QrError::RankDeficient { index, value } => {
                write!(f, "rank-deficient system: |R[{index},{index}]| = {value:.3e} too small")
            }
        }
    }
}

impl std::error::Error for QrError {}

impl From<MatrixShapeError> for QrError {
    fn from(e: MatrixShapeError) -> Self {
        QrError::Shape(e)
    }
}

/// A thin Householder QR decomposition `A = Q R` of an `m × n` matrix with
/// `m >= n`: `Q` is `m × n` with orthonormal columns and `R` is `n × n`
/// upper triangular.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, QrDecomposition};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = QrDecomposition::new(&a).unwrap();
/// let back = qr.q().matmul(qr.r()).unwrap();
/// assert!(back.approx_eq(&a, 1e-10));
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    q: Matrix,
    r: Matrix,
}

impl QrDecomposition {
    /// Computes the thin QR decomposition via Householder reflections.
    ///
    /// # Errors
    ///
    /// Returns an error when `a.rows() < a.cols()` (the thin factorization
    /// is only defined for tall or square matrices).
    pub fn new(a: &Matrix) -> Result<Self, QrError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(QrError::Shape(MatrixShapeError::new(format!(
                "thin QR requires rows >= cols, got {m}x{n}"
            ))));
        }
        // Work array: R starts as a copy of A and is reduced in place;
        // Householder vectors are accumulated to form thin Q afterwards.
        let mut r = a.clone();
        let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm_sq = 0.0;
            for i in k..m {
                let x = r.get(i, k);
                norm_sq += x * x;
            }
            let norm = norm_sq.sqrt();
            let mut v = vec![0.0; m - k];
            if norm == 0.0 {
                // Column already zero; record an identity reflector.
                vs.push(v);
                continue;
            }
            let x0 = r.get(k, k);
            let alpha = if x0 >= 0.0 { -norm } else { norm };
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = r.get(k + i, k);
            }
            v[0] -= alpha;
            let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
            if v_norm_sq > 0.0 {
                // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R.
                for j in k..n {
                    let mut dot = 0.0;
                    for i in 0..m - k {
                        dot += v[i] * r.get(k + i, j);
                    }
                    let factor = 2.0 * dot / v_norm_sq;
                    for i in 0..m - k {
                        let cur = r.get(k + i, j);
                        r.set(k + i, j, cur - factor * v[i]);
                    }
                }
            }
            vs.push(v);
        }
        // Form thin Q by applying the reflectors in reverse to the first n
        // columns of the identity.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q.set(j, j, 1.0);
        }
        for k in (0..n).rev() {
            let v = &vs[k];
            let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
            if v_norm_sq == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut dot = 0.0;
                for i in 0..m - k {
                    dot += v[i] * q.get(k + i, j);
                }
                let factor = 2.0 * dot / v_norm_sq;
                for i in 0..m - k {
                    let cur = q.get(k + i, j);
                    q.set(k + i, j, cur - factor * v[i]);
                }
            }
        }
        // Zero out the sub-diagonal noise of R and truncate to n x n.
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin.set(i, j, r.get(i, j));
            }
        }
        Ok(Self { q, r: r_thin })
    }

    /// The orthonormal factor `Q` (`m × n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min_X ‖A X − B‖_F` for each column
    /// of `B` using `R X = Qᵀ B`.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::RankDeficient`] when `R` has a near-zero diagonal
    /// entry, or a shape error when `B` has the wrong number of rows.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, QrError> {
        let qtb = self.q.transpose().matmul(b)?;
        back_substitute(&self.r, &qtb)
    }
}

/// Solves `R X = B` for upper-triangular `R` by back substitution,
/// column-by-column over `B`.
///
/// # Errors
///
/// Returns [`QrError::RankDeficient`] when a diagonal entry of `R` is
/// smaller than `1e-12 * max|R|`.
pub fn back_substitute(r: &Matrix, b: &Matrix) -> Result<Matrix, QrError> {
    let n = r.rows();
    if r.cols() != n || b.rows() != n {
        return Err(QrError::Shape(MatrixShapeError::new(format!(
            "back substitution shape mismatch: R is {}x{}, B is {}x{}",
            r.rows(),
            r.cols(),
            b.rows(),
            b.cols()
        ))));
    }
    let tol = 1e-12 * r.max_abs().max(1.0);
    let mut x = Matrix::zeros(n, b.cols());
    for col in 0..b.cols() {
        for i in (0..n).rev() {
            let mut acc = b.get(i, col);
            for j in i + 1..n {
                acc -= r.get(i, j) * x.get(j, col);
            }
            let d = r.get(i, i);
            if d.abs() < tol {
                return Err(QrError::RankDeficient { index: i, value: d.abs() });
            }
            x.set(i, col, acc / d);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::random_uniform(m, n, &mut rng, -5.0, 5.0)
    }

    #[test]
    fn qr_reconstructs_input() {
        for seed in 0..5 {
            let a = random_matrix(12, 5, seed);
            let qr = QrDecomposition::new(&a).unwrap();
            let back = qr.q().matmul(qr.r()).unwrap();
            assert!(back.approx_eq(&a, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = random_matrix(20, 7, 42);
        let qr = QrDecomposition::new(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(7), 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_matrix(9, 6, 3);
        let qr = QrDecomposition::new(&a).unwrap();
        for i in 0..6 {
            for j in 0..i {
                assert!(qr.r().get(i, j).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_exact_solution() {
        let a = random_matrix(10, 4, 11);
        let x_true = random_matrix(4, 3, 12);
        let b = a.matmul(&x_true).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn solve_minimizes_residual() {
        // Over-determined inconsistent system: the QR solution must have a
        // residual orthogonal to the column space (Aᵀ r ≈ 0).
        let a = random_matrix(15, 3, 5);
        let b = random_matrix(15, 1, 6);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        let residual = &a.matmul(&x).unwrap() - &b;
        let at_r = a.transpose().matmul(&residual).unwrap();
        assert!(at_r.max_abs() < 1e-8, "normal-equation residual {:?}", at_r);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 5);
        assert!(QrDecomposition::new(&a).is_err());
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        let b = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        match qr.solve(&b) {
            Err(QrError::RankDeficient { .. }) => {}
            other => panic!("expected rank-deficient error, got {other:?}"),
        }
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        // Decomposition itself should not fail even though A is singular.
        let qr = QrDecomposition::new(&a).unwrap();
        let back = qr.q().matmul(qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn square_system_solves_like_linear_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::column_vector(&[5.0, 10.0]);
        let x = QrDecomposition::new(&a).unwrap().solve(&b).unwrap();
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        assert!(crate::approx_eq(x.get(0, 0), 1.0, 1e-10));
        assert!(crate::approx_eq(x.get(1, 0), 3.0, 1e-10));
    }
}
