//! Gaussian sampling on top of any [`rand::RngExt`].
//!
//! The allowed offline dependency set includes `rand` but not
//! `rand_distr`, so the simulator's Gaussian noise (GPS speed error,
//! traffic fluctuation) uses a small Box–Muller implementation here.

use rand::RngExt;

/// Draws one standard-normal sample (mean 0, variance 1) via the
/// Box–Muller transform.
pub fn standard_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from zero so ln(u1) is finite.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics when `std_dev` is negative.
pub fn normal<R: RngExt + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative, got {std_dev}");
    mean + std_dev * standard_normal(rng)
}

/// Fills `out` with i.i.d. normal samples.
pub fn fill_normal<R: RngExt + ?Sized>(rng: &mut R, out: &mut [f64], mean: f64, std_dev: f64) {
    for v in out {
        *v = normal(rng, mean, std_dev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let m = mean(&samples);
        let s = std_dev(&samples);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((s - 1.0).abs() < 0.02, "std {s}");
    }

    #[test]
    fn shifted_and_scaled() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 30.0, 5.0)).collect();
        assert!((mean(&samples) - 30.0).abs() < 0.1);
        assert!((std_dev(&samples) - 5.0).abs() < 0.1);
    }

    #[test]
    fn zero_std_is_deterministic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(normal(&mut rng, 42.0, 0.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    fn fill_normal_fills_all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut buf = [0.0; 32];
        fill_normal(&mut rng, &mut buf, 10.0, 1.0);
        assert!(buf.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
