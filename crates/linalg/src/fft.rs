//! Fast Fourier transform for eigenflow classification.
//!
//! Equation 10 of the paper classifies an eigenflow as *type 1*
//! ("deterministic"/periodic) when the magnitude of its FFT contains a
//! spike. This module provides an iterative radix-2 Cooley–Tukey FFT with
//! zero padding to the next power of two, plus the magnitude-spectrum
//! helper the classifier consumes.

/// A complex number with `f64` parts — minimal on purpose; only what the
/// FFT needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude `sqrt(re² + im²)`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// Smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two; use [`fft_real`] for
/// arbitrary-length real input (it zero pads).
pub fn fft_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft_in_place requires power-of-two length, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2].mul(w);
                buf[start + k] = a.add(b);
                buf[start + k + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// FFT of a real signal, zero padded to the next power of two. Returns the
/// full complex spectrum (length `next_pow2(signal.len())`).
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = next_pow2(signal.len());
    let mut buf = vec![Complex::default(); n];
    for (b, &x) in buf.iter_mut().zip(signal) {
        b.re = x;
    }
    fft_in_place(&mut buf);
    buf
}

/// Magnitude spectrum `|FFT(u)|` over the positive frequencies
/// (indices `1..=n/2` of the padded transform). The DC bin is excluded
/// because eigenflows are compared against their mean, and a constant
/// offset must not register as a "spike".
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let spec = fft_real(signal);
    let half = spec.len() / 2;
    spec[1..=half.max(1)].iter().map(|c| c.abs()).collect()
}

/// Naive `O(n²)` DFT magnitude used as a cross-check oracle in tests.
pub fn dft_magnitude_naive(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in signal.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / n as f64;
            re += x * ang.cos();
            im += x * ang.sin();
        }
        out.push(re.hypot(im));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(next_pow2(65), 128);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut sig = vec![0.0; 8];
        sig[0] = 1.0;
        let spec = fft_real(&sig);
        for c in spec {
            assert!(crate::approx_eq(c.abs(), 1.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let sig = vec![2.0; 16];
        let spec = fft_real(&sig);
        assert!(crate::approx_eq(spec[0].abs(), 32.0, 1e-10));
        for c in &spec[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_pure_sine_concentrates_at_frequency() {
        let n = 64;
        let f = 5.0;
        let sig: Vec<f64> =
            (0..n).map(|t| (2.0 * std::f64::consts::PI * f * t as f64 / n as f64).sin()).collect();
        let spec = fft_real(&sig);
        // Energy at bins 5 and 59 only.
        assert!(crate::approx_eq(spec[5].abs(), 32.0, 1e-9));
        assert!(crate::approx_eq(spec[59].abs(), 32.0, 1e-9));
        for (k, c) in spec.iter().enumerate() {
            if k != 5 && k != 59 {
                assert!(c.abs() < 1e-9, "leakage at bin {k}: {}", c.abs());
            }
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let sig: Vec<f64> = (0..32).map(|t| ((t * t) % 7) as f64 - 3.0).collect();
        let fast = fft_real(&sig);
        let slow = dft_magnitude_naive(&sig);
        for k in 0..32 {
            assert!(crate::approx_eq(fast[k].abs(), slow[k], 1e-8), "bin {k}");
        }
    }

    #[test]
    fn fft_linearity() {
        let a: Vec<f64> = (0..16).map(|t| (t as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..16).map(|t| (t as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fsum = fft_real(&sum);
        for k in 0..16 {
            let lin = fa[k].add(fb[k]);
            assert!(crate::approx_eq(lin.re, fsum[k].re, 1e-9));
            assert!(crate::approx_eq(lin.im, fsum[k].im, 1e-9));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let sig: Vec<f64> = (0..64).map(|t| ((t as f64).sin() * 2.0) + 0.5).collect();
        let spec = fft_real(&sig);
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / 64.0;
        assert!(crate::approx_eq(time_energy, freq_energy, 1e-9));
    }

    #[test]
    fn magnitude_spectrum_excludes_dc() {
        let sig = vec![5.0; 32]; // pure DC
        let mags = magnitude_spectrum(&sig);
        assert_eq!(mags.len(), 16);
        assert!(mags.iter().all(|&m| m < 1e-9));
    }

    #[test]
    fn magnitude_spectrum_of_periodic_signal_has_peak() {
        let n = 96; // not a power of two — exercises padding
        let sig: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 8.0 * t as f64 / n as f64).sin())
            .collect();
        let mags = magnitude_spectrum(&sig);
        let peak = mags.iter().cloned().fold(0.0_f64, f64::max);
        let mean = mags.iter().sum::<f64>() / mags.len() as f64;
        assert!(peak > 5.0 * mean, "peak {peak} vs mean {mean}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn in_place_rejects_non_pow2() {
        let mut buf = vec![Complex::default(); 3];
        fft_in_place(&mut buf);
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a.mul(b);
        assert_eq!(p, Complex::new(5.0, 5.0));
        assert!(crate::approx_eq(Complex::new(3.0, 4.0).abs(), 5.0, 1e-12));
    }
}
