//! Singular value decomposition via the one-sided Jacobi method.
//!
//! The paper's empirical study (Section 3.1) rests on the SVD
//! `X = U S Vᵀ` (Eq. 7): singular-value spectra reveal the low-rank
//! structure of traffic condition matrices (Fig. 4), the columns of `U`
//! are the *eigenflows* (Eq. 8), and rank-k truncation gives the best
//! rank-k approximation used by both the PCA study (Fig. 6) and the MSSA
//! baseline.
//!
//! One-sided Jacobi was chosen over Golub–Kahan bidiagonalization because
//! it is simple, unconditionally convergent, and highly accurate for small
//! singular values; at the matrix sizes of this reproduction (≤ ~700×250)
//! its extra sweeps are irrelevant.

use crate::{Matrix, MatrixShapeError};

/// Relative off-diagonal tolerance at which Jacobi sweeps stop.
const JACOBI_TOL: f64 = 1e-12;

/// Hard cap on sweeps; one-sided Jacobi converges in far fewer for any
/// well-formed input (typically < 15 at these sizes).
const MAX_SWEEPS: usize = 60;

/// A thin singular value decomposition `A = U diag(s) Vᵀ`.
///
/// For an `m × n` input with `k = min(m, n)`: `U` is `m × k` with
/// orthonormal columns, `s` holds the `k` singular values in
/// non-increasing order, and `V` is `n × k` with orthonormal columns.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Svd};
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
/// let svd = Svd::compute(&a).unwrap();
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-10);
/// assert!((svd.singular_values()[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    s: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] for an empty matrix or non-finite
    /// entries (NaN/inf), which would stall the Jacobi sweeps.
    pub fn compute(a: &Matrix) -> Result<Self, MatrixShapeError> {
        if a.is_empty() {
            return Err(MatrixShapeError::new("cannot compute SVD of an empty matrix"));
        }
        if a.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(MatrixShapeError::new("SVD input contains non-finite entries"));
        }
        if a.rows() >= a.cols() {
            Ok(jacobi_tall(a))
        } else {
            // SVD(Aᵀ) = V S Uᵀ: compute on the transpose and swap factors.
            let t = jacobi_tall(&a.transpose());
            Ok(Self { u: t.v, s: t.s, v: t.u })
        }
    }

    /// Left singular vectors (`m × k`); column `i` is the *i-th eigenflow*
    /// `u_i` of the paper (Eq. 8).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values in non-increasing order.
    pub fn singular_values(&self) -> &[f64] {
        &self.s
    }

    /// Right singular vectors (`n × k`); column `i` is the unit
    /// eigenvector `v_i` of `XᵀX` for the i-th principal component.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Numerical rank: the number of singular values above
    /// `tol * s_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        self.s.iter().filter(|&&x| x > tol * smax).count()
    }

    /// Reconstructs the best rank-`k` approximation
    /// `X̂ = Σ_{i<k} σ_i u_i v_iᵀ` (Eq. 11), the minimizer of the
    /// Frobenius error among rank-≤k matrices (Eq. 12).
    ///
    /// `k` is clamped to the number of available singular values.
    pub fn truncate(&self, k: usize) -> Matrix {
        let k = k.min(self.s.len());
        let mut out = Matrix::zeros(self.u.rows(), self.v.rows());
        for i in 0..k {
            let sigma = self.s[i];
            if sigma == 0.0 {
                break; // remaining components are all zero
            }
            for r in 0..out.rows() {
                let ui = self.u.get(r, i) * sigma;
                if ui == 0.0 {
                    continue;
                }
                for c in 0..out.cols() {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + ui * self.v.get(c, i));
                }
            }
        }
        out
    }

    /// Reconstructs using only the listed components (by index), used for
    /// the per-eigenflow-type reconstructions of Fig. 7.
    ///
    /// Indices out of range are ignored.
    pub fn reconstruct_components(&self, components: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.u.rows(), self.v.rows());
        for &i in components {
            if i >= self.s.len() {
                continue;
            }
            let sigma = self.s[i];
            for r in 0..out.rows() {
                let ui = self.u.get(r, i) * sigma;
                if ui == 0.0 {
                    continue;
                }
                for c in 0..out.cols() {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + ui * self.v.get(c, i));
                }
            }
        }
        out
    }

    /// Fraction of total squared energy (`σ_i² / Σσ²`) captured by each
    /// component — the quantity behind the "sharp knee" of Fig. 4.
    pub fn energy_fractions(&self) -> Vec<f64> {
        let total: f64 = self.s.iter().map(|x| x * x).sum();
        if total == 0.0 {
            return vec![0.0; self.s.len()];
        }
        self.s.iter().map(|x| x * x / total).collect()
    }

    /// Smallest number of leading components whose cumulative energy
    /// reaches `fraction` (clamped to `[0, 1]`) of the total.
    pub fn components_for_energy(&self, fraction: f64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for (i, e) in self.energy_fractions().iter().enumerate() {
            acc += e;
            if acc >= fraction {
                return i + 1;
            }
        }
        self.s.len()
    }
}

/// One-sided Jacobi on a tall (or square) matrix, `m >= n`.
fn jacobi_tall(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // Column-major working copy: Jacobi rotates pairs of columns, so
    // contiguous columns make the inner loops cache friendly.
    let mut g: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            e
        })
        .collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in p + 1..n {
                let (alpha, beta, gamma) = {
                    let (gp, gq) = (&g[p], &g[q]);
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for i in 0..m {
                        alpha += gp[i] * gp[i];
                        beta += gq[i] * gq[i];
                        gamma += gp[i] * gq[i];
                    }
                    (alpha, beta, gamma)
                };
                let denom = (alpha * beta).sqrt();
                if denom == 0.0 || gamma.abs() <= JACOBI_TOL * denom {
                    continue;
                }
                off = off.max(gamma.abs() / denom);
                // Classic Jacobi rotation annihilating the (p,q) entry of
                // the implicit Gram matrix GᵀG.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (lo, hi) = g.split_at_mut(q);
                let (gp, gq) = (&mut lo[p], &mut hi[0]);
                for i in 0..m {
                    let (x, y) = (gp[i], gq[i]);
                    gp[i] = c * x - s * y;
                    gq[i] = s * x + c * y;
                }
                let (lo, hi) = v.split_at_mut(q);
                let (vp, vq) = (&mut lo[p], &mut hi[0]);
                for i in 0..n {
                    let (x, y) = (vp[i], vq[i]);
                    vp[i] = c * x - s * y;
                    vq[i] = s * x + c * y;
                }
            }
        }
        if off <= JACOBI_TOL {
            break;
        }
    }

    // Singular values are the column norms of the rotated G.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        g.iter().map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("finite norms"));

    let mut u = Matrix::zeros(m, n);
    let mut vm = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (out_j, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, out_j, g[j][i] / sigma);
            }
        } else {
            // Null singular value: leave a zero column in U; callers that
            // need a full basis can re-orthonormalize, which no user of
            // this crate requires.
        }
        for i in 0..n {
            vm.set(i, out_j, v[j][i]);
        }
    }
    Svd { u, s, v: vm }
}

/// Convenience wrapper: best rank-`k` approximation of `a`
/// (Eq. 11/12 of the paper).
///
/// # Errors
///
/// Propagates [`Svd::compute`] failures.
///
/// ```
/// use linalg::{Matrix, svd::low_rank_approx};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]); // rank 1
/// let approx = low_rank_approx(&a, 1).unwrap();
/// assert!(approx.approx_eq(&a, 1e-9));
/// ```
pub fn low_rank_approx(a: &Matrix, k: usize) -> Result<Matrix, MatrixShapeError> {
    Ok(Svd::compute(a)?.truncate(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::random_uniform(m, n, &mut rng, -3.0, 3.0)
    }

    fn assert_valid_svd(a: &Matrix, svd: &Svd, tol: f64) {
        let k = a.rows().min(a.cols());
        assert_eq!(svd.u().shape(), (a.rows(), k));
        assert_eq!(svd.v().shape(), (a.cols(), k));
        assert_eq!(svd.singular_values().len(), k);
        // Non-increasing, non-negative spectrum.
        for w in svd.singular_values().windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "spectrum not sorted: {w:?}");
        }
        assert!(svd.singular_values().iter().all(|&x| x >= 0.0));
        // Reconstruction.
        let back = svd.truncate(k);
        assert!(back.approx_eq(a, tol), "reconstruction failed");
        // Orthonormality of V (U may have zero columns for null sigma).
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(k), 1e-8), "VᵀV not identity");
    }

    #[test]
    fn diagonal_matrix_spectrum() {
        let a = Matrix::diag(&[5.0, 1.0, 3.0]);
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        assert!(crate::approx_eq(s[0], 5.0, 1e-12));
        assert!(crate::approx_eq(s[1], 3.0, 1e-12));
        assert!(crate::approx_eq(s[2], 1.0, 1e-12));
        assert_valid_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn tall_random_roundtrip() {
        for seed in 0..4 {
            let a = random_matrix(18, 6, seed);
            let svd = Svd::compute(&a).unwrap();
            assert_valid_svd(&a, &svd, 1e-8);
            let utu = svd.u().transpose().matmul(svd.u()).unwrap();
            assert!(utu.approx_eq(&Matrix::identity(6), 1e-8));
        }
    }

    #[test]
    fn wide_random_roundtrip() {
        let a = random_matrix(5, 14, 9);
        let svd = Svd::compute(&a).unwrap();
        assert_valid_svd(&a, &svd, 1e-8);
    }

    #[test]
    fn rank_of_low_rank_matrix() {
        // rank-2 matrix: outer product sum.
        let u = random_matrix(12, 2, 21);
        let v = random_matrix(7, 2, 22);
        let a = u.matmul(&v.transpose()).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 2);
        // Rank-2 truncation is exact.
        assert!(svd.truncate(2).approx_eq(&a, 1e-8));
    }

    #[test]
    fn truncation_error_equals_tail_energy() {
        // Eckart–Young: ‖A − A_k‖_F² = Σ_{i>k} σ_i².
        let a = random_matrix(10, 8, 33);
        let svd = Svd::compute(&a).unwrap();
        for k in 0..8 {
            let err = (&a - &svd.truncate(k)).frobenius_norm_sq();
            let tail: f64 = svd.singular_values()[k..].iter().map(|x| x * x).sum();
            assert!(crate::approx_eq(err, tail, 1e-7), "k={k}: {err} vs {tail}");
        }
    }

    #[test]
    fn frobenius_norm_equals_singular_value_energy() {
        let a = random_matrix(9, 9, 44);
        let svd = Svd::compute(&a).unwrap();
        let energy: f64 = svd.singular_values().iter().map(|x| x * x).sum();
        assert!(crate::approx_eq(a.frobenius_norm_sq(), energy, 1e-8));
    }

    #[test]
    fn energy_fractions_sum_to_one() {
        let a = random_matrix(6, 4, 55);
        let svd = Svd::compute(&a).unwrap();
        let total: f64 = svd.energy_fractions().iter().sum();
        assert!(crate::approx_eq(total, 1.0, 1e-10));
    }

    #[test]
    fn components_for_energy_monotone() {
        let a = random_matrix(10, 6, 66);
        let svd = Svd::compute(&a).unwrap();
        let k50 = svd.components_for_energy(0.5);
        let k90 = svd.components_for_energy(0.9);
        let k100 = svd.components_for_energy(1.0);
        assert!(k50 <= k90 && k90 <= k100);
        assert!(k100 <= 6);
        assert!(k50 >= 1);
    }

    #[test]
    fn reconstruct_components_partition() {
        // Reconstruction from all components, split into two groups, must
        // sum to the full matrix.
        let a = random_matrix(7, 5, 77);
        let svd = Svd::compute(&a).unwrap();
        let part1 = svd.reconstruct_components(&[0, 2, 4]);
        let part2 = svd.reconstruct_components(&[1, 3]);
        assert!((&part1 + &part2).approx_eq(&a, 1e-8));
        // Out-of-range indices are ignored.
        let same = svd.reconstruct_components(&[0, 2, 4, 99]);
        assert!(same.approx_eq(&part1, 1e-12));
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.singular_values().iter().all(|&x| x == 0.0));
        assert!(svd.truncate(3).approx_eq(&a, 1e-12));
        assert_eq!(svd.rank(1e-9), 0);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Svd::compute(&Matrix::zeros(0, 0)).is_err());
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, f64::NAN);
        assert!(Svd::compute(&a).is_err());
    }

    #[test]
    fn low_rank_approx_helper() {
        let a = random_matrix(8, 8, 88);
        let k2 = low_rank_approx(&a, 2).unwrap();
        let svd = Svd::compute(&k2).unwrap();
        assert!(svd.rank(1e-9) <= 2);
    }

    #[test]
    fn singular_values_match_gram_eigenvalues() {
        // For A = [[3, 0], [4, 5]], the singular values are sqrt(45) and
        // sqrt(5) (classic textbook example).
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]);
        let svd = Svd::compute(&a).unwrap();
        assert!(crate::approx_eq(svd.singular_values()[0], 45.0_f64.sqrt(), 1e-10));
        assert!(crate::approx_eq(svd.singular_values()[1], 5.0_f64.sqrt(), 1e-10));
    }
}
