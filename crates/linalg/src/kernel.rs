//! Vectorized and fixed-rank Gram kernels.
//!
//! The ALS sweep spends nearly all of its time in two loops from
//! [`crate::lstsq`]: [`accumulate_gram`]
//! (rank-r outer products over the observed entries of a unit) and
//! [`cholesky_solve_in_place`]
//! (factor + two triangular solves). This module provides drop-in
//! replacements that unroll those loops into explicit 4-wide f64 lanes,
//! plus const-generic fixed-rank specializations ([`GramKernel`]) for the
//! ranks the paper's experiments actually use (r ∈ {4, 8, 16}), where the
//! compiler can emit fully unrolled, register-resident code with no
//! dynamic trip counts at all.
//!
//! # Bit-exactness contract
//!
//! Every kernel in this module produces output **bit-for-bit identical**
//! to the scalar reference in `lstsq` — not merely close. The repo's
//! replay parity, solve-cache digests, chaos oracles, and checkpoint
//! round-trips all compare exact bits, so a kernel that reassociated a
//! single sum would be observable system-wide. The vectorization is
//! therefore restricted to transformations that provably preserve IEEE
//! semantics:
//!
//! * In Gram accumulation each entry `g[i][j]` is an *independent*
//!   accumulator receiving exactly one `row[i] * row[j]` product per
//!   observation row, in row order. Splitting the `j` loop into 4-wide
//!   lanes assigns each lane a disjoint set of accumulators — no single
//!   sum is ever reassociated.
//! * The fixed-rank kernels accumulate a *padded* lower triangle (row
//!   `i` computes `j < pad(i)`, `pad(i)` = `i+1` rounded up to a full
//!   4-lane) so the inner loop has no tail branch. The extra lanes land
//!   in scratch entries above the diagonal that are discarded at
//!   writeback; the surviving entries saw exactly the scalar op
//!   sequence.
//! * Cholesky and the triangular substitutions are reductions into one
//!   scalar, so they are unrolled without changing the strictly
//!   sequential `sum -= a[k]*b[k]` order (the unroll only removes loop
//!   and bounds-check overhead; the float ops are order-identical).
//!
//! The differential rig in `tests/kernel_parity_rig.rs` enforces this
//! contract at 0 ulp over adversarial geometries, and carries a negative
//! control proving it would detect a reassociating kernel.
//!
//! # Selection
//!
//! [`KernelVariant::auto`] picks the best variant for a runtime rank.
//! With the `kernel` cargo feature enabled (the default) it returns the
//! fixed-rank kernel when `r ∈ {4, 8, 16}` and the unrolled kernel
//! otherwise; built with `--no-default-features` it always returns
//! [`KernelVariant::Scalar`]. Because all variants agree bitwise, the
//! feature (and the bench-facing [`set_kernel_override`] hook) only ever
//! changes speed, never results.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::lstsq::{accumulate_gram, cholesky_solve_in_place, SolveError};

/// Which Gram/Cholesky kernel implementation a [`GramScratch`]
/// dispatches to. All variants are bit-for-bit identical; they differ
/// only in how the loops are laid out for the compiler.
///
/// [`GramScratch`]: crate::lstsq::GramScratch
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// The reference implementation in `lstsq` — simple nested loops,
    /// kept as the bit-exact baseline every other variant is diffed
    /// against.
    Scalar,
    /// Runtime-rank kernel with the inner loops unrolled into 4-wide
    /// f64 lanes (exact triangle, scalar tail).
    Unrolled,
    /// Fully monomorphized rank-4 kernel.
    Fixed4,
    /// Fully monomorphized rank-8 kernel.
    Fixed8,
    /// Fully monomorphized rank-16 kernel.
    Fixed16,
}

impl KernelVariant {
    /// All variants, scalar first — handy for exhaustive parity sweeps.
    pub const ALL: [KernelVariant; 5] = [
        KernelVariant::Scalar,
        KernelVariant::Unrolled,
        KernelVariant::Fixed4,
        KernelVariant::Fixed8,
        KernelVariant::Fixed16,
    ];

    /// Stable lower-case name used in bench JSON and error messages.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Unrolled => "unrolled",
            KernelVariant::Fixed4 => "fixed4",
            KernelVariant::Fixed8 => "fixed8",
            KernelVariant::Fixed16 => "fixed16",
        }
    }

    /// Whether this variant can solve rank-`r` systems.
    pub fn supports(self, r: usize) -> bool {
        match self {
            KernelVariant::Scalar | KernelVariant::Unrolled => true,
            KernelVariant::Fixed4 => r == 4,
            KernelVariant::Fixed8 => r == 8,
            KernelVariant::Fixed16 => r == 16,
        }
    }

    /// Every variant that supports rank `r`, scalar first.
    pub fn supported(r: usize) -> impl Iterator<Item = KernelVariant> {
        Self::ALL.into_iter().filter(move |v| v.supports(r))
    }

    /// Picks the variant for a runtime rank: the fixed-rank kernel when
    /// one exists, the unrolled kernel otherwise — unless the `kernel`
    /// feature is off (`--no-default-features`), which forces
    /// [`KernelVariant::Scalar`] and ignores any override.
    pub fn auto(r: usize) -> KernelVariant {
        if !cfg!(feature = "kernel") {
            return KernelVariant::Scalar;
        }
        if let Some(forced) = kernel_override() {
            if forced.supports(r) {
                return forced;
            }
            // A forced fixed-rank kernel that can't serve this rank
            // degrades to the nearest family member, not to a panic:
            // benches force Fixed8 once and still solve warmup ranks.
            if forced == KernelVariant::Scalar {
                return KernelVariant::Scalar;
            }
            return KernelVariant::Unrolled;
        }
        match r {
            4 => KernelVariant::Fixed4,
            8 => KernelVariant::Fixed8,
            16 => KernelVariant::Fixed16,
            _ => KernelVariant::Unrolled,
        }
    }

    /// Accumulates the ridge normal equations with this variant. Same
    /// contract (and same bits) as
    /// [`accumulate_gram`].
    ///
    /// # Panics
    ///
    /// Panics when buffer sizes disagree or the variant does not
    /// support `rhs.len()` (fixed-rank kernel fed the wrong rank).
    pub fn accumulate<'a>(
        self,
        rows: impl Iterator<Item = (&'a [f64], f64)>,
        lambda: f64,
        gram: &mut [f64],
        rhs: &mut [f64],
    ) {
        match self {
            KernelVariant::Scalar => accumulate_gram(rows, lambda, gram, rhs),
            KernelVariant::Unrolled => accumulate_gram_unrolled(rows, lambda, gram, rhs),
            KernelVariant::Fixed4 => GramKernel::<4>::accumulate(rows, lambda, gram, rhs),
            KernelVariant::Fixed8 => GramKernel::<8>::accumulate(rows, lambda, gram, rhs),
            KernelVariant::Fixed16 => GramKernel::<16>::accumulate(rows, lambda, gram, rhs),
        }
    }

    /// Factors and solves in place with this variant. Same contract
    /// (and same bits) as
    /// [`cholesky_solve_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] exactly when the
    /// scalar reference does, with the same pivot index.
    ///
    /// # Panics
    ///
    /// Panics when buffer sizes disagree or the variant does not
    /// support `rhs.len()`.
    pub fn solve_in_place(
        self,
        gram: &mut [f64],
        rhs: &[f64],
        y: &mut [f64],
        out: &mut [f64],
    ) -> Result<(), SolveError> {
        match self {
            KernelVariant::Scalar => cholesky_solve_in_place(gram, rhs, y, out),
            KernelVariant::Unrolled => cholesky_solve_in_place_unrolled(gram, rhs, y, out),
            KernelVariant::Fixed4 => GramKernel::<4>::solve_in_place(gram, rhs, y, out),
            KernelVariant::Fixed8 => GramKernel::<8>::solve_in_place(gram, rhs, y, out),
            KernelVariant::Fixed16 => GramKernel::<16>::solve_in_place(gram, rhs, y, out),
        }
    }

    fn to_code(self) -> u8 {
        match self {
            KernelVariant::Scalar => 1,
            KernelVariant::Unrolled => 2,
            KernelVariant::Fixed4 => 3,
            KernelVariant::Fixed8 => 4,
            KernelVariant::Fixed16 => 5,
        }
    }

    fn from_code(code: u8) -> Option<KernelVariant> {
        match code {
            1 => Some(KernelVariant::Scalar),
            2 => Some(KernelVariant::Unrolled),
            3 => Some(KernelVariant::Fixed4),
            4 => Some(KernelVariant::Fixed8),
            5 => Some(KernelVariant::Fixed16),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-global kernel override consulted by [`KernelVariant::auto`].
/// `0` means "no override"; other values are `to_code` outputs.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces every subsequently constructed `GramScratch` onto `variant`
/// (or restores auto-selection with `None`). A bench/diagnostic hook:
/// because all variants are bit-identical, flipping the override can
/// change throughput but never results, so it is safe even with
/// concurrently running solvers. Ignored when the `kernel` feature is
/// off — `--no-default-features` builds always run scalar.
///
/// Scratches constructed *before* the call keep their variant; use
/// `GramScratch::with_variant` for scoped, local control in tests.
pub fn set_kernel_override(variant: Option<KernelVariant>) {
    KERNEL_OVERRIDE.store(variant.map_or(0, KernelVariant::to_code), Ordering::Relaxed);
}

/// The override currently installed by [`set_kernel_override`], if any.
pub fn kernel_override() -> Option<KernelVariant> {
    KernelVariant::from_code(KERNEL_OVERRIDE.load(Ordering::Relaxed))
}

/// Runtime-rank Gram accumulation with the inner product loop split
/// into explicit 4-wide f64 lanes (exact lower triangle, scalar tail
/// for `(i+1) % 4` entries).
///
/// Bit-for-bit identical to
/// [`accumulate_gram`]: each Gram entry
/// is its own accumulator, so distributing entries across lanes never
/// reassociates any individual sum.
///
/// # Panics
///
/// Panics when `gram.len() != rhs.len()²` or a design row is shorter
/// than `rhs.len()`.
pub fn accumulate_gram_unrolled<'a>(
    rows: impl Iterator<Item = (&'a [f64], f64)>,
    lambda: f64,
    gram: &mut [f64],
    rhs: &mut [f64],
) {
    let r = rhs.len();
    assert_eq!(gram.len(), r * r, "gram buffer must be r*r");
    gram.fill(0.0);
    rhs.fill(0.0);
    for (row, y) in rows {
        let row = &row[..r];
        for i in 0..r {
            let di = row[i];
            let len = i + 1;
            let main = len & !3;
            let gi = &mut gram[i * r..i * r + len];
            let (g_main, g_tail) = gi.split_at_mut(main);
            let (r_main, r_tail) = row[..len].split_at(main);
            for (g4, r4) in g_main.chunks_exact_mut(4).zip(r_main.chunks_exact(4)) {
                g4[0] += di * r4[0];
                g4[1] += di * r4[1];
                g4[2] += di * r4[2];
                g4[3] += di * r4[3];
            }
            for (g, &v) in g_tail.iter_mut().zip(r_tail) {
                *g += di * v;
            }
            rhs[i] += di * y;
        }
    }
    for i in 0..r {
        gram[i * r + i] += lambda;
    }
}

/// `sum - Σ a[k]·b[k]`, accumulated strictly left to right — the same
/// op order as the scalar reference loops — with the body unrolled 4×
/// to cut loop and bounds-check overhead. `a` and `b` must be equally
/// long.
#[inline(always)]
fn fold_neg_dot(mut sum: f64, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let main = n & !3;
    let mut k = 0;
    while k < main {
        sum -= a[k] * b[k];
        sum -= a[k + 1] * b[k + 1];
        sum -= a[k + 2] * b[k + 2];
        sum -= a[k + 3] * b[k + 3];
        k += 4;
    }
    while k < n {
        sum -= a[k] * b[k];
        k += 1;
    }
    sum
}

/// Shared Cholesky + substitution body: callers pass the rank so the
/// fixed-rank wrappers can hand the compiler a compile-time constant
/// (`#[inline(always)]` + const propagation fully unrolls the loops)
/// while the runtime-rank wrapper reuses the identical arithmetic.
///
/// Operation-for-operation the same float sequence as the scalar
/// [`cholesky_solve_in_place`]:
/// the reductions run strictly sequentially (see [`fold_neg_dot`]), so
/// results agree bitwise including the `NotPositiveDefinite` pivot
/// index.
#[inline(always)]
fn cholesky_solve_impl(
    r: usize,
    gram: &mut [f64],
    rhs: &[f64],
    y: &mut [f64],
    out: &mut [f64],
) -> Result<(), SolveError> {
    assert_eq!(rhs.len(), r, "rhs must be length r");
    assert_eq!(gram.len(), r * r, "gram buffer must be r*r");
    assert_eq!(y.len(), r, "y scratch must be length r");
    assert_eq!(out.len(), r, "out buffer must be length r");
    // In-place Cholesky of the lower triangle: gram becomes L.
    for i in 0..r {
        for j in 0..=i {
            let sum = {
                let row_i = &gram[i * r..i * r + j];
                let row_j = &gram[j * r..j * r + j];
                fold_neg_dot(gram[i * r + j], row_i, row_j)
            };
            if i == j {
                if sum <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite { index: i });
                }
                gram[i * r + i] = sum.sqrt();
            } else {
                gram[i * r + j] = sum / gram[j * r + j];
            }
        }
    }
    // Forward: L y = rhs.
    for i in 0..r {
        let acc = fold_neg_dot(rhs[i], &gram[i * r..i * r + i], &y[..i]);
        y[i] = acc / gram[i * r + i];
    }
    // Backward: Lᵀ out = y. Column-strided access, so the unroll is
    // written out by hand instead of via `fold_neg_dot`.
    for i in (0..r).rev() {
        let mut acc = y[i];
        let mut k = i + 1;
        while k + 4 <= r {
            acc -= gram[k * r + i] * out[k];
            acc -= gram[(k + 1) * r + i] * out[k + 1];
            acc -= gram[(k + 2) * r + i] * out[k + 2];
            acc -= gram[(k + 3) * r + i] * out[k + 3];
            k += 4;
        }
        while k < r {
            acc -= gram[k * r + i] * out[k];
            k += 1;
        }
        out[i] = acc / gram[i * r + i];
    }
    Ok(())
}

/// Runtime-rank in-place Cholesky solve with 4×-unrolled (but strictly
/// order-preserving) reductions. Bit-for-bit identical to
/// [`cholesky_solve_in_place`].
///
/// # Errors
///
/// Returns [`SolveError::NotPositiveDefinite`] exactly when the scalar
/// reference does, with the same pivot index.
///
/// # Panics
///
/// Panics when the buffer lengths disagree (`gram` must be `r²`, `y`
/// and `out` must be `r` where `r = rhs.len()`).
pub fn cholesky_solve_in_place_unrolled(
    gram: &mut [f64],
    rhs: &[f64],
    y: &mut [f64],
    out: &mut [f64],
) -> Result<(), SolveError> {
    cholesky_solve_impl(rhs.len(), gram, rhs, y, out)
}

/// Const-generic fixed-rank Gram/Cholesky kernel. `R` must be a
/// multiple of 4 (instantiated for 4, 8, 16 via
/// [`KernelVariant::auto`]); with the rank a compile-time constant the
/// accumulation loop becomes a branch-free padded triangle and the
/// solve fully unrolls into register-resident code.
pub struct GramKernel<const R: usize>;

impl<const R: usize> GramKernel<R> {
    /// Padded row width: `i + 1` rounded up to a whole 4-lane. For `R`
    /// a multiple of 4 this never exceeds `R`, so row `i` of the local
    /// triangle reads `row[0..pad(i)]` with no tail branch; lanes with
    /// `j > i` accumulate into scratch entries that writeback discards.
    #[inline(always)]
    fn pad(i: usize) -> usize {
        (i + 4) & !3
    }

    /// Fixed-rank Gram accumulation into a local `R × R` scratch
    /// triangle, written back (lower triangle + λ diagonal) at the end.
    /// Bit-for-bit identical to
    /// [`accumulate_gram`] at rank `R`.
    ///
    /// # Panics
    ///
    /// Panics when `rhs.len() != R`, `gram.len() != R²`, or a design
    /// row is shorter than `R`.
    pub fn accumulate<'a>(
        rows: impl Iterator<Item = (&'a [f64], f64)>,
        lambda: f64,
        gram: &mut [f64],
        rhs: &mut [f64],
    ) {
        assert!(R.is_multiple_of(4), "GramKernel requires a 4-lane rank");
        assert_eq!(rhs.len(), R, "rhs must be length R");
        assert_eq!(gram.len(), R * R, "gram buffer must be R*R");
        let mut acc = [[0.0f64; R]; R];
        let mut acc_rhs = [0.0f64; R];
        for (row, y) in rows {
            let row: &[f64; R] = row[..R].try_into().expect("design row shorter than rank");
            for i in 0..R {
                let di = row[i];
                let ai = &mut acc[i];
                let mut j = 0;
                while j < Self::pad(i) {
                    ai[j] += di * row[j];
                    ai[j + 1] += di * row[j + 1];
                    ai[j + 2] += di * row[j + 2];
                    ai[j + 3] += di * row[j + 3];
                    j += 4;
                }
                acc_rhs[i] += di * y;
            }
        }
        // Writeback: lower triangle only (exactly what the solve
        // reads), zeros elsewhere, λ added to the accumulated diagonal
        // in the same final position as the scalar kernel.
        gram.fill(0.0);
        for i in 0..R {
            gram[i * R..i * R + i + 1].copy_from_slice(&acc[i][..i + 1]);
            gram[i * R + i] += lambda;
        }
        rhs.copy_from_slice(&acc_rhs);
    }

    /// Fixed-rank in-place Cholesky solve: the shared order-preserving
    /// body monomorphized at `R`, so every loop bound is a constant.
    /// Bit-for-bit identical to
    /// [`cholesky_solve_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] exactly when the
    /// scalar reference does, with the same pivot index.
    ///
    /// # Panics
    ///
    /// Panics when `rhs.len() != R` or the other buffers disagree.
    pub fn solve_in_place(
        gram: &mut [f64],
        rhs: &[f64],
        y: &mut [f64],
        out: &mut [f64],
    ) -> Result<(), SolveError> {
        assert_eq!(rhs.len(), R, "rhs must be length R");
        cholesky_solve_impl(R, gram, rhs, y, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_picks_fixed_rank_when_available() {
        set_kernel_override(None);
        if cfg!(feature = "kernel") {
            assert_eq!(KernelVariant::auto(4), KernelVariant::Fixed4);
            assert_eq!(KernelVariant::auto(8), KernelVariant::Fixed8);
            assert_eq!(KernelVariant::auto(16), KernelVariant::Fixed16);
            assert_eq!(KernelVariant::auto(5), KernelVariant::Unrolled);
            assert_eq!(KernelVariant::auto(1), KernelVariant::Unrolled);
        } else {
            for r in [1, 4, 5, 8, 16, 17] {
                assert_eq!(KernelVariant::auto(r), KernelVariant::Scalar);
            }
        }
    }

    #[test]
    fn supported_lists_scalar_first() {
        let at_8: Vec<_> = KernelVariant::supported(8).collect();
        assert_eq!(at_8, [KernelVariant::Scalar, KernelVariant::Unrolled, KernelVariant::Fixed8]);
        let at_5: Vec<_> = KernelVariant::supported(5).collect();
        assert_eq!(at_5, [KernelVariant::Scalar, KernelVariant::Unrolled]);
    }

    #[test]
    fn display_matches_name() {
        for v in KernelVariant::ALL {
            assert_eq!(v.to_string(), v.name());
        }
    }

    #[test]
    fn padded_width_stays_within_rank() {
        for i in 0..8 {
            let pad = GramKernel::<8>::pad(i);
            assert!(pad > i && pad <= 8 && pad.is_multiple_of(4), "pad({i}) = {pad}");
        }
        for i in 0..16 {
            let pad = GramKernel::<16>::pad(i);
            assert!(pad > i && pad <= 16 && pad.is_multiple_of(4), "pad({i}) = {pad}");
        }
    }
}
