//! Least-squares and ridge solvers.
//!
//! Algorithm 1's `inverse(P, Q)` procedure computes the best approximate
//! solution `C = PᵀP \ PᵀQ` of the contradictory system `P C = Q` (Eq. 17).
//! With `P = [L; sqrt(λ) I]` and `Q = [M; 0]` that is exactly the ridge
//! (Tikhonov) regression `(LᵀL + λI) C = Lᵀ M`. Two implementations are
//! offered:
//!
//! * [`solve_normal_equations`] — the paper's route: form the Gram matrix
//!   and solve with Cholesky. Fast (`O(r²m + r³)`), adequate because λ > 0
//!   keeps the system well conditioned.
//! * [`solve_qr`] — Householder QR on the stacked system, numerically safer
//!   when λ is tiny. Used by the `als_solver` ablation bench.

use crate::kernel::KernelVariant;
use crate::qr::{QrDecomposition, QrError};
use crate::{Matrix, MatrixShapeError};

/// Error returned by direct solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Input shapes are inconsistent.
    Shape(MatrixShapeError),
    /// The Gram matrix is not positive definite (Cholesky pivot `<= 0`),
    /// which for ridge systems can only happen with λ = 0 and a
    /// rank-deficient design matrix.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        index: usize,
    },
    /// QR solver failure.
    Qr(QrError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Shape(e) => write!(f, "{e}"),
            SolveError::NotPositiveDefinite { index } => {
                write!(f, "matrix not positive definite at pivot {index}")
            }
            SolveError::Qr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<MatrixShapeError> for SolveError {
    fn from(e: MatrixShapeError) -> Self {
        SolveError::Shape(e)
    }
}

impl From<QrError> for SolveError {
    fn from(e: QrError) -> Self {
        SolveError::Qr(e)
    }
}

/// Cholesky decomposition `A = L Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor `L`.
///
/// # Errors
///
/// Returns [`SolveError::NotPositiveDefinite`] when a pivot is not strictly
/// positive, and a shape error for non-square input.
///
/// ```
/// use linalg::{Matrix, lstsq::cholesky};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a).unwrap();
/// let back = l.matmul(&l.transpose()).unwrap();
/// assert!(back.approx_eq(&a, 1e-12));
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::Shape(MatrixShapeError::new(format!(
            "cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        ))));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite { index: i });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A X = B` for symmetric positive-definite `A` via Cholesky
/// (forward then backward substitution per column of `B`).
///
/// # Errors
///
/// Propagates Cholesky failures and shape mismatches.
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.rows() != n {
        return Err(SolveError::Shape(MatrixShapeError::new(format!(
            "rhs has {} rows, expected {n}",
            b.rows()
        ))));
    }
    let mut x = Matrix::zeros(n, b.cols());
    for col in 0..b.cols() {
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b.get(i, col);
            for k in 0..i {
                acc -= l.get(i, k) * y[k];
            }
            y[i] = acc / l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= l.get(k, i) * x.get(k, col);
            }
            x.set(i, col, acc / l.get(i, i));
        }
    }
    Ok(x)
}

/// Ridge regression via normal equations: solves
/// `(AᵀA + λ I) X = Aᵀ B`, i.e. `min_X ‖A X − B‖_F² + λ‖X‖_F²`.
///
/// This is the literal `inverse([A; sqrt(λ) I], [B; 0])` of the paper's
/// Algorithm 1 (`PᵀP \ PᵀQ` with the stacked system folded analytically).
///
/// # Errors
///
/// Fails when shapes mismatch or when `λ = 0` and `A` is rank deficient.
///
/// ```
/// use linalg::{Matrix, lstsq::solve_normal_equations};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let b = Matrix::column_vector(&[1.0, 2.0, 3.0]);
/// let x = solve_normal_equations(&a, &b, 0.0).unwrap();
/// assert!((x.get(0, 0) - 1.0).abs() < 1e-9);
/// ```
pub fn solve_normal_equations(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
    let at = a.transpose();
    let mut gram = at.matmul(a)?;
    for i in 0..gram.rows() {
        let d = gram.get(i, i);
        gram.set(i, i, d + lambda);
    }
    let rhs = at.matmul(b)?;
    solve_spd(&gram, &rhs)
}

/// Accumulates the ridge normal equations `AᵀA + λI` and `Aᵀy` directly
/// from the design rows of the observed entries, without materializing
/// `A`: each `(row, y)` pair contributes `row rowᵀ` to `gram` and
/// `y·row` to `rhs`.
///
/// Only the lower triangle of `gram` (row-major `r × r`) is written —
/// exactly the entries [`cholesky_solve_in_place`] reads. Contributions
/// are added in iteration order, which makes the result bit-for-bit
/// identical to `Aᵀ.matmul(A)` / `Aᵀ.matmul(y)` on the materialized
/// design matrix: both accumulate each entry's partial products in
/// observation order.
///
/// This is the *scalar reference kernel*: the vectorized variants in
/// [`crate::kernel`] are verified bit-for-bit against it.
///
/// # Panics
///
/// Panics when `gram.len() != rhs.len()²` or a design row is shorter
/// than `rhs.len()`.
pub fn accumulate_gram<'a>(
    rows: impl Iterator<Item = (&'a [f64], f64)>,
    lambda: f64,
    gram: &mut [f64],
    rhs: &mut [f64],
) {
    let r = rhs.len();
    assert_eq!(gram.len(), r * r, "gram buffer must be r*r");
    gram.fill(0.0);
    rhs.fill(0.0);
    for (row, y) in rows {
        let row = &row[..r];
        for i in 0..r {
            let di = row[i];
            let gi = &mut gram[i * r..i * r + i + 1];
            for (j, g) in gi.iter_mut().enumerate() {
                *g += di * row[j];
            }
            rhs[i] += di * y;
        }
    }
    for i in 0..r {
        gram[i * r + i] += lambda;
    }
}

/// Solves `G x = rhs` for symmetric positive-definite `G` entirely in
/// caller-owned buffers: the lower triangle of `gram` is overwritten by
/// its Cholesky factor, `y` is the forward-substitution scratch, and the
/// solution lands in `out`. No heap allocation.
///
/// The arithmetic replays [`cholesky`] + [`solve_spd`] operation for
/// operation (same loop order, same association), so the result is
/// bit-for-bit identical to the allocating route. This is the *scalar
/// reference kernel* the vectorized variants in [`crate::kernel`] are
/// verified against.
///
/// # Errors
///
/// Returns [`SolveError::NotPositiveDefinite`] when a pivot is not
/// strictly positive (for ridge systems, only possible with `λ = 0` and
/// a rank-deficient design).
///
/// # Panics
///
/// Panics when the buffer lengths disagree (`gram` must be `r²`, `y`
/// and `out` must be `r` where `r = rhs.len()`).
pub fn cholesky_solve_in_place(
    gram: &mut [f64],
    rhs: &[f64],
    y: &mut [f64],
    out: &mut [f64],
) -> Result<(), SolveError> {
    let r = rhs.len();
    assert_eq!(gram.len(), r * r, "gram buffer must be r*r");
    assert_eq!(y.len(), r, "y scratch must be length r");
    assert_eq!(out.len(), r, "out buffer must be length r");
    // In-place Cholesky of the lower triangle: gram becomes L.
    for i in 0..r {
        for j in 0..=i {
            let mut sum = gram[i * r + j];
            for k in 0..j {
                sum -= gram[i * r + k] * gram[j * r + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite { index: i });
                }
                gram[i * r + i] = sum.sqrt();
            } else {
                gram[i * r + j] = sum / gram[j * r + j];
            }
        }
    }
    // Forward: L y = rhs.
    for i in 0..r {
        let mut acc = rhs[i];
        for k in 0..i {
            acc -= gram[i * r + k] * y[k];
        }
        y[i] = acc / gram[i * r + i];
    }
    // Backward: Lᵀ out = y.
    for i in (0..r).rev() {
        let mut acc = y[i];
        for k in i + 1..r {
            acc -= gram[k * r + i] * out[k];
        }
        out[i] = acc / gram[i * r + i];
    }
    Ok(())
}

/// Caller-owned scratch for the allocation-free ridge kernel: one `r×r`
/// Gram buffer plus two `r`-vectors, allocated once and reused across
/// any number of [`GramScratch::solve_ridge`] calls. This is what each
/// ALS worker carries across the units of a sweep.
///
/// Construction picks a kernel implementation via
/// [`KernelVariant::auto`] — the fixed-rank kernel for r ∈ {4, 8, 16},
/// the 4-lane unrolled kernel otherwise, or the scalar reference when
/// the `kernel` feature is disabled. All variants are bit-for-bit
/// identical, so the choice affects speed only.
#[derive(Debug, Clone)]
pub struct GramScratch {
    r: usize,
    variant: KernelVariant,
    gram: Vec<f64>,
    rhs: Vec<f64>,
    y: Vec<f64>,
}

impl GramScratch {
    /// Allocates scratch for rank-`r` ridge systems, auto-selecting the
    /// kernel variant for the rank.
    pub fn new(r: usize) -> Self {
        Self::with_variant(r, KernelVariant::auto(r))
    }

    /// Allocates scratch pinned to an explicit kernel `variant` — used
    /// by the parity rig and benches to compare implementations without
    /// touching the process-global override.
    ///
    /// # Panics
    ///
    /// Panics when `variant` does not support rank `r` (a fixed-rank
    /// kernel fed a different rank).
    pub fn with_variant(r: usize, variant: KernelVariant) -> Self {
        assert!(variant.supports(r), "kernel variant {variant} does not support rank {r}");
        Self { r, variant, gram: vec![0.0; r * r], rhs: vec![0.0; r], y: vec![0.0; r] }
    }

    /// The rank this scratch was sized for.
    pub fn rank(&self) -> usize {
        self.r
    }

    /// The kernel variant this scratch dispatches to.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// Solves `min_x ‖A x − y‖² + λ‖x‖²` where `A`'s rows (and the
    /// matching targets) come from `rows`, writing the solution into
    /// `out` without allocating. Bit-for-bit equal to
    /// [`solve_normal_equations`] on the materialized system.
    ///
    /// # Errors
    ///
    /// See [`cholesky_solve_in_place`].
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.rank()` or a design row is
    /// shorter than the rank.
    pub fn solve_ridge<'a>(
        &mut self,
        rows: impl Iterator<Item = (&'a [f64], f64)>,
        lambda: f64,
        out: &mut [f64],
    ) -> Result<(), SolveError> {
        self.variant.accumulate(rows, lambda, &mut self.gram, &mut self.rhs);
        self.variant.solve_in_place(&mut self.gram, &self.rhs, &mut self.y, out)
    }

    /// Solves one ridge unit whose design rows are the rows of `design`
    /// named by `indices` with targets `values`: the per-unit step of an
    /// ALS factor solve, shared by the full sweep and the incremental
    /// dirty-unit path so the two produce bit-identical rows by
    /// construction. An empty unit (no observations) is driven to zero
    /// by the regularizer, so `out` is filled with `0.0` directly.
    ///
    /// # Errors
    ///
    /// See [`cholesky_solve_in_place`].
    ///
    /// # Panics
    ///
    /// Panics when `indices` and `values` disagree in length, an index
    /// is out of bounds for `design`, or `out.len() != self.rank()`.
    pub fn solve_ridge_rows(
        &mut self,
        design: &Matrix,
        indices: &[u32],
        values: &[f64],
        lambda: f64,
        out: &mut [f64],
    ) -> Result<(), SolveError> {
        assert_eq!(indices.len(), values.len(), "indices and values must pair up");
        if indices.is_empty() {
            out.fill(0.0);
            return Ok(());
        }
        self.solve_ridge(
            indices.iter().zip(values).map(|(&i, &v)| (design.row(i as usize), v)),
            lambda,
            out,
        )
    }
}

/// Ridge regression via QR on the explicitly stacked system
/// `[A; sqrt(λ) I] X = [B; 0]` — numerically safer than the normal
/// equations when `A` is ill conditioned.
///
/// # Errors
///
/// Fails when shapes mismatch or the stacked system is rank deficient
/// (only possible at `λ = 0`).
pub fn solve_qr(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
    let n = a.cols();
    let stacked_a = a.vstack(&(&Matrix::identity(n) * lambda.sqrt()))?;
    let stacked_b = b.vstack(&Matrix::zeros(n, b.cols()))?;
    let qr = QrDecomposition::new(&stacked_a)?;
    Ok(qr.solve(&stacked_b)?)
}

/// Which direct solver the ALS inner step should use. Exposed so benches
/// can ablate the design choice called out in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RidgeSolver {
    /// Normal equations + Cholesky (the paper's `inverse` procedure).
    #[default]
    NormalEquations,
    /// Householder QR on the stacked system.
    Qr,
}

impl RidgeSolver {
    /// Solves `min_X ‖A X − B‖_F² + λ‖X‖_F²` with the selected backend.
    ///
    /// # Errors
    ///
    /// Propagates the backend's failure modes (see [`solve_normal_equations`]
    /// and [`solve_qr`]).
    pub fn solve(self, a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
        match self {
            RidgeSolver::NormalEquations => solve_normal_equations(a, b, lambda),
            RidgeSolver::Qr => solve_qr(a, b, lambda),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::random_uniform(m, n, &mut rng, -2.0, 2.0)
    }

    #[test]
    fn cholesky_known_factor() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = cholesky(&a).unwrap();
        let expected = Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]);
        assert!(l.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(cholesky(&a), Err(SolveError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(cholesky(&Matrix::zeros(2, 3)), Err(SolveError::Shape(_))));
    }

    #[test]
    fn solve_spd_exact() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, -2.0], &[2.0, 0.5]]);
        let b = a.matmul(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn normal_equations_match_qr_with_regularization() {
        let a = random_matrix(30, 5, 1);
        let b = random_matrix(30, 4, 2);
        let lambda = 0.5;
        let x_ne = solve_normal_equations(&a, &b, lambda).unwrap();
        let x_qr = solve_qr(&a, &b, lambda).unwrap();
        assert!(x_ne.approx_eq(&x_qr, 1e-7), "solvers disagree");
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = random_matrix(20, 3, 3);
        let b = random_matrix(20, 1, 4);
        let x_small = solve_normal_equations(&a, &b, 1e-6).unwrap();
        let x_large = solve_normal_equations(&a, &b, 1e6).unwrap();
        assert!(x_large.frobenius_norm() < 1e-3 * x_small.frobenius_norm().max(1e-9) + 1e-3);
    }

    #[test]
    fn ridge_optimality_condition() {
        // Gradient of the ridge objective must vanish: Aᵀ(AX - B) + λX = 0.
        let a = random_matrix(25, 4, 5);
        let b = random_matrix(25, 2, 6);
        let lambda = 2.5;
        for solver in [RidgeSolver::NormalEquations, RidgeSolver::Qr] {
            let x = solver.solve(&a, &b, lambda).unwrap();
            let grad =
                &a.transpose().matmul(&(&a.matmul(&x).unwrap() - &b)).unwrap() + &(&x * lambda);
            assert!(grad.max_abs() < 1e-8, "{solver:?} gradient {:?}", grad.max_abs());
        }
    }

    #[test]
    fn rank_deficient_with_zero_lambda_fails() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        assert!(solve_normal_equations(&a, &b, 0.0).is_err());
        // With a positive lambda the same system becomes solvable.
        assert!(solve_normal_equations(&a, &b, 1e-3).is_ok());
    }

    #[test]
    fn default_solver_is_normal_equations() {
        assert_eq!(RidgeSolver::default(), RidgeSolver::NormalEquations);
    }

    /// The Gram kernel must reproduce the allocating normal-equations
    /// route *bit for bit*: same products, same summation order.
    #[test]
    fn gram_kernel_matches_normal_equations_bitwise() {
        for (m, r, lambda, seed) in
            [(12, 3, 0.5, 10), (40, 8, 100.0, 11), (7, 2, 1e-6, 12), (5, 5, 2.0, 13)]
        {
            let a = random_matrix(m, r, seed);
            let b = random_matrix(m, 1, seed + 100);
            let expected = solve_normal_equations(&a, &b, lambda).unwrap();
            let mut scratch = GramScratch::new(r);
            let mut out = vec![0.0; r];
            scratch.solve_ridge((0..m).map(|i| (a.row(i), b.get(i, 0))), lambda, &mut out).unwrap();
            for (k, &got) in out.iter().enumerate() {
                assert!(
                    got.to_bits() == expected.get(k, 0).to_bits(),
                    "m={m} r={r} λ={lambda}: entry {k}: {got:?} vs {:?}",
                    expected.get(k, 0)
                );
            }
        }
    }

    #[test]
    fn gram_kernel_reuse_is_stateless() {
        // Solving system B after system A must give the same bits as
        // solving B with fresh scratch: the buffers are fully reset.
        let a1 = random_matrix(20, 4, 21);
        let b1 = random_matrix(20, 1, 22);
        let a2 = random_matrix(9, 4, 23);
        let b2 = random_matrix(9, 1, 24);
        let mut reused = GramScratch::new(4);
        let mut out = vec![0.0; 4];
        reused.solve_ridge((0..20).map(|i| (a1.row(i), b1.get(i, 0))), 0.3, &mut out).unwrap();
        reused.solve_ridge((0..9).map(|i| (a2.row(i), b2.get(i, 0))), 0.3, &mut out).unwrap();
        let mut fresh = GramScratch::new(4);
        let mut expected = vec![0.0; 4];
        fresh.solve_ridge((0..9).map(|i| (a2.row(i), b2.get(i, 0))), 0.3, &mut expected).unwrap();
        assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn solve_ridge_rows_matches_solve_ridge_bitwise() {
        let design = random_matrix(14, 3, 31);
        let indices: Vec<u32> = vec![0, 3, 5, 9, 13];
        let values: Vec<f64> = vec![1.5, -0.25, 2.0, 0.75, -1.0];
        let lambda = 0.8;
        let mut by_rows = GramScratch::new(3);
        let mut got = vec![0.0; 3];
        by_rows.solve_ridge_rows(&design, &indices, &values, lambda, &mut got).unwrap();
        let mut by_iter = GramScratch::new(3);
        let mut expected = vec![0.0; 3];
        by_iter
            .solve_ridge(
                indices.iter().zip(values.iter()).map(|(&i, &v)| (design.row(i as usize), v)),
                lambda,
                &mut expected,
            )
            .unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn solve_ridge_rows_empty_unit_is_zero() {
        let design = random_matrix(4, 2, 32);
        let mut scratch = GramScratch::new(2);
        let mut out = vec![7.0; 2];
        scratch.solve_ridge_rows(&design, &[], &[], 1.0, &mut out).unwrap();
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn gram_kernel_detects_indefinite() {
        // Rank-deficient design with λ = 0: second pivot is exactly 0.
        let rows = [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]];
        let mut scratch = GramScratch::new(2);
        let mut out = vec![0.0; 2];
        let err =
            scratch.solve_ridge(rows.iter().map(|r| (&r[..], 1.0)), 0.0, &mut out).unwrap_err();
        assert!(matches!(err, SolveError::NotPositiveDefinite { .. }), "{err}");
    }

    #[test]
    fn accumulate_gram_lower_triangle_and_lambda() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut gram = vec![0.0; 4];
        let mut rhs = vec![0.0; 2];
        accumulate_gram((0..2).map(|i| (a.row(i), 1.0)), 10.0, &mut gram, &mut rhs);
        // AᵀA = [[10, 14], [14, 20]]; lower triangle + λ on the diagonal.
        assert_eq!(gram[0], 20.0);
        assert_eq!(gram[2], 14.0);
        assert_eq!(gram[3], 30.0);
        assert_eq!(rhs, vec![4.0, 6.0]);
    }
}
