//! Least-squares and ridge solvers.
//!
//! Algorithm 1's `inverse(P, Q)` procedure computes the best approximate
//! solution `C = PᵀP \ PᵀQ` of the contradictory system `P C = Q` (Eq. 17).
//! With `P = [L; sqrt(λ) I]` and `Q = [M; 0]` that is exactly the ridge
//! (Tikhonov) regression `(LᵀL + λI) C = Lᵀ M`. Two implementations are
//! offered:
//!
//! * [`solve_normal_equations`] — the paper's route: form the Gram matrix
//!   and solve with Cholesky. Fast (`O(r²m + r³)`), adequate because λ > 0
//!   keeps the system well conditioned.
//! * [`solve_qr`] — Householder QR on the stacked system, numerically safer
//!   when λ is tiny. Used by the `als_solver` ablation bench.

use crate::qr::{QrDecomposition, QrError};
use crate::{Matrix, MatrixShapeError};

/// Error returned by direct solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Input shapes are inconsistent.
    Shape(MatrixShapeError),
    /// The Gram matrix is not positive definite (Cholesky pivot `<= 0`),
    /// which for ridge systems can only happen with λ = 0 and a
    /// rank-deficient design matrix.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        index: usize,
    },
    /// QR solver failure.
    Qr(QrError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Shape(e) => write!(f, "{e}"),
            SolveError::NotPositiveDefinite { index } => {
                write!(f, "matrix not positive definite at pivot {index}")
            }
            SolveError::Qr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<MatrixShapeError> for SolveError {
    fn from(e: MatrixShapeError) -> Self {
        SolveError::Shape(e)
    }
}

impl From<QrError> for SolveError {
    fn from(e: QrError) -> Self {
        SolveError::Qr(e)
    }
}

/// Cholesky decomposition `A = L Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor `L`.
///
/// # Errors
///
/// Returns [`SolveError::NotPositiveDefinite`] when a pivot is not strictly
/// positive, and a shape error for non-square input.
///
/// ```
/// use linalg::{Matrix, lstsq::cholesky};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a).unwrap();
/// let back = l.matmul(&l.transpose()).unwrap();
/// assert!(back.approx_eq(&a, 1e-12));
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::Shape(MatrixShapeError::new(format!(
            "cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        ))));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite { index: i });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A X = B` for symmetric positive-definite `A` via Cholesky
/// (forward then backward substitution per column of `B`).
///
/// # Errors
///
/// Propagates Cholesky failures and shape mismatches.
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.rows() != n {
        return Err(SolveError::Shape(MatrixShapeError::new(format!(
            "rhs has {} rows, expected {n}",
            b.rows()
        ))));
    }
    let mut x = Matrix::zeros(n, b.cols());
    for col in 0..b.cols() {
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b.get(i, col);
            for k in 0..i {
                acc -= l.get(i, k) * y[k];
            }
            y[i] = acc / l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in i + 1..n {
                acc -= l.get(k, i) * x.get(k, col);
            }
            x.set(i, col, acc / l.get(i, i));
        }
    }
    Ok(x)
}

/// Ridge regression via normal equations: solves
/// `(AᵀA + λ I) X = Aᵀ B`, i.e. `min_X ‖A X − B‖_F² + λ‖X‖_F²`.
///
/// This is the literal `inverse([A; sqrt(λ) I], [B; 0])` of the paper's
/// Algorithm 1 (`PᵀP \ PᵀQ` with the stacked system folded analytically).
///
/// # Errors
///
/// Fails when shapes mismatch or when `λ = 0` and `A` is rank deficient.
///
/// ```
/// use linalg::{Matrix, lstsq::solve_normal_equations};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let b = Matrix::column_vector(&[1.0, 2.0, 3.0]);
/// let x = solve_normal_equations(&a, &b, 0.0).unwrap();
/// assert!((x.get(0, 0) - 1.0).abs() < 1e-9);
/// ```
pub fn solve_normal_equations(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
    let at = a.transpose();
    let mut gram = at.matmul(a)?;
    for i in 0..gram.rows() {
        let d = gram.get(i, i);
        gram.set(i, i, d + lambda);
    }
    let rhs = at.matmul(b)?;
    solve_spd(&gram, &rhs)
}

/// Ridge regression via QR on the explicitly stacked system
/// `[A; sqrt(λ) I] X = [B; 0]` — numerically safer than the normal
/// equations when `A` is ill conditioned.
///
/// # Errors
///
/// Fails when shapes mismatch or the stacked system is rank deficient
/// (only possible at `λ = 0`).
pub fn solve_qr(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
    let n = a.cols();
    let stacked_a = a.vstack(&(&Matrix::identity(n) * lambda.sqrt()))?;
    let stacked_b = b.vstack(&Matrix::zeros(n, b.cols()))?;
    let qr = QrDecomposition::new(&stacked_a)?;
    Ok(qr.solve(&stacked_b)?)
}

/// Which direct solver the ALS inner step should use. Exposed so benches
/// can ablate the design choice called out in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RidgeSolver {
    /// Normal equations + Cholesky (the paper's `inverse` procedure).
    #[default]
    NormalEquations,
    /// Householder QR on the stacked system.
    Qr,
}

impl RidgeSolver {
    /// Solves `min_X ‖A X − B‖_F² + λ‖X‖_F²` with the selected backend.
    ///
    /// # Errors
    ///
    /// Propagates the backend's failure modes (see [`solve_normal_equations`]
    /// and [`solve_qr`]).
    pub fn solve(self, a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix, SolveError> {
        match self {
            RidgeSolver::NormalEquations => solve_normal_equations(a, b, lambda),
            RidgeSolver::Qr => solve_qr(a, b, lambda),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::random_uniform(m, n, &mut rng, -2.0, 2.0)
    }

    #[test]
    fn cholesky_known_factor() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = cholesky(&a).unwrap();
        let expected = Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]);
        assert!(l.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(cholesky(&a), Err(SolveError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(matches!(cholesky(&Matrix::zeros(2, 3)), Err(SolveError::Shape(_))));
    }

    #[test]
    fn solve_spd_exact() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, -2.0], &[2.0, 0.5]]);
        let b = a.matmul(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn normal_equations_match_qr_with_regularization() {
        let a = random_matrix(30, 5, 1);
        let b = random_matrix(30, 4, 2);
        let lambda = 0.5;
        let x_ne = solve_normal_equations(&a, &b, lambda).unwrap();
        let x_qr = solve_qr(&a, &b, lambda).unwrap();
        assert!(x_ne.approx_eq(&x_qr, 1e-7), "solvers disagree");
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = random_matrix(20, 3, 3);
        let b = random_matrix(20, 1, 4);
        let x_small = solve_normal_equations(&a, &b, 1e-6).unwrap();
        let x_large = solve_normal_equations(&a, &b, 1e6).unwrap();
        assert!(x_large.frobenius_norm() < 1e-3 * x_small.frobenius_norm().max(1e-9) + 1e-3);
    }

    #[test]
    fn ridge_optimality_condition() {
        // Gradient of the ridge objective must vanish: Aᵀ(AX - B) + λX = 0.
        let a = random_matrix(25, 4, 5);
        let b = random_matrix(25, 2, 6);
        let lambda = 2.5;
        for solver in [RidgeSolver::NormalEquations, RidgeSolver::Qr] {
            let x = solver.solve(&a, &b, lambda).unwrap();
            let grad =
                &a.transpose().matmul(&(&a.matmul(&x).unwrap() - &b)).unwrap() + &(&x * lambda);
            assert!(grad.max_abs() < 1e-8, "{solver:?} gradient {:?}", grad.max_abs());
        }
    }

    #[test]
    fn rank_deficient_with_zero_lambda_fails() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        assert!(solve_normal_equations(&a, &b, 0.0).is_err());
        // With a positive lambda the same system becomes solvable.
        assert!(solve_normal_equations(&a, &b, 1e-3).is_ok());
    }

    #[test]
    fn default_solver_is_normal_equations() {
        assert_eq!(RidgeSolver::default(), RidgeSolver::NormalEquations);
    }
}
