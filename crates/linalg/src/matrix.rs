//! Row-major dense matrix of `f64` and its arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// Error returned when two matrices have incompatible shapes for an
/// operation, or when raw data does not match the requested dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl MatrixShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix shape error: {}", self.msg)
    }
}

impl std::error::Error for MatrixShapeError {}

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the reproduction: traffic condition
/// matrices, indicator matrices, and the `L`/`R` factors of the compressive
/// sensing algorithm are all `Matrix` values.
///
/// Indexing is `(row, col)`, zero-based. In the traffic-condition-matrix
/// convention of the paper, rows are time slots and columns are road
/// segments.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.transpose().get(2, 1), 5.0);
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_show) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.get(r, c))?;
            }
            if self.cols > max_show {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates an `rows × cols` matrix filled with zeros.
    ///
    /// ```
    /// let z = linalg::Matrix::zeros(2, 2);
    /// assert_eq!(z.get(1, 1), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "row {i} has length {} != {ncols}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: nrows, cols: ncols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixShapeError> {
        if data.len() != rows * cols {
            return Err(MatrixShapeError::new(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a single-column matrix from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn diag(values: &[f64]) -> Self {
        let mut m = Self::zeros(values.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries (`rows * cols`), `size(B)` in the paper's
    /// integrity definition.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries in total.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows the `row`-th row as a contiguous slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds for {} rows", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows the `row`-th row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds for {} rows", self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies the `col`-th column into a new `Vec`.
    pub fn col(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "col {col} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Overwrites the `col`-th column from a slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.rows()`.
    pub fn set_col(&mut self, col: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (r, &v) in values.iter().enumerate() {
            self.set(r, col, v);
        }
    }

    /// Overwrites the `row`-th row from a slice of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.cols()`.
    pub fn set_row(&mut self, row: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.row_mut(row).copy_from_slice(values);
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data.iter().enumerate().map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MatrixShapeError> {
        if self.cols != rhs.rows {
            return Err(MatrixShapeError::new(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and
        // `out` rows, which matters at the ~700x250 sizes used in benches.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhsᵀ` without materializing the transpose.
    ///
    /// Both operands are walked along their contiguous rows (every
    /// output entry is a dot product of a `self` row with a `rhs` row),
    /// and the output is tiled into `64×64` blocks so the working set of
    /// `rhs` rows stays cache-resident while a block of `self` rows
    /// streams past it. This is the fast path for the low-rank
    /// reconstruction `X̂ = L Rᵀ`, where the shared dimension (the rank)
    /// is tiny and `transpose()` + `matmul` would touch `R` column-wise.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] when `self.cols() != rhs.cols()`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Result<Matrix, MatrixShapeError> {
        if self.cols != rhs.cols {
            return Err(MatrixShapeError::new(format!(
                "cannot multiply {}x{} by transposed {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        const BLOCK: usize = 64;
        let (m, n, r) = (self.rows, rhs.rows, self.cols);
        let mut out = Matrix::zeros(m, n);
        for ib in (0..m).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(m);
            for jb in (0..n).step_by(BLOCK) {
                let j_end = (jb + BLOCK).min(n);
                for i in ib..i_end {
                    let a_row = self.row(i);
                    let out_row = &mut out.data[i * n + jb..i * n + j_end];
                    for (o, j) in out_row.iter_mut().zip(jb..j_end) {
                        let b_row = rhs.row(j);
                        let mut acc = 0.0;
                        for k in 0..r {
                            acc += a_row[k] * b_row[k];
                        }
                        *o = acc;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Element-wise (Hadamard) product, the `.×` operator of the paper
    /// (Eq. 4): `Z = X .× Y`, `z_ij = x_ij * y_ij`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, MatrixShapeError> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` element-wise to pairs from `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] on shape mismatch.
    pub fn zip_with(
        &self,
        rhs: &Matrix,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Matrix, MatrixShapeError> {
        if self.shape() != rhs.shape() {
            return Err(MatrixShapeError::new(format!(
                "shape mismatch: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Self { rows: self.rows, cols: self.cols, data })
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm `sqrt(sum of squared entries)`, `‖·‖_F` in the paper.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm (avoids the final `sqrt`).
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Sum of all entries, `sum(B)` in the paper's integrity definition.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest absolute entry; zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns a copy of the sub-matrix covering rows `r0..r1` and columns
    /// `c0..c1` (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix bounds or are inverted.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(
            r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols,
            "invalid submatrix range"
        );
        Matrix::from_fn(r1 - r0, c1 - c0, |r, c| self.get(r0 + r, c0 + c))
    }

    /// Returns a new matrix containing only the listed columns, in order.
    /// Used to form traffic matrices from selected road-segment sets
    /// (Section 4.5 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, cols.len(), |r, j| self.get(r, cols[j]))
    }

    /// Returns a new matrix containing only the listed rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        Matrix::from_fn(rows.len(), self.cols, |i, c| self.get(rows[i], c))
    }

    /// Stacks `self` on top of `other` (`[self; other]` in MATLAB notation),
    /// as used by Algorithm 1's contradictory-equation formulation (Eq. 17).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, MatrixShapeError> {
        if self.cols != other.cols {
            return Err(MatrixShapeError::new(format!(
                "vstack column mismatch: {} vs {}",
                self.cols, other.cols
            )));
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols: self.cols, data })
    }

    /// Places `self` left of `other` (`[self, other]`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] when row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, MatrixShapeError> {
        if self.rows != other.rows {
            return Err(MatrixShapeError::new(format!(
                "hstack row mismatch: {} vs {}",
                self.rows, other.rows
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Fills the matrix with independent uniform samples from `[lo, hi)`.
    pub fn fill_uniform<R: rand::RngExt + ?Sized>(&mut self, rng: &mut R, lo: f64, hi: f64) {
        for v in &mut self.data {
            *v = rng.random_range(lo..hi);
        }
    }

    /// Creates an `rows × cols` matrix of uniform samples from `[lo, hi)`,
    /// the random initialization of `L` in Algorithm 1.
    pub fn random_uniform<R: rand::RngExt + ?Sized>(
        rows: usize,
        cols: usize,
        rng: &mut R,
        lo: f64,
        hi: f64,
    ) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        m.fill_uniform(rng, lo, hi);
        m
    }

    /// Returns `true` when every entry of the difference is within `tol` of
    /// zero (mixed absolute/relative test via [`crate::approx_eq`]).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::matmul`] for a fallible
    /// version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix multiplication shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|v| -v)
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix += shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix -= shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, s: f64) {
        self.scale_in_place(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (10 * r + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn get_set_index() {
        let mut m = sample();
        assert_eq!(m[(1, 2)], 6.0);
        m[(1, 2)] = 9.0;
        assert_eq!(m.get(1, 2), 9.0);
        m.set(0, 0, -1.0);
        assert_eq!(m[(0, 0)], -1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(2, 0);
    }

    #[test]
    fn rows_and_cols_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn set_row_col() {
        let mut m = sample();
        m.set_row(0, &[7.0, 8.0, 9.0]);
        assert_eq!(m.row(0), &[7.0, 8.0, 9.0]);
        m.set_col(1, &[0.5, 1.5]);
        assert_eq!(m.col(1), vec![0.5, 1.5]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample(); // 2x3
        let b = a.transpose(); // 3x2
        let p = a.matmul(&b).unwrap();
        // [[14, 32], [32, 77]]
        assert_eq!(p.get(0, 0), 14.0);
        assert_eq!(p.get(0, 1), 32.0);
        assert_eq!(p.get(1, 0), 32.0);
        assert_eq!(p.get(1, 1), 77.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        // Sizes straddling the 64-wide block boundary in both dims.
        for (m, n, r) in [(3, 2, 4), (64, 64, 2), (65, 130, 8), (1, 200, 3), (100, 1, 5)] {
            let a = Matrix::random_uniform(m, r, &mut rng, -1.0, 1.0);
            let b = Matrix::random_uniform(n, r, &mut rng, -1.0, 1.0);
            let fast = a.matmul_transpose_b(&b).unwrap();
            let slow = a.matmul(&b.transpose()).unwrap();
            assert_eq!(fast.shape(), (m, n));
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!(x.to_bits() == y.to_bits(), "({m}x{n}x{r}): {x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn matmul_transpose_b_shape_mismatch() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(3, 5);
        assert!(a.matmul_transpose_b(&b).is_err());
    }

    #[test]
    fn hadamard_matches_paper_dot_product() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let z = x.hadamard(&b).unwrap();
        assert_eq!(z, Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]));
    }

    #[test]
    fn arithmetic_operators() {
        let a = sample();
        let s = &a + &a;
        assert_eq!(s.get(1, 1), 10.0);
        let d = &s - &a;
        assert_eq!(d, a);
        let sc = &a * 2.0;
        assert_eq!(sc.get(0, 2), 6.0);
        let n = -&a;
        assert_eq!(n.get(0, 0), -1.0);
        let mut m = a.clone();
        m += &a;
        m -= &a;
        assert_eq!(m, a);
        m *= 3.0;
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!(crate::approx_eq(m.frobenius_norm(), 5.0, 1e-12));
        assert!(crate::approx_eq(m.frobenius_norm_sq(), 25.0, 1e-12));
    }

    #[test]
    fn submatrix_and_selection() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
        let cols = m.select_columns(&[3, 0]);
        assert_eq!(cols.col(0), vec![3.0, 7.0, 11.0, 15.0]);
        assert_eq!(cols.col(1), vec![0.0, 4.0, 8.0, 12.0]);
        let rows = m.select_rows(&[2]);
        assert_eq!(rows.row(0), m.row(2));
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn random_uniform_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = Matrix::random_uniform(10, 10, &mut rng, -1.0, 1.0);
        assert!(m.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
        // Not all equal (vanishingly unlikely with a working RNG).
        assert!(m.as_slice().windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn map_and_scale() {
        let m = sample();
        let sq = m.map(|v| v * v);
        assert_eq!(sq.get(1, 2), 36.0);
        let mut s = m.clone();
        s.scale_in_place(0.5);
        assert_eq!(s.get(0, 1), 1.0);
    }

    #[test]
    fn iter_yields_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
    }

    #[test]
    fn max_abs_and_sum() {
        let m = Matrix::from_rows(&[&[-5.0, 2.0], &[3.0, -1.0]]);
        assert_eq!(m.max_abs(), 5.0);
        assert_eq!(m.sum(), -1.0);
    }

    #[test]
    fn approx_eq_matrices() {
        let a = sample();
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-13);
        assert!(a.approx_eq(&b, 1e-9));
        b.set(0, 0, 2.0);
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Matrix::zeros(2, 2), 1e-9));
    }

    #[test]
    fn debug_output_nonempty() {
        let s = format!("{:?}", sample());
        assert!(s.contains("Matrix 2x3"));
    }
}
