//! Dense linear-algebra substrate for the cs-traffic reproduction.
//!
//! The paper's algorithms (alternating least squares matrix completion, PCA
//! via SVD, MSSA, eigenflow classification by FFT) were originally run on
//! MATLAB's numeric stack. This crate rebuilds the required pieces from
//! scratch on plain `Vec<f64>` storage:
//!
//! * [`Matrix`] — row-major dense matrix with the usual arithmetic.
//! * [`qr`] — Householder QR factorization and least-squares solving.
//! * [`svd`] — one-sided Jacobi singular value decomposition.
//! * [`eig`] — cyclic-Jacobi symmetric eigendecomposition.
//! * [`power`] — subspace iteration for leading eigenpairs.
//! * [`lstsq`] — least-squares and ridge (Tikhonov) solvers, Cholesky.
//! * [`fft`] — iterative radix-2 FFT and power spectra.
//! * [`stats`] — means, variances, quantiles, Pearson correlation, CDFs.
//! * [`rng`] — Gaussian sampling (Box–Muller) on top of any [`rand::Rng`].
//!
//! Matrix sizes in the reproduction are modest (time slots × road segments,
//! at most ~700 × ~250), so clarity and numerical robustness are favoured
//! over blocked/cache-tiled kernels.
//!
//! # Example
//!
//! ```
//! use linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = &a * &a.transpose();
//! assert_eq!(b.get(0, 0), 5.0);
//! ```

// Numeric kernels index several parallel buffers by position; iterator
// rewrites (zip chains) obscure the linear-algebra correspondence.
#![allow(clippy::needless_range_loop)]

pub mod eig;
pub mod fft;
pub mod kernel;
pub mod lstsq;
mod matrix;
pub mod power;
pub mod qr;
pub mod rng;
pub mod stats;
pub mod svd;

pub use kernel::{set_kernel_override, GramKernel, KernelVariant};
pub use matrix::{Matrix, MatrixShapeError};
pub use qr::QrDecomposition;
pub use svd::Svd;

/// Convenience alias used throughout the workspace: absolute tolerance for
/// floating-point comparisons in tests and iterative-solver stopping rules.
pub const EPS: f64 = 1e-10;

/// Returns `true` when `a` and `b` agree within `tol` absolutely or
/// relatively (whichever is looser), the standard mixed test for comparing
/// floating-point results of different magnitude.
///
/// ```
/// assert!(linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!linalg::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9));
    }
}
