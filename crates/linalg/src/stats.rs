//! Summary statistics, Pearson correlation, and empirical CDFs.
//!
//! These back several pieces of the reproduction: spike detection in
//! eigenflow classification (mean + k·std thresholds, Eq. 10), the
//! correlation-weighted KNN baseline (Eq. 20), and all of the CDF figures
//! (Figs. 2, 3, 13, 14).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); `0.0` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square error between two equal-length series, the metric the
/// paper quotes for Fig. 6 (RMSE ≈ 9.67 between original and rank-5
/// reconstructed traffic conditions).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal-length series");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Pearson correlation coefficient of two equal-length series; returns
/// `0.0` when either series has zero variance (the convention used by the
/// correlation-KNN baseline: constant rows carry no weighting signal).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal-length series");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Pearson correlation over only the positions where both series are
/// observed (`mask_a[i] && mask_b[i]`). Needed by correlation-KNN on
/// incomplete matrices. Returns `0.0` with fewer than two common points.
///
/// # Panics
///
/// Panics when slice lengths differ.
pub fn pearson_masked(a: &[f64], b: &[f64], mask_a: &[bool], mask_b: &[bool]) -> f64 {
    assert!(a.len() == b.len() && a.len() == mask_a.len() && a.len() == mask_b.len());
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..a.len() {
        if mask_a[i] && mask_b[i] {
            xs.push(a[i]);
            ys.push(b[i]);
        }
    }
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&xs, &ys)
}

/// Linear-interpolated quantile (`q` in `[0, 1]`) of an unsorted slice.
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]` or data contains NaN.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One point of an empirical CDF: the fraction of samples `<= value`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CdfPoint {
    /// Sample value (x-axis).
    pub value: f64,
    /// Cumulative fraction in `[0, 1]` (y-axis).
    pub fraction: f64,
}

/// Empirical cumulative distribution function of `xs`, evaluated at every
/// sample (sorted ascending). This is what Figs. 2, 3, 13 and 14 plot.
///
/// # Panics
///
/// Panics if the data contains NaN.
pub fn empirical_cdf(xs: &[f64]) -> Vec<CdfPoint> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &value)| CdfPoint { value, fraction: (i + 1) as f64 / n })
        .collect()
}

/// Evaluates an empirical CDF at `x`: the fraction of samples `<= x`.
pub fn cdf_at(points: &[CdfPoint], x: f64) -> f64 {
    // Points are sorted by value; binary search for the last value <= x.
    match points.binary_search_by(|p| p.value.partial_cmp(&x).expect("NaN in CDF")) {
        Ok(mut i) => {
            // Step past duplicates so we report the highest fraction at x.
            while i + 1 < points.len() && points[i + 1].value <= x {
                i += 1;
            }
            points[i].fraction
        }
        Err(0) => 0.0,
        Err(i) => points[i - 1].fraction,
    }
}

/// Detects "spikes" per the paper's rule beneath Eq. 10: a value is a
/// spike when it deviates from the mean by more than `k` standard
/// deviations (the paper uses `k = 4`). Returns the spike indices.
pub fn spike_indices(xs: &[f64], k: f64) -> Vec<usize> {
    let m = mean(xs);
    let sd = std_dev(xs);
    if sd == 0.0 {
        return Vec::new();
    }
    xs.iter().enumerate().filter(|(_, &x)| (x - m).abs() > k * sd).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(crate::approx_eq(mean(&xs), 5.0, 1e-12));
        assert!(crate::approx_eq(variance(&xs), 4.0, 1e-12));
        assert!(crate::approx_eq(std_dev(&xs), 2.0, 1e-12));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn rmse_known() {
        assert!(crate::approx_eq(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0, 1e-12));
        assert!(crate::approx_eq(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5_f64).sqrt(), 1e-12));
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!(crate::approx_eq(pearson(&a, &b), 1.0, 1e-12));
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!(crate::approx_eq(pearson(&a, &c), -1.0, 1e-12));
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_masked_uses_common_support() {
        let a = [1.0, 2.0, 3.0, 100.0];
        let b = [2.0, 4.0, 6.0, -50.0];
        let ma = [true, true, true, false];
        let mb = [true, true, true, true];
        assert!(crate::approx_eq(pearson_masked(&a, &b, &ma, &mb), 1.0, 1e-12));
        // Fewer than two common points -> 0.
        let none = [false, false, false, false];
        assert_eq!(pearson_masked(&a, &b, &none, &mb), 0.0);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!(crate::approx_eq(quantile(&xs, 0.5), 2.5, 1e-12));
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn empirical_cdf_properties() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let cdf = empirical_cdf(&xs);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[0].value, 1.0);
        assert_eq!(cdf.last().unwrap().fraction, 1.0);
        // Monotone in both coordinates.
        for w in cdf.windows(2) {
            assert!(w[0].value <= w[1].value);
            assert!(w[0].fraction <= w[1].fraction);
        }
    }

    #[test]
    fn cdf_at_lookup() {
        let cdf = empirical_cdf(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf_at(&cdf, 0.5), 0.0);
        assert!(crate::approx_eq(cdf_at(&cdf, 1.0), 0.25, 1e-12));
        assert!(crate::approx_eq(cdf_at(&cdf, 2.0), 0.75, 1e-12));
        assert!(crate::approx_eq(cdf_at(&cdf, 3.0), 0.75, 1e-12));
        assert_eq!(cdf_at(&cdf, 10.0), 1.0);
    }

    #[test]
    fn spike_detection_four_sigma() {
        // 99 small values + one enormous outlier.
        let mut xs = vec![0.0; 100];
        for (i, x) in xs.iter_mut().enumerate() {
            *x = ((i % 5) as f64) * 0.1;
        }
        xs[42] = 50.0;
        let spikes = spike_indices(&xs, 4.0);
        assert_eq!(spikes, vec![42]);
        // A flat series has no spikes.
        assert!(spike_indices(&[1.0; 10], 4.0).is_empty());
    }
}
