//! Subspace (block power) iteration for leading eigenpairs.
//!
//! MSSA only needs the top few EOFs of its lag-covariance matrix, but a
//! full Jacobi eigendecomposition costs `O(n³)` — that cost is exactly
//! why the paper's Table 2 shows MSSA thousands of times slower than the
//! other methods. Subspace iteration computes just the leading `k`
//! eigenpairs in `O(n² k)` per sweep, letting the bench suite ablate how
//! much of MSSA's slowness is algorithmic necessity versus solver
//! choice.

use crate::qr::QrDecomposition;
use crate::{Matrix, MatrixShapeError};
use rand::SeedableRng;

/// Leading eigenpairs of a symmetric positive semi-definite matrix.
#[derive(Debug, Clone)]
pub struct LeadingEigen {
    /// Leading eigenvalues, non-increasing.
    pub eigenvalues: Vec<f64>,
    /// `n × k` matrix; column `i` is the eigenvector for
    /// `eigenvalues[i]`.
    pub eigenvectors: Matrix,
    /// Sweeps executed before convergence (or the cap).
    pub sweeps: usize,
}

/// Computes the `k` leading eigenpairs of symmetric PSD `a` by subspace
/// iteration with QR re-orthonormalization, stopping when eigenvalue
/// estimates stabilize within `tol` relatively or after `max_sweeps`.
///
/// # Errors
///
/// Returns [`MatrixShapeError`] for non-square/non-finite input, `k` out
/// of range, or an orthonormalization failure (only possible for
/// degenerate inputs like the zero matrix with `k > rank`).
pub fn leading_eigenpairs(
    a: &Matrix,
    k: usize,
    max_sweeps: usize,
    tol: f64,
) -> Result<LeadingEigen, MatrixShapeError> {
    let n = a.rows();
    if a.cols() != n || n == 0 {
        return Err(MatrixShapeError::new(format!(
            "subspace iteration requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if k == 0 || k > n {
        return Err(MatrixShapeError::new(format!("k = {k} out of range 1..={n}")));
    }
    if a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(MatrixShapeError::new("input contains non-finite entries"));
    }

    // Deterministic random start (fixed seed: this is a solver, not a
    // simulation — callers expect reproducibility).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    let mut v = Matrix::random_uniform(n, k, &mut rng, -1.0, 1.0);
    let mut prev: Vec<f64> = vec![f64::INFINITY; k];
    let mut sweeps = 0;

    for sweep in 1..=max_sweeps {
        sweeps = sweep;
        let w = a.matmul(&v).expect("square times n x k");
        // Re-orthonormalize; on rank collapse, reseed the null columns.
        let qr = QrDecomposition::new(&w)
            .map_err(|e| MatrixShapeError::new(format!("orthonormalization failed: {e}")))?;
        v = qr.q().clone();
        // Rayleigh–Ritz: eigenvalues of the small projected matrix.
        let av = a.matmul(&v).expect("shapes agree");
        let small = v.transpose().matmul(&av).expect("k x k");
        let eig = crate::eig::symmetric_eigen(&small)?;
        // Rotate the basis to the Ritz vectors.
        v = v.matmul(&eig.eigenvectors).expect("n x k");
        let change = eig
            .eigenvalues
            .iter()
            .zip(&prev)
            .map(|(cur, old)| (cur - old).abs() / cur.abs().max(1e-12))
            .fold(0.0_f64, f64::max);
        prev = eig.eigenvalues.clone();
        if change < tol {
            break;
        }
    }

    Ok(LeadingEigen { eigenvalues: prev, eigenvectors: v, sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::symmetric_eigen;

    fn psd(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Matrix::random_uniform(n, n + 3, &mut rng, -1.0, 1.0);
        b.matmul(&b.transpose()).unwrap()
    }

    #[test]
    fn matches_full_eigen_on_leading_pairs() {
        for seed in 0..3 {
            let a = psd(12, seed);
            let full = symmetric_eigen(&a).unwrap();
            let lead = leading_eigenpairs(&a, 3, 300, 1e-12).unwrap();
            for i in 0..3 {
                assert!(
                    crate::approx_eq(lead.eigenvalues[i], full.eigenvalues[i], 1e-6),
                    "seed {seed} λ{i}: {} vs {}",
                    lead.eigenvalues[i],
                    full.eigenvalues[i]
                );
            }
            // Eigenvector check: A v ≈ λ v.
            for i in 0..3 {
                let vi = Matrix::column_vector(&lead.eigenvectors.col(i));
                let av = a.matmul(&vi).unwrap();
                let lv = &vi * lead.eigenvalues[i];
                assert!(av.approx_eq(&lv, 1e-5), "eigenpair {i} residual");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = psd(10, 7);
        let lead = leading_eigenpairs(&a, 4, 300, 1e-12).unwrap();
        let vtv = lead.eigenvectors.transpose().matmul(&lead.eigenvectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn diagonal_matrix_exact() {
        let a = Matrix::diag(&[9.0, 4.0, 1.0, 0.25]);
        let lead = leading_eigenpairs(&a, 2, 200, 1e-13).unwrap();
        assert!(crate::approx_eq(lead.eigenvalues[0], 9.0, 1e-9));
        assert!(crate::approx_eq(lead.eigenvalues[1], 4.0, 1e-9));
    }

    #[test]
    fn converges_quickly_with_spectral_gap() {
        let a = Matrix::diag(&[100.0, 1.0, 0.5, 0.1, 0.01]);
        let lead = leading_eigenpairs(&a, 1, 500, 1e-10).unwrap();
        assert!(lead.sweeps < 30, "took {} sweeps", lead.sweeps);
    }

    #[test]
    fn validation() {
        assert!(leading_eigenpairs(&Matrix::zeros(2, 3), 1, 10, 1e-6).is_err());
        let a = psd(5, 1);
        assert!(leading_eigenpairs(&a, 0, 10, 1e-6).is_err());
        assert!(leading_eigenpairs(&a, 6, 10, 1e-6).is_err());
        let mut nan = a.clone();
        nan.set(0, 0, f64::NAN);
        assert!(leading_eigenpairs(&nan, 1, 10, 1e-6).is_err());
    }

    #[test]
    fn full_k_matches_complete_decomposition() {
        let a = psd(6, 9);
        let lead = leading_eigenpairs(&a, 6, 500, 1e-12).unwrap();
        let full = symmetric_eigen(&a).unwrap();
        for i in 0..6 {
            assert!(crate::approx_eq(lead.eigenvalues[i], full.eigenvalues[i], 1e-5), "λ{i}");
        }
    }
}
