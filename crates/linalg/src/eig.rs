//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The MSSA baseline (SEER's method, \[40\] in the paper) diagonalizes a
//! lag-covariance Gram matrix `T Tᵀ`. Jacobi rotation is the right tool at
//! this scale: unconditionally convergent and very accurate for symmetric
//! matrices up to a few thousand rows.

use crate::{Matrix, MatrixShapeError};

/// Off-diagonal tolerance (relative to the largest diagonal magnitude).
const JACOBI_EIG_TOL: f64 = 1e-11;
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in non-increasing order and `V`'s columns the
/// matching orthonormal eigenvectors.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, non-increasing.
    pub eigenvalues: Vec<f64>,
    /// Column `i` is the eigenvector for `eigenvalues[i]`.
    pub eigenvectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// Returns [`MatrixShapeError`] for non-square input, non-finite entries,
/// or asymmetry beyond `1e-8` relative tolerance.
///
/// ```
/// use linalg::{Matrix, eig::symmetric_eigen};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = symmetric_eigen(&a).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, MatrixShapeError> {
    let n = a.rows();
    if a.cols() != n || n == 0 {
        return Err(MatrixShapeError::new(format!(
            "symmetric eigen requires a non-empty square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(MatrixShapeError::new("eigen input contains non-finite entries"));
    }
    let scale = a.max_abs().max(1e-300);
    for i in 0..n {
        for j in i + 1..n {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-8 * scale {
                return Err(MatrixShapeError::new(format!("matrix is not symmetric at ({i},{j})")));
            }
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in p + 1..n {
                off = off.max(m.get(p, q).abs());
            }
        }
        if off <= JACOBI_EIG_TOL * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= JACOBI_EIG_TOL * scale {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let eigenvectors = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));
    Ok(SymmetricEigen { eigenvalues, eigenvectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::random_uniform(n, n, &mut rng, -2.0, 2.0);
        let at = a.transpose();
        (&a + &at).map(|x| x / 2.0)
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        for seed in 0..3 {
            let a = random_symmetric(12, seed);
            let e = symmetric_eigen(&a).unwrap();
            // V diag(λ) Vᵀ = A.
            let lam = Matrix::diag(&e.eigenvalues);
            let back =
                e.eigenvectors.matmul(&lam).unwrap().matmul(&e.eigenvectors.transpose()).unwrap();
            assert!(back.approx_eq(&a, 1e-8), "seed {seed}");
            let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
            assert!(vtv.approx_eq(&Matrix::identity(12), 1e-8));
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_symmetric(9, 5);
        let e = symmetric_eigen(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_trivial() {
        let a = Matrix::diag(&[1.0, 5.0, 3.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 5.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn psd_gram_matrix_nonnegative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let t = Matrix::random_uniform(6, 15, &mut rng, -1.0, 1.0);
        let g = t.matmul(&t.transpose()).unwrap();
        let e = symmetric_eigen(&g).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l > -1e-9));
        // Gram eigenvalues are squared singular values of T.
        let svd = crate::Svd::compute(&t).unwrap();
        for (l, s) in e.eigenvalues.iter().zip(svd.singular_values()) {
            assert!(crate::approx_eq(*l, s * s, 1e-7), "{l} vs {}", s * s);
        }
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(symmetric_eigen(&asym).is_err());
        let mut nan = Matrix::zeros(2, 2);
        nan.set(0, 0, f64::NAN);
        assert!(symmetric_eigen(&nan).is_err());
    }
}
