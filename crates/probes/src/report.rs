//! The probe data record.

use roadnet::geometry::Point;

/// Identifier of a probe vehicle (taxi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VehicleId(pub u32);

impl VehicleId {
    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One probe data update `s_v(t) = <id_v, p_v(t), q_v(t), t>` as defined
/// in Section 2.2 of the paper: vehicle identification, instant GPS
/// position, instantaneous GPS speed, and a timestamp.
///
/// The paper notes a report is ~40 bytes on the wire; this in-memory form
/// is 32 bytes, and a fleet-day of reports (4,000 taxis × 1 report/30 s)
/// fits easily in memory.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProbeReport {
    /// Reporting vehicle.
    pub vehicle: VehicleId,
    /// GPS position in the city's planar frame (metres). Stands in for
    /// the paper's longitude/latitude.
    pub position: Point,
    /// Instantaneous GPS speed, km/h. Never negative.
    pub speed_kmh: f64,
    /// GPS course over ground: the travel-direction vector (not
    /// necessarily normalized; `(0, 0)` = unknown). Real GPS receivers
    /// deliver this alongside speed, and probe pipelines need it to
    /// attribute reports on two-way roads to the correct direction.
    pub heading: (f64, f64),
    /// Seconds since the observation window began.
    pub timestamp_s: u64,
}

impl ProbeReport {
    /// Creates a report with unknown course, clamping tiny negative
    /// speeds (GPS jitter) to zero.
    ///
    /// # Panics
    ///
    /// Panics when `speed_kmh` is non-finite or below −1 km/h (a
    /// corrupted record rather than jitter).
    pub fn new(vehicle: VehicleId, position: Point, speed_kmh: f64, timestamp_s: u64) -> Self {
        Self::with_heading(vehicle, position, speed_kmh, (0.0, 0.0), timestamp_s)
    }

    /// Creates a report carrying a GPS course-over-ground vector.
    ///
    /// # Panics
    ///
    /// Panics when `speed_kmh` is non-finite or below −1 km/h, or when
    /// the heading components are non-finite.
    pub fn with_heading(
        vehicle: VehicleId,
        position: Point,
        speed_kmh: f64,
        heading: (f64, f64),
        timestamp_s: u64,
    ) -> Self {
        assert!(speed_kmh.is_finite(), "speed must be finite");
        assert!(speed_kmh >= -1.0, "speed {speed_kmh} km/h is corrupt, not jitter");
        assert!(heading.0.is_finite() && heading.1.is_finite(), "heading must be finite");
        Self { vehicle, position, speed_kmh: speed_kmh.max(0.0), heading, timestamp_s }
    }

    /// Whether the report carries a usable course.
    pub fn has_heading(&self) -> bool {
        self.heading != (0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vehicle_display_and_index() {
        assert_eq!(VehicleId(12).to_string(), "v12");
        assert_eq!(VehicleId(12).index(), 12);
    }

    #[test]
    fn negative_jitter_clamped() {
        let r = ProbeReport::new(VehicleId(0), Point::new(0.0, 0.0), -0.4, 10);
        assert_eq!(r.speed_kmh, 0.0);
    }

    #[test]
    fn normal_report_preserved() {
        let r = ProbeReport::new(VehicleId(1), Point::new(5.0, 6.0), 42.5, 99);
        assert_eq!(r.speed_kmh, 42.5);
        assert_eq!(r.timestamp_s, 99);
        assert_eq!(r.position, Point::new(5.0, 6.0));
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn very_negative_speed_rejected() {
        ProbeReport::new(VehicleId(0), Point::new(0.0, 0.0), -30.0, 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_speed_rejected() {
        ProbeReport::new(VehicleId(0), Point::new(0.0, 0.0), f64::NAN, 0);
    }
}
