//! The traffic condition matrix (TCM) and its assembly from probe reports.

use crate::report::ProbeReport;
use crate::slotting::SlotGrid;
use linalg::Matrix;
use roadnet::matching::SegmentIndex;
use roadnet::RoadNetwork;

/// Error produced when constructing a [`Tcm`].
#[derive(Debug, Clone, PartialEq)]
pub enum TcmError {
    /// Values and indicator differ in shape.
    ShapeMismatch {
        /// Shape of the value matrix.
        values: (usize, usize),
        /// Shape of the indicator matrix.
        indicator: (usize, usize),
    },
    /// The indicator contains an entry other than 0 or 1.
    InvalidIndicator {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// An observation was added out of the matrix bounds.
    OutOfBounds {
        /// Requested slot (row).
        slot: usize,
        /// Requested segment column.
        col: usize,
    },
    /// A non-finite or negative speed was observed.
    InvalidSpeed(f64),
    /// A construction parameter that must be positive was zero (e.g. a
    /// zero-slot streaming window).
    EmptyDimension(&'static str),
}

impl std::fmt::Display for TcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcmError::ShapeMismatch { values, indicator } => write!(
                f,
                "values {}x{} and indicator {}x{} differ in shape",
                values.0, values.1, indicator.0, indicator.1
            ),
            TcmError::InvalidIndicator { row, col, value } => {
                write!(f, "indicator({row},{col}) = {value} is not 0 or 1")
            }
            TcmError::OutOfBounds { slot, col } => {
                write!(f, "observation at slot {slot}, column {col} is out of bounds")
            }
            TcmError::InvalidSpeed(s) => write!(f, "invalid probe speed {s}"),
            TcmError::EmptyDimension(what) => write!(f, "{what} must be positive"),
        }
    }
}

impl std::error::Error for TcmError {}

/// A traffic condition matrix with its observation indicator.
///
/// `values` is `X` (or a measurement of it) with rows = time slots and
/// columns = road segments; `indicator` is the paper's `B` (Eq. 4):
/// `b_{t,r} = 1` iff slot `t` of segment `r` was observed. Where
/// `b = 0`, the corresponding value is stored as `0`, matching
/// `M = X .× B`.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use probes::Tcm;
///
/// let x = Matrix::from_rows(&[&[30.0, 40.0], &[35.0, 45.0]]);
/// let tcm = Tcm::complete(x);
/// assert_eq!(tcm.integrity(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tcm {
    values: Matrix,
    indicator: Matrix,
}

impl Tcm {
    /// Wraps a fully observed matrix: indicator all ones.
    pub fn complete(values: Matrix) -> Self {
        let indicator = Matrix::filled(values.rows(), values.cols(), 1.0);
        Self { values, indicator }
    }

    /// Creates a TCM from values and an explicit indicator.
    ///
    /// Values at unobserved positions are zeroed so that
    /// `self.values() == M = X .× B` holds by construction.
    ///
    /// # Errors
    ///
    /// Rejects shape mismatches and indicators with entries ∉ {0, 1}.
    pub fn new(values: Matrix, indicator: Matrix) -> Result<Self, TcmError> {
        if values.shape() != indicator.shape() {
            return Err(TcmError::ShapeMismatch {
                values: values.shape(),
                indicator: indicator.shape(),
            });
        }
        for (r, c, v) in indicator.iter() {
            if v != 0.0 && v != 1.0 {
                return Err(TcmError::InvalidIndicator { row: r, col: c, value: v });
            }
        }
        let masked = values.hadamard(&indicator).expect("shapes already checked");
        Ok(Self { values: masked, indicator })
    }

    /// Number of time slots (rows), the paper's `m`.
    pub fn num_slots(&self) -> usize {
        self.values.rows()
    }

    /// Number of road segments (columns), the paper's `n`.
    pub fn num_segments(&self) -> usize {
        self.values.cols()
    }

    /// The measurement matrix `M = X .× B`.
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// The indicator matrix `B`.
    pub fn indicator(&self) -> &Matrix {
        &self.indicator
    }

    /// Whether entry `(slot, col)` was observed.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn is_observed(&self, slot: usize, col: usize) -> bool {
        self.indicator.get(slot, col) == 1.0
    }

    /// Observed value at `(slot, col)`, or `None` when missing.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, slot: usize, col: usize) -> Option<f64> {
        self.is_observed(slot, col).then(|| self.values.get(slot, col))
    }

    /// Integrity (Definition 4): fraction of observed entries,
    /// `sum(B) / size(B)`.
    pub fn integrity(&self) -> f64 {
        if self.indicator.is_empty() {
            return 0.0;
        }
        self.indicator.sum() / self.indicator.len() as f64
    }

    /// Number of observed entries.
    pub fn observed_count(&self) -> usize {
        self.indicator.sum() as usize
    }

    /// Iterator over observed `(slot, col, value)` triples.
    pub fn observed_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.indicator
            .iter()
            .filter(|&(_, _, b)| b == 1.0)
            .map(|(r, c, _)| (r, c, self.values.get(r, c)))
    }

    /// Restricts to the listed segment columns (in order) — how the
    /// matrix-selection study (Section 4.5) forms its five road-segment
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of bounds.
    pub fn select_segments(&self, cols: &[usize]) -> Tcm {
        Tcm {
            values: self.values.select_columns(cols),
            indicator: self.indicator.select_columns(cols),
        }
    }

    /// Sub-TCM over the contiguous slot range `r0..r1` (all segments) —
    /// e.g. the last `W` rows of an offline TCM, for comparison against
    /// a streaming window covering the same slots.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slot_range(&self, r0: usize, r1: usize) -> Tcm {
        Tcm {
            values: self.values.submatrix(r0, r1, 0, self.num_segments()),
            indicator: self.indicator.submatrix(r0, r1, 0, self.num_segments()),
        }
    }

    /// Applies a further mask: entries stay observed only where both this
    /// TCM's indicator and `mask` are 1. Used by the experiments to
    /// discard observed elements down to a target integrity.
    ///
    /// # Errors
    ///
    /// Returns [`TcmError::ShapeMismatch`] when `mask` has a different
    /// shape, or [`TcmError::InvalidIndicator`] when it is not 0/1.
    pub fn masked(&self, mask: &Matrix) -> Result<Tcm, TcmError> {
        if mask.shape() != self.indicator.shape() {
            return Err(TcmError::ShapeMismatch {
                values: self.indicator.shape(),
                indicator: mask.shape(),
            });
        }
        for (r, c, v) in mask.iter() {
            if v != 0.0 && v != 1.0 {
                return Err(TcmError::InvalidIndicator { row: r, col: c, value: v });
            }
        }
        let indicator = self.indicator.hadamard(mask).expect("shape checked");
        let values = self.values.hadamard(&indicator).expect("shape checked");
        Ok(Tcm { values, indicator })
    }
}

/// Incremental TCM builder accumulating probe speed observations.
///
/// Multiple observations of the same `(slot, segment)` cell are averaged,
/// implementing the paper's approximation of the mean flow speed by the
/// average of probe speeds.
#[derive(Debug, Clone)]
pub struct TcmBuilder {
    sums: Matrix,
    counts: Matrix,
}

impl TcmBuilder {
    /// Creates a builder for `num_slots × num_segments` cells.
    pub fn new(num_slots: usize, num_segments: usize) -> Self {
        Self {
            sums: Matrix::zeros(num_slots, num_segments),
            counts: Matrix::zeros(num_slots, num_segments),
        }
    }

    /// Records one probe speed observation.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds cells and non-finite/negative speeds.
    pub fn add_observation(
        &mut self,
        slot: usize,
        col: usize,
        speed_kmh: f64,
    ) -> Result<(), TcmError> {
        if slot >= self.sums.rows() || col >= self.sums.cols() {
            return Err(TcmError::OutOfBounds { slot, col });
        }
        if !speed_kmh.is_finite() || speed_kmh < 0.0 {
            return Err(TcmError::InvalidSpeed(speed_kmh));
        }
        self.sums.set(slot, col, self.sums.get(slot, col) + speed_kmh);
        self.counts.set(slot, col, self.counts.get(slot, col) + 1.0);
        Ok(())
    }

    /// Number of observations recorded in cell `(slot, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn count(&self, slot: usize, col: usize) -> usize {
        self.counts.get(slot, col) as usize
    }

    /// Finalizes: cells with at least one observation hold the average
    /// probe speed; the rest are missing.
    pub fn build(self) -> Tcm {
        self.build_with_counts().0
    }

    /// Like [`TcmBuilder::build`], but also returns the per-cell probe
    /// counts — the confidence signal used by sampling-aware estimation
    /// (the paper's Section 6 notes that estimate quality depends on the
    /// number of probe samples behind each average).
    pub fn build_with_counts(self) -> (Tcm, Matrix) {
        let (m, n) = self.sums.shape();
        let mut values = Matrix::zeros(m, n);
        let mut indicator = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let cnt = self.counts.get(r, c);
                if cnt > 0.0 {
                    values.set(r, c, self.sums.get(r, c) / cnt);
                    indicator.set(r, c, 1.0);
                }
            }
        }
        (Tcm { values, indicator }, self.counts)
    }
}

/// End-to-end assembly: map-matches every report against the network and
/// bins the speeds into a TCM over the whole network's segments (column
/// `i` = segment id `i`).
///
/// Reports outside the slot grid or farther than `max_match_dist_m` from
/// any segment are discarded, as a real monitoring centre would.
pub fn build_tcm_from_reports(
    reports: &[ProbeReport],
    net: &RoadNetwork,
    index: &SegmentIndex,
    grid: &SlotGrid,
    max_match_dist_m: f64,
) -> Tcm {
    let mut span = telemetry::span(telemetry::Level::Info, "tcm.build");
    let mut dropped_out_of_grid = 0u64;
    let mut dropped_unmatched = 0u64;
    let mut builder = TcmBuilder::new(grid.num_slots(), net.segment_count());
    for report in reports {
        let Some(slot) = grid.slot_of(report.timestamp_s) else {
            dropped_out_of_grid += 1;
            continue;
        };
        let heading = report.has_heading().then_some(report.heading);
        let Some(m) = index.match_point_directed(net, report.position, max_match_dist_m, heading)
        else {
            dropped_unmatched += 1;
            continue;
        };
        builder
            .add_observation(slot, m.segment.index(), report.speed_kmh)
            .expect("slot and segment indices are in range by construction");
    }
    let tcm = builder.build();
    if span.is_enabled() {
        span.record("reports", reports.len());
        span.record("matched", reports.len() as u64 - dropped_out_of_grid - dropped_unmatched);
        span.record("dropped_out_of_grid", dropped_out_of_grid);
        span.record("dropped_unmatched", dropped_unmatched);
        span.record("slots", tcm.num_slots());
        span.record("segments", tcm.num_segments());
        span.record("integrity", tcm.integrity());
    }
    if telemetry::metrics_enabled() {
        telemetry::counter("tcm.reports").add(reports.len() as u64);
        telemetry::counter("tcm.reports_dropped_out_of_grid").add(dropped_out_of_grid);
        telemetry::counter("tcm.reports_dropped_unmatched").add(dropped_unmatched);
        telemetry::gauge("tcm.integrity").set(tcm.integrity());
    }
    tcm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::VehicleId;
    use crate::slotting::Granularity;
    use roadnet::generator::{generate_grid_city, GridCityConfig};
    use roadnet::geometry::Point;
    use roadnet::SegmentId;

    #[test]
    fn complete_tcm_full_integrity() {
        let x = Matrix::from_rows(&[&[30.0, 40.0], &[35.0, 45.0]]);
        let tcm = Tcm::complete(x.clone());
        assert_eq!(tcm.integrity(), 1.0);
        assert_eq!(tcm.observed_count(), 4);
        assert_eq!(tcm.values(), &x);
        assert_eq!(tcm.get(0, 1), Some(40.0));
    }

    #[test]
    fn new_zeroes_unobserved_values() {
        let x = Matrix::from_rows(&[&[30.0, 40.0], &[35.0, 45.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        assert_eq!(tcm.values().get(0, 1), 0.0);
        assert_eq!(tcm.values().get(1, 1), 45.0);
        assert_eq!(tcm.get(0, 1), None);
        assert!(!tcm.is_observed(1, 0));
        assert_eq!(tcm.integrity(), 0.5);
    }

    #[test]
    fn new_rejects_bad_indicator() {
        let x = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]);
        assert!(matches!(Tcm::new(x, b), Err(TcmError::InvalidIndicator { row: 0, col: 1, .. })));
    }

    #[test]
    fn new_rejects_shape_mismatch() {
        let x = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(Tcm::new(x, b), Err(TcmError::ShapeMismatch { .. })));
    }

    #[test]
    fn observed_entries_iterates_only_observed() {
        let x = Matrix::from_rows(&[&[30.0, 40.0], &[35.0, 45.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        let entries: Vec<_> = tcm.observed_entries().collect();
        assert_eq!(entries, vec![(0, 0, 30.0), (1, 1, 45.0)]);
    }

    #[test]
    fn select_segments_keeps_alignment() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[1.0, 1.0, 0.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        let sub = tcm.select_segments(&[2, 0]);
        assert_eq!(sub.num_segments(), 2);
        assert_eq!(sub.get(0, 0), Some(3.0));
        assert_eq!(sub.get(1, 0), None);
        assert_eq!(sub.get(0, 1), Some(1.0));
    }

    #[test]
    fn masked_intersects_indicators() {
        let tcm = Tcm::complete(Matrix::filled(2, 2, 50.0));
        let mask = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let masked = tcm.masked(&mask).unwrap();
        assert_eq!(masked.observed_count(), 3);
        assert_eq!(masked.get(0, 1), None);
        // Masking an already-missing entry keeps it missing.
        let again = masked.masked(&Matrix::filled(2, 2, 1.0)).unwrap();
        assert_eq!(again.observed_count(), 3);
        assert!(masked.masked(&Matrix::zeros(3, 3)).is_err());
        assert!(masked.masked(&Matrix::filled(2, 2, 2.0)).is_err());
    }

    #[test]
    fn builder_averages_multiple_probes() {
        let mut b = TcmBuilder::new(2, 2);
        b.add_observation(0, 0, 30.0).unwrap();
        b.add_observation(0, 0, 50.0).unwrap();
        b.add_observation(1, 1, 20.0).unwrap();
        assert_eq!(b.count(0, 0), 2);
        assert_eq!(b.count(0, 1), 0);
        let tcm = b.build();
        assert_eq!(tcm.get(0, 0), Some(40.0));
        assert_eq!(tcm.get(1, 1), Some(20.0));
        assert_eq!(tcm.get(0, 1), None);
        assert_eq!(tcm.integrity(), 0.5);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = TcmBuilder::new(2, 2);
        assert!(matches!(b.add_observation(2, 0, 10.0), Err(TcmError::OutOfBounds { .. })));
        assert!(matches!(b.add_observation(0, 5, 10.0), Err(TcmError::OutOfBounds { .. })));
        assert!(matches!(b.add_observation(0, 0, -1.0), Err(TcmError::InvalidSpeed(_))));
        assert!(matches!(b.add_observation(0, 0, f64::INFINITY), Err(TcmError::InvalidSpeed(_))));
    }

    #[test]
    fn end_to_end_report_binning() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let index = SegmentIndex::build(&net, 100.0);
        let grid = SlotGrid::covering(0, 3600, Granularity::Min15); // 4 slots
        let seg = SegmentId(3);
        let pos = net.segment_point(seg, 0.5);
        let reports = vec![
            ProbeReport::new(VehicleId(0), pos, 30.0, 100), // slot 0
            ProbeReport::new(VehicleId(1), pos, 40.0, 200), // slot 0
            ProbeReport::new(VehicleId(0), pos, 20.0, 1000), // slot 1
            ProbeReport::new(VehicleId(0), pos, 99.0, 10_000), // outside window
            // Far off-network point: discarded by matching.
            ProbeReport::new(VehicleId(2), Point::new(-9_000.0, -9_000.0), 10.0, 50),
        ];
        let tcm = build_tcm_from_reports(&reports, &net, &index, &grid, 30.0);
        assert_eq!(tcm.num_slots(), 4);
        assert_eq!(tcm.num_segments(), net.segment_count());
        // Forward/reverse twins overlap geometrically; the observation
        // lands on one of them.
        let twin = net
            .segments()
            .iter()
            .find(|s| s.from == net.segment(seg).to && s.to == net.segment(seg).from)
            .unwrap()
            .id;
        let cell0 = tcm.get(0, seg.index()).or_else(|| tcm.get(0, twin.index()));
        assert_eq!(cell0, Some(35.0));
        let cell1 = tcm.get(1, seg.index()).or_else(|| tcm.get(1, twin.index()));
        assert_eq!(cell1, Some(20.0));
        // Only those two cells are observed.
        assert_eq!(tcm.observed_count(), 2);
    }
}
