//! Time slots and the evaluation's three granularities.

/// The time granularities used throughout the paper's evaluation
/// (Table 1, Figs. 11–14, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Granularity {
    /// 15-minute slots.
    Min15,
    /// 30-minute slots.
    Min30,
    /// 60-minute slots.
    Min60,
}

impl Granularity {
    /// Slot length in seconds.
    pub fn seconds(self) -> u64 {
        match self {
            Granularity::Min15 => 15 * 60,
            Granularity::Min30 => 30 * 60,
            Granularity::Min60 => 60 * 60,
        }
    }

    /// All three granularities, in the order the paper tabulates them.
    pub fn all() -> [Granularity; 3] {
        [Granularity::Min15, Granularity::Min30, Granularity::Min60]
    }

    /// Number of slots covering `duration_s` seconds (rounded up).
    pub fn slots_for(self, duration_s: u64) -> usize {
        duration_s.div_ceil(self.seconds()) as usize
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::Min15 => write!(f, "15 min"),
            Granularity::Min30 => write!(f, "30 min"),
            Granularity::Min60 => write!(f, "60 min"),
        }
    }
}

/// A uniform grid of time slots starting at `start_s` (seconds).
///
/// Slot `i` covers `[start_s + i·len, start_s + (i+1)·len)`.
///
/// # Example
///
/// ```
/// use probes::{Granularity, SlotGrid};
///
/// let grid = SlotGrid::new(0, Granularity::Min15.seconds(), 96); // one day
/// assert_eq!(grid.slot_of(0), Some(0));
/// assert_eq!(grid.slot_of(899), Some(0));
/// assert_eq!(grid.slot_of(900), Some(1));
/// assert_eq!(grid.slot_of(86_400), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlotGrid {
    start_s: u64,
    slot_len_s: u64,
    num_slots: usize,
}

impl SlotGrid {
    /// Creates a grid of `num_slots` slots of `slot_len_s` seconds each.
    ///
    /// # Panics
    ///
    /// Panics when `slot_len_s == 0` or `num_slots == 0`.
    pub fn new(start_s: u64, slot_len_s: u64, num_slots: usize) -> Self {
        assert!(slot_len_s > 0, "slot length must be positive");
        assert!(num_slots > 0, "need at least one slot");
        Self { start_s, slot_len_s, num_slots }
    }

    /// Grid covering `[start_s, start_s + duration_s)` at `granularity`.
    pub fn covering(start_s: u64, duration_s: u64, granularity: Granularity) -> Self {
        Self::new(start_s, granularity.seconds(), granularity.slots_for(duration_s))
    }

    /// Start of the window (seconds).
    pub fn start_s(&self) -> u64 {
        self.start_s
    }

    /// Slot length (seconds).
    pub fn slot_len_s(&self) -> u64 {
        self.slot_len_s
    }

    /// Number of slots — the row count `m` of TCMs built on this grid.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// End of the window (exclusive, seconds).
    pub fn end_s(&self) -> u64 {
        self.start_s + self.slot_len_s * self.num_slots as u64
    }

    /// The slot containing `timestamp_s`, or `None` outside the window.
    pub fn slot_of(&self, timestamp_s: u64) -> Option<usize> {
        if timestamp_s < self.start_s {
            return None;
        }
        let idx = ((timestamp_s - self.start_s) / self.slot_len_s) as usize;
        (idx < self.num_slots).then_some(idx)
    }

    /// Start timestamp of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= num_slots`.
    pub fn slot_start(&self, i: usize) -> u64 {
        assert!(i < self.num_slots, "slot {i} out of range");
        self.start_s + self.slot_len_s * i as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_seconds() {
        assert_eq!(Granularity::Min15.seconds(), 900);
        assert_eq!(Granularity::Min30.seconds(), 1800);
        assert_eq!(Granularity::Min60.seconds(), 3600);
    }

    #[test]
    fn slots_for_a_day_and_week() {
        assert_eq!(Granularity::Min15.slots_for(86_400), 96);
        assert_eq!(Granularity::Min30.slots_for(86_400), 48);
        assert_eq!(Granularity::Min60.slots_for(86_400), 24);
        // One week at 15 min: 672 rows — the TCM height of Figs. 11–14.
        assert_eq!(Granularity::Min15.slots_for(7 * 86_400), 672);
    }

    #[test]
    fn slots_for_rounds_up() {
        assert_eq!(Granularity::Min60.slots_for(3601), 2);
        assert_eq!(Granularity::Min60.slots_for(3600), 1);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Granularity::Min15.to_string(), "15 min");
        assert_eq!(Granularity::all().len(), 3);
    }

    #[test]
    fn slot_lookup_boundaries() {
        let g = SlotGrid::new(100, 60, 10);
        assert_eq!(g.slot_of(99), None);
        assert_eq!(g.slot_of(100), Some(0));
        assert_eq!(g.slot_of(159), Some(0));
        assert_eq!(g.slot_of(160), Some(1));
        assert_eq!(g.slot_of(699), Some(9));
        assert_eq!(g.slot_of(700), None);
        assert_eq!(g.end_s(), 700);
    }

    #[test]
    fn slot_start_inverse_of_slot_of() {
        let g = SlotGrid::covering(0, 86_400, Granularity::Min30);
        for i in 0..g.num_slots() {
            assert_eq!(g.slot_of(g.slot_start(i)), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slot_len_panics() {
        SlotGrid::new(0, 0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_slots_panics() {
        SlotGrid::new(0, 60, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_start_out_of_range() {
        SlotGrid::new(0, 60, 2).slot_start(2);
    }
}
