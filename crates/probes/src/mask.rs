//! Random masking used by the experiments.
//!
//! Section 4.1: "When performing experiments, we randomly discard some
//! elements to form measurement matrices." These helpers produce 0/1
//! indicator matrices at a target integrity, plus a structured variant
//! with uneven per-segment coverage for stress tests (real probe masks
//! are spatially uneven, Figs. 2–3).

use linalg::Matrix;
use rand::seq::SliceRandom;
use rand::RngExt;

/// A 0/1 indicator matrix with *exactly* `round(integrity · m · n)` ones,
/// placed uniformly at random — the experiment methodology of Section 4.1.
///
/// # Panics
///
/// Panics when `integrity` is outside `[0, 1]`.
pub fn random_mask<R: RngExt + ?Sized>(
    rows: usize,
    cols: usize,
    integrity: f64,
    rng: &mut R,
) -> Matrix {
    assert!((0.0..=1.0).contains(&integrity), "integrity must be in [0,1], got {integrity}");
    let total = rows * cols;
    let keep = ((integrity * total as f64).round() as usize).min(total);
    let mut positions: Vec<usize> = (0..total).collect();
    positions.shuffle(rng);
    let mut mask = Matrix::zeros(rows, cols);
    for &p in positions.iter().take(keep) {
        mask.set(p / cols, p % cols, 1.0);
    }
    mask
}

/// A mask whose per-column (per-road) integrity varies: column `c` keeps
/// entries with probability drawn from `[lo, hi]`. Mimics the uneven
/// spatial coverage of real probe fleets (arterials well covered, side
/// streets barely).
///
/// # Panics
///
/// Panics unless `0 <= lo <= hi <= 1`.
pub fn uneven_column_mask<R: RngExt + ?Sized>(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Matrix {
    assert!(0.0 <= lo && lo <= hi && hi <= 1.0, "need 0 <= lo <= hi <= 1");
    let mut mask = Matrix::zeros(rows, cols);
    for c in 0..cols {
        let p = if lo == hi { lo } else { rng.random_range(lo..=hi) };
        for r in 0..rows {
            if rng.random_range(0.0..1.0) < p {
                mask.set(r, c, 1.0);
            }
        }
    }
    mask
}

/// Subsamples an existing indicator down to `target_integrity` of the
/// *total* matrix size by randomly discarding observed entries. If the
/// indicator already has fewer ones than the target, it is returned
/// unchanged (you cannot invent observations).
///
/// # Panics
///
/// Panics when `target_integrity` is outside `[0, 1]`.
pub fn subsample_indicator<R: RngExt + ?Sized>(
    indicator: &Matrix,
    target_integrity: f64,
    rng: &mut R,
) -> Matrix {
    assert!((0.0..=1.0).contains(&target_integrity), "integrity must be in [0,1]");
    let total = indicator.len();
    let target_ones = (target_integrity * total as f64).round() as usize;
    let mut ones: Vec<(usize, usize)> =
        indicator.iter().filter(|&(_, _, v)| v == 1.0).map(|(r, c, _)| (r, c)).collect();
    if ones.len() <= target_ones {
        return indicator.clone();
    }
    ones.shuffle(rng);
    let mut out = Matrix::zeros(indicator.rows(), indicator.cols());
    for &(r, c) in ones.iter().take(target_ones) {
        out.set(r, c, 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_mask_exact_count() {
        let mut r = rng(1);
        for integrity in [0.0, 0.2, 0.5, 0.95, 1.0] {
            let m = random_mask(20, 30, integrity, &mut r);
            let expected = (integrity * 600.0).round();
            assert_eq!(m.sum(), expected, "integrity {integrity}");
        }
    }

    #[test]
    fn random_mask_is_binary() {
        let mut r = rng(2);
        let m = random_mask(10, 10, 0.3, &mut r);
        assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn random_mask_varies_with_seed() {
        let a = random_mask(10, 10, 0.5, &mut rng(3));
        let b = random_mask(10, 10, 0.5, &mut rng(4));
        assert_ne!(a, b);
        // Deterministic per seed.
        let a2 = random_mask(10, 10, 0.5, &mut rng(3));
        assert_eq!(a, a2);
    }

    #[test]
    #[should_panic(expected = "integrity must be in")]
    fn random_mask_rejects_bad_integrity() {
        random_mask(2, 2, 1.5, &mut rng(0));
    }

    #[test]
    fn uneven_mask_column_variation() {
        let mut r = rng(5);
        let m = uneven_column_mask(200, 20, 0.05, 0.9, &mut r);
        let per_col: Vec<f64> = (0..20).map(|c| m.col(c).iter().sum::<f64>() / 200.0).collect();
        let min = per_col.iter().cloned().fold(1.0, f64::min);
        let max = per_col.iter().cloned().fold(0.0, f64::max);
        // With p drawn over [0.05, 0.9] the spread must be substantial.
        assert!(max - min > 0.3, "spread {min}..{max}");
        assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn uneven_mask_equal_bounds() {
        let mut r = rng(6);
        let m = uneven_column_mask(500, 4, 0.5, 0.5, &mut r);
        let frac = m.sum() / 2000.0;
        assert!((frac - 0.5).abs() < 0.08, "fraction {frac}");
    }

    #[test]
    fn subsample_reduces_to_target() {
        let mut r = rng(7);
        let full = Matrix::filled(10, 10, 1.0);
        let sub = subsample_indicator(&full, 0.25, &mut r);
        assert_eq!(sub.sum(), 25.0);
        // Subsample below available ones: unchanged.
        let sparse = random_mask(10, 10, 0.1, &mut r);
        let same = subsample_indicator(&sparse, 0.5, &mut r);
        assert_eq!(same, sparse);
    }

    #[test]
    fn subsample_only_removes() {
        let mut r = rng(8);
        let base = random_mask(15, 15, 0.6, &mut r);
        let sub = subsample_indicator(&base, 0.3, &mut r);
        for (row, c, v) in sub.iter() {
            if v == 1.0 {
                assert_eq!(base.get(row, c), 1.0, "subsample invented an observation");
            }
        }
    }
}
