//! CSV interchange for probe reports and traffic condition matrices.
//!
//! Real deployments receive probe data as flat record streams; this
//! module reads/writes the reproduction's [`ProbeReport`] in a plain CSV
//! form so the CLI (and downstream users) can run the pipeline on their
//! own data, and serializes TCMs for inspection in external tools.
//!
//! Report CSV columns:
//!
//! ```text
//! vehicle,x,y,speed_kmh,heading_x,heading_y,timestamp_s
//! 17,1204.5,880.2,33.4,0.99,0.05,3600
//! ```

use crate::report::{ProbeReport, VehicleId};
use crate::tcm::Tcm;
use roadnet::geometry::Point;
use std::io::{BufRead, Write};

/// Error reading probe CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed record with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Header line written/expected for report CSVs.
pub const REPORT_HEADER: &str = "vehicle,x,y,speed_kmh,heading_x,heading_y,timestamp_s";

/// Writes reports as CSV (with header).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_reports<W: Write>(reports: &[ProbeReport], mut w: W) -> std::io::Result<()> {
    writeln!(w, "{REPORT_HEADER}")?;
    for r in reports {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.vehicle.0,
            r.position.x,
            r.position.y,
            r.speed_kmh,
            r.heading.0,
            r.heading.1,
            r.timestamp_s
        )?;
    }
    Ok(())
}

/// Reads reports from CSV; the header line is required, blank lines and
/// `#` comments are skipped.
///
/// # Errors
///
/// See [`CsvError`]. Records that would violate [`ProbeReport`]'s
/// invariants (negative speeds, non-finite values) are parse errors, not
/// panics.
pub fn read_reports<R: BufRead>(r: R) -> Result<Vec<ProbeReport>, CsvError> {
    let mut out = Vec::new();
    let mut saw_header = false;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            if line != REPORT_HEADER {
                return Err(CsvError::Parse {
                    line: line_no,
                    msg: format!("expected header '{REPORT_HEADER}'"),
                });
            }
            saw_header = true;
            continue;
        }
        out.push(parse_report_record(line, line_no)?);
    }
    if !saw_header {
        return Err(CsvError::Parse { line: 0, msg: "empty file (missing header)".into() });
    }
    Ok(out)
}

/// Parses one report CSV data record (neither header, comment, nor
/// blank — callers skip those). Streaming consumers use this directly so
/// one malformed record can be rejected and counted without aborting the
/// whole replay, which is exactly what [`read_reports`] does on the
/// strict batch path.
///
/// # Errors
///
/// [`CsvError::Parse`] with `line_no` for wrong field counts, unparsable
/// numbers, out-of-range speeds (non-finite or below −1 km/h), and
/// non-finite coordinates or headings.
pub fn parse_report_record(line: &str, line_no: usize) -> Result<ProbeReport, CsvError> {
    let f: Vec<&str> = line.split(',').map(str::trim).collect();
    if f.len() != 7 {
        return Err(CsvError::Parse {
            line: line_no,
            msg: format!("expected 7 fields, got {}", f.len()),
        });
    }
    let err =
        |what: &str, e: String| CsvError::Parse { line: line_no, msg: format!("bad {what}: {e}") };
    let vehicle: u32 =
        f[0].parse().map_err(|e: std::num::ParseIntError| err("vehicle", e.to_string()))?;
    let x: f64 = f[1].parse().map_err(|e: std::num::ParseFloatError| err("x", e.to_string()))?;
    let y: f64 = f[2].parse().map_err(|e: std::num::ParseFloatError| err("y", e.to_string()))?;
    let speed: f64 =
        f[3].parse().map_err(|e: std::num::ParseFloatError| err("speed", e.to_string()))?;
    let hx: f64 =
        f[4].parse().map_err(|e: std::num::ParseFloatError| err("heading_x", e.to_string()))?;
    let hy: f64 =
        f[5].parse().map_err(|e: std::num::ParseFloatError| err("heading_y", e.to_string()))?;
    let ts: u64 =
        f[6].parse().map_err(|e: std::num::ParseIntError| err("timestamp", e.to_string()))?;
    if !speed.is_finite() || speed < -1.0 {
        return Err(err("speed", format!("{speed} out of range")));
    }
    if !(hx.is_finite() && hy.is_finite() && x.is_finite() && y.is_finite()) {
        return Err(err("coordinates", "non-finite value".into()));
    }
    Ok(ProbeReport::with_heading(VehicleId(vehicle), Point::new(x, y), speed, (hx, hy), ts))
}

/// Writes a TCM as CSV: one row per time slot, one column per segment;
/// missing cells are empty fields.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_tcm<W: Write>(tcm: &Tcm, mut w: W) -> std::io::Result<()> {
    let headers: Vec<String> = (0..tcm.num_segments()).map(|c| format!("s{c}")).collect();
    writeln!(w, "slot,{}", headers.join(","))?;
    for t in 0..tcm.num_slots() {
        let cells: Vec<String> = (0..tcm.num_segments())
            .map(|c| tcm.get(t, c).map_or(String::new(), |v| format!("{v}")))
            .collect();
        writeln!(w, "{t},{}", cells.join(","))?;
    }
    Ok(())
}

/// Reads a TCM written by [`write_tcm`] (empty fields = missing).
///
/// # Errors
///
/// See [`CsvError`].
pub fn read_tcm<R: BufRead>(r: R) -> Result<Tcm, CsvError> {
    let mut rows: Vec<Vec<Option<f64>>> = Vec::new();
    let mut n_cols: Option<usize> = None;
    let mut saw_header = false;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            saw_header = true; // header carries only labels
            n_cols = Some(line.split(',').count().saturating_sub(1));
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let expected = n_cols.expect("header seen") + 1;
        if fields.len() != expected {
            return Err(CsvError::Parse {
                line: line_no,
                msg: format!("expected {expected} fields, got {}", fields.len()),
            });
        }
        let mut row = Vec::with_capacity(fields.len() - 1);
        for f in &fields[1..] {
            if f.is_empty() {
                row.push(None);
            } else {
                let v: f64 = f.parse().map_err(|e: std::num::ParseFloatError| CsvError::Parse {
                    line: line_no,
                    msg: format!("bad value '{f}': {e}"),
                })?;
                row.push(Some(v));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Parse { line: 0, msg: "no data rows".into() });
    }
    let m = rows.len();
    let n = rows[0].len();
    let mut values = linalg::Matrix::zeros(m, n);
    let mut indicator = linalg::Matrix::zeros(m, n);
    for (t, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if let Some(v) = cell {
                values.set(t, c, *v);
                indicator.set(t, c, 1.0);
            }
        }
    }
    Tcm::new(values, indicator)
        .map_err(|e| CsvError::Parse { line: 0, msg: format!("invalid TCM: {e}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn sample_reports() -> Vec<ProbeReport> {
        vec![
            ProbeReport::with_heading(VehicleId(1), Point::new(10.5, -3.25), 42.0, (1.0, 0.0), 30),
            ProbeReport::with_heading(VehicleId(2), Point::new(0.0, 99.0), 0.0, (0.6, -0.8), 61),
            ProbeReport::new(VehicleId(3), Point::new(5.0, 5.0), 12.5, 120),
        ]
    }

    #[test]
    fn report_round_trip() {
        let reports = sample_reports();
        let mut buf = Vec::new();
        write_reports(&reports, &mut buf).unwrap();
        let back = read_reports(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn report_parse_errors() {
        let no_header = "1,2,3,4,5,6,7\n";
        assert!(read_reports(std::io::BufReader::new(no_header.as_bytes())).is_err());
        let short = format!("{REPORT_HEADER}\n1,2,3\n");
        match read_reports(std::io::BufReader::new(short.as_bytes())) {
            Err(CsvError::Parse { line: 2, msg }) => assert!(msg.contains("7 fields")),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_speed = format!("{REPORT_HEADER}\n1,0,0,-99,1,0,5\n");
        assert!(read_reports(std::io::BufReader::new(bad_speed.as_bytes())).is_err());
        let nan = format!("{REPORT_HEADER}\n1,0,0,NaN,1,0,5\n");
        assert!(read_reports(std::io::BufReader::new(nan.as_bytes())).is_err());
        let empty = "";
        assert!(read_reports(std::io::BufReader::new(empty.as_bytes())).is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = format!("# probe dump\n\n{REPORT_HEADER}\n# one record\n7,1,2,30,0,1,9\n");
        let reports = read_reports(std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].vehicle, VehicleId(7));
        assert_eq!(reports[0].heading, (0.0, 1.0));
    }

    #[test]
    fn tcm_round_trip_with_missing() {
        let values = Matrix::from_rows(&[&[30.0, 0.0, 45.5], &[0.0, 20.25, 0.0]]);
        let ind = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let tcm = Tcm::new(values, ind).unwrap();
        let mut buf = Vec::new();
        write_tcm(&tcm, &mut buf).unwrap();
        let back = read_tcm(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, tcm);
    }

    #[test]
    fn tcm_parse_errors() {
        assert!(read_tcm(std::io::BufReader::new("".as_bytes())).is_err());
        let ragged = "slot,s0,s1\n0,1.0\n";
        assert!(matches!(
            read_tcm(std::io::BufReader::new(ragged.as_bytes())),
            Err(CsvError::Parse { line: 2, .. })
        ));
        let bad = "slot,s0\n0,abc\n";
        assert!(read_tcm(std::io::BufReader::new(bad.as_bytes())).is_err());
    }
}
