//! Integrity metrics (Definition 4) and their marginals.
//!
//! The paper quantifies the missing-data problem with the *integrity* of a
//! measurement matrix — the fraction of observed entries — studied three
//! ways: overall (Table 1), per road segment across time (Fig. 2), and
//! per time slot across roads (Fig. 3).

use crate::tcm::Tcm;
use linalg::stats::{empirical_cdf, CdfPoint};

/// Overall integrity `sum(B) / size(B)` of a TCM (Definition 4).
pub fn overall(tcm: &Tcm) -> f64 {
    tcm.integrity()
}

/// Per-road integrity: for each segment column, the fraction of time
/// slots with at least one observation. Fig. 2 plots the CDF of these.
pub fn per_road(tcm: &Tcm) -> Vec<f64> {
    let m = tcm.num_slots() as f64;
    (0..tcm.num_segments()).map(|c| tcm.indicator().col(c).iter().sum::<f64>() / m).collect()
}

/// Per-slot integrity: for each time-slot row, the fraction of segments
/// observed in that slot. Fig. 3 plots the CDF of these.
pub fn per_slot(tcm: &Tcm) -> Vec<f64> {
    let n = tcm.num_segments() as f64;
    (0..tcm.num_slots()).map(|r| tcm.indicator().row(r).iter().sum::<f64>() / n).collect()
}

/// Empirical CDF of per-road integrities (the curve of Fig. 2).
pub fn road_integrity_cdf(tcm: &Tcm) -> Vec<CdfPoint> {
    empirical_cdf(&per_road(tcm))
}

/// Empirical CDF of per-slot integrities (the curve of Fig. 3).
pub fn slot_integrity_cdf(tcm: &Tcm) -> Vec<CdfPoint> {
    empirical_cdf(&per_slot(tcm))
}

/// Fraction of roads whose integrity is below `threshold` — the summary
/// statistic the paper reads off Fig. 2 ("nearly 95% of roads have an
/// integrity of less than 60%").
pub fn fraction_of_roads_below(tcm: &Tcm, threshold: f64) -> f64 {
    let roads = per_road(tcm);
    if roads.is_empty() {
        return 0.0;
    }
    roads.iter().filter(|&&x| x < threshold).count() as f64 / roads.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn tcm_with_indicator(ind: Matrix) -> Tcm {
        let values = Matrix::filled(ind.rows(), ind.cols(), 30.0);
        Tcm::new(values, ind).unwrap()
    }

    #[test]
    fn overall_matches_definition() {
        let ind = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 0.0, 1.0]]);
        let tcm = tcm_with_indicator(ind);
        assert!((overall(&tcm) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_road_marginals() {
        let ind = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]);
        let tcm = tcm_with_indicator(ind);
        assert_eq!(per_road(&tcm), vec![1.0, 0.0, 0.5]);
    }

    #[test]
    fn per_slot_marginals() {
        let ind = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]);
        let tcm = tcm_with_indicator(ind);
        let slots = per_slot(&tcm);
        assert!((slots[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((slots[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_average_to_overall() {
        // mean(per_road) == mean(per_slot) == overall integrity.
        let ind = Matrix::from_fn(6, 5, |r, c| if (r * 5 + c) % 3 == 0 { 1.0 } else { 0.0 });
        let tcm = tcm_with_indicator(ind);
        let roads = per_road(&tcm);
        let slots = per_slot(&tcm);
        let road_mean = roads.iter().sum::<f64>() / roads.len() as f64;
        let slot_mean = slots.iter().sum::<f64>() / slots.len() as f64;
        assert!((road_mean - overall(&tcm)).abs() < 1e-12);
        assert!((slot_mean - overall(&tcm)).abs() < 1e-12);
    }

    #[test]
    fn cdfs_are_monotone_and_end_at_one() {
        let ind = Matrix::from_fn(10, 8, |r, c| if (r + c) % 4 == 0 { 1.0 } else { 0.0 });
        let tcm = tcm_with_indicator(ind);
        for cdf in [road_integrity_cdf(&tcm), slot_integrity_cdf(&tcm)] {
            assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
            for w in cdf.windows(2) {
                assert!(w[0].value <= w[1].value);
                assert!(w[0].fraction <= w[1].fraction);
            }
        }
    }

    #[test]
    fn fraction_below_threshold() {
        let ind = Matrix::from_rows(&[&[1.0, 0.0, 1.0, 1.0], &[1.0, 0.0, 0.0, 1.0]]);
        let tcm = tcm_with_indicator(ind);
        // Road integrities: [1.0, 0.0, 0.5, 1.0].
        assert!((fraction_of_roads_below(&tcm, 0.6) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_of_roads_below(&tcm, 0.01), 0.25);
        assert_eq!(fraction_of_roads_below(&tcm, 2.0), 1.0);
    }
}
