//! Probe-data processing substrate.
//!
//! Takes the raw probe reports produced by a fleet of GPS vehicles (real
//! or simulated) and turns them into the paper's central data structure:
//! the **traffic condition matrix** (TCM), `X ∈ R^{m×n}` with one row per
//! time slot and one column per road segment, where entry `x_{t,r}` is the
//! average probe speed observed on segment `r` during slot `t`
//! (Definition 1 of the paper).
//!
//! Modules:
//!
//! * [`report`] — the probe data record: vehicle id, position, speed,
//!   timestamp (Section 2.1).
//! * [`slotting`] — the time-slot grid and the 15/30/60-minute
//!   granularities of the evaluation.
//! * [`tcm`] — TCM assembly from matched reports, and the [`Tcm`] type
//!   bundling values with the indicator matrix `B`.
//! * [`mask`] — random element discarding used by the experiments to
//!   sweep integrity (Section 4.1).
//! * [`integrity`] — the integrity metric (Definition 4) and its per-road
//!   / per-slot marginals (Figs. 2 and 3).

pub mod integrity;
pub mod io;
pub mod mask;
pub mod report;
pub mod slotting;
pub mod stream;
pub mod tcm;

pub use report::{ProbeReport, VehicleId};
pub use slotting::{Granularity, SlotGrid};
pub use tcm::{Tcm, TcmBuilder, TcmError};
