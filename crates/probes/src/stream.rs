//! Sliding-window streaming TCM maintenance.
//!
//! The paper's algorithm is offline; its Section 6 lists extension "to
//! support processing of online streaming probe data" as future work.
//! This module provides the data-plane half of that extension: a
//! [`StreamingTcm`] ingests probe observations as they arrive and
//! maintains the traffic condition matrix over a sliding window of the
//! most recent time slots, evicting old slots in O(columns). The
//! estimation half (warm-started completion per window) lives in
//! `traffic_cs::online`.

use crate::tcm::{Tcm, TcmError};
use linalg::Matrix;

/// A sliding window of per-slot probe accumulators.
///
/// Slots are indexed on an absolute grid: slot `k` covers
/// `[start_s + k·slot_len, start_s + (k+1)·slot_len)`. The window always
/// covers the `window_slots` consecutive slots ending at the most recent
/// slot that has received an observation (or been advanced to).
///
/// # Example
///
/// ```
/// use probes::stream::StreamingTcm;
///
/// let mut s = StreamingTcm::new(0, 900, 4, 3)?; // 4-slot window, 3 segments
/// s.observe(100, 1, 30.0)?;   // slot 0
/// s.observe(1000, 1, 34.0)?;  // slot 1
/// let tcm = s.snapshot();
/// assert_eq!(tcm.num_slots(), 4);
/// assert_eq!(tcm.get(1, 1), Some(34.0));
/// # Ok::<(), probes::TcmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingTcm {
    start_s: u64,
    slot_len_s: u64,
    window_slots: usize,
    num_segments: usize,
    /// Absolute index of the newest slot in the window.
    head_slot: usize,
    /// Ring buffer rows, oldest first: `rows[0]` is slot
    /// `head_slot + 1 - window_slots`.
    sums: std::collections::VecDeque<Vec<f64>>,
    counts: std::collections::VecDeque<Vec<f64>>,
    /// Observations discarded because they were older than the window.
    dropped_late: u64,
}

impl StreamingTcm {
    /// Creates an empty window positioned at slot 0.
    ///
    /// # Errors
    ///
    /// [`TcmError::EmptyDimension`] when any dimension is zero — a
    /// zero-length slot, a zero-slot window, or a zero-segment network
    /// cannot hold observations.
    pub fn new(
        start_s: u64,
        slot_len_s: u64,
        window_slots: usize,
        num_segments: usize,
    ) -> Result<Self, TcmError> {
        if slot_len_s == 0 {
            return Err(TcmError::EmptyDimension("slot length"));
        }
        if window_slots == 0 {
            return Err(TcmError::EmptyDimension("window slots"));
        }
        if num_segments == 0 {
            return Err(TcmError::EmptyDimension("segments"));
        }
        let mut sums = std::collections::VecDeque::with_capacity(window_slots);
        let mut counts = std::collections::VecDeque::with_capacity(window_slots);
        for _ in 0..window_slots {
            sums.push_back(vec![0.0; num_segments]);
            counts.push_back(vec![0.0; num_segments]);
        }
        Ok(Self {
            start_s,
            slot_len_s,
            window_slots,
            num_segments,
            head_slot: window_slots - 1,
            sums,
            counts,
            dropped_late: 0,
        })
    }

    /// Absolute slot index of a timestamp, or `None` before the grid
    /// start.
    pub fn slot_of(&self, timestamp_s: u64) -> Option<usize> {
        timestamp_s.checked_sub(self.start_s).map(|d| (d / self.slot_len_s) as usize)
    }

    /// Absolute index of the newest slot currently covered.
    pub fn head_slot(&self) -> usize {
        self.head_slot
    }

    /// Absolute index of the oldest slot currently covered.
    pub fn tail_slot(&self) -> usize {
        self.head_slot + 1 - self.window_slots
    }

    /// Number of slots the sliding window covers (matrix height).
    pub fn window_slots(&self) -> usize {
        self.window_slots
    }

    /// Number of road segments (matrix width).
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Number of observations dropped for arriving after their slot left
    /// the window.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Slides the window forward so it covers `slot` (no-op when `slot`
    /// is already covered). Evicted slots are gone for good.
    pub fn advance_to_slot(&mut self, slot: usize) {
        while self.head_slot < slot {
            self.sums.pop_front();
            self.counts.pop_front();
            self.sums.push_back(vec![0.0; self.num_segments]);
            self.counts.push_back(vec![0.0; self.num_segments]);
            self.head_slot += 1;
        }
    }

    /// Ingests one probe observation. Advances the window if the
    /// observation is newer than the current head; silently counts (and
    /// drops) observations older than the window, as a real streaming
    /// pipeline must.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range segment columns and invalid speeds.
    pub fn observe(
        &mut self,
        timestamp_s: u64,
        segment: usize,
        speed_kmh: f64,
    ) -> Result<(), TcmError> {
        if segment >= self.num_segments {
            return Err(TcmError::OutOfBounds { slot: 0, col: segment });
        }
        if !speed_kmh.is_finite() || speed_kmh < 0.0 {
            return Err(TcmError::InvalidSpeed(speed_kmh));
        }
        let Some(slot) = self.slot_of(timestamp_s) else {
            self.dropped_late += 1;
            return Ok(());
        };
        if slot > self.head_slot {
            self.advance_to_slot(slot);
        }
        if slot < self.tail_slot() {
            self.dropped_late += 1;
            return Ok(());
        }
        let row = slot - self.tail_slot();
        self.sums[row][segment] += speed_kmh;
        self.counts[row][segment] += 1.0;
        Ok(())
    }

    /// Withdraws one previously admitted observation — the mechanism
    /// behind last-write-wins deduplication: a re-delivered report's old
    /// contribution is retracted before the replacement is observed.
    ///
    /// Returns `true` when the observation was still inside the window
    /// and its contribution was removed; `false` when its slot has
    /// already been evicted (nothing to undo). Never advances the
    /// window.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range segment columns, invalid speeds, and
    /// retracting from a cell with no recorded observations.
    pub fn retract(
        &mut self,
        timestamp_s: u64,
        segment: usize,
        speed_kmh: f64,
    ) -> Result<bool, TcmError> {
        if segment >= self.num_segments {
            return Err(TcmError::OutOfBounds { slot: 0, col: segment });
        }
        if !speed_kmh.is_finite() || speed_kmh < 0.0 {
            return Err(TcmError::InvalidSpeed(speed_kmh));
        }
        let Some(slot) = self.slot_of(timestamp_s) else {
            return Ok(false);
        };
        if slot > self.head_slot || slot < self.tail_slot() {
            return Ok(false);
        }
        let row = slot - self.tail_slot();
        if self.counts[row][segment] < 1.0 {
            return Err(TcmError::OutOfBounds { slot, col: segment });
        }
        self.sums[row][segment] -= speed_kmh;
        self.counts[row][segment] -= 1.0;
        if self.counts[row][segment] == 0.0 {
            // Cancel accumulated rounding so an emptied cell reads as
            // missing, not as a denormal residue.
            self.sums[row][segment] = 0.0;
        }
        Ok(true)
    }

    /// Number of window cells currently holding at least one
    /// observation, without materializing a snapshot — the cheap
    /// emptiness probe used by streaming harnesses to predict whether a
    /// solve on this window can succeed.
    pub fn observed_cells(&self) -> usize {
        self.counts.iter().flat_map(|row| row.iter()).filter(|&&c| c > 0.0).count()
    }

    /// Raw accumulator state of one cell: `(sum, count)` for window row
    /// `row` (0 = oldest slot) and segment column `segment`. The cell's
    /// snapshot value is `sum / count` when `count > 0`; exposing the
    /// raw pair lets callers hash or re-derive cell content without
    /// materializing a snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `row >= window_slots` or `segment >= num_segments`.
    pub fn cell_raw(&self, row: usize, segment: usize) -> (f64, f64) {
        (self.sums[row][segment], self.counts[row][segment])
    }

    /// Raw accumulator state of one window row: `(sums, counts)` slices
    /// of length `num_segments` for window row `row` (0 = oldest slot).
    ///
    /// # Panics
    ///
    /// Panics when `row >= window_slots`.
    pub fn row_raw(&self, row: usize) -> (&[f64], &[f64]) {
        (&self.sums[row], &self.counts[row])
    }

    /// Materializes the current window as a [`Tcm`] (row 0 = oldest slot
    /// in the window).
    pub fn snapshot(&self) -> Tcm {
        let (tcm, _) = self.snapshot_with_counts();
        tcm
    }

    /// Like [`StreamingTcm::snapshot`], also returning per-cell probe
    /// counts.
    pub fn snapshot_with_counts(&self) -> (Tcm, Matrix) {
        let m = self.window_slots;
        let n = self.num_segments;
        let mut values = Matrix::zeros(m, n);
        let mut indicator = Matrix::zeros(m, n);
        let mut counts = Matrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let cnt = self.counts[r][c];
                counts.set(r, c, cnt);
                if cnt > 0.0 {
                    values.set(r, c, self.sums[r][c] / cnt);
                    indicator.set(r, c, 1.0);
                }
            }
        }
        (Tcm::new(values, indicator).expect("indicator is 0/1 by construction"), counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_accessors_expose_accumulators() {
        let mut s = StreamingTcm::new(0, 60, 5, 2).unwrap();
        s.observe(0, 0, 10.0).unwrap();
        s.observe(59, 0, 20.0).unwrap();
        assert_eq!(s.cell_raw(0, 0), (30.0, 2.0));
        assert_eq!(s.cell_raw(0, 1), (0.0, 0.0));
        let (sums, counts) = s.row_raw(0);
        assert_eq!(sums, &[30.0, 0.0]);
        assert_eq!(counts, &[2.0, 0.0]);
    }

    #[test]
    fn observations_land_in_right_slots() {
        let mut s = StreamingTcm::new(0, 60, 5, 2).unwrap();
        s.observe(0, 0, 10.0).unwrap();
        s.observe(59, 0, 20.0).unwrap(); // same slot -> averaged
        s.observe(60, 1, 30.0).unwrap();
        let tcm = s.snapshot();
        assert_eq!(tcm.get(0, 0), Some(15.0));
        assert_eq!(tcm.get(1, 1), Some(30.0));
        assert_eq!(tcm.observed_count(), 2);
    }

    #[test]
    fn window_slides_and_evicts() {
        let mut s = StreamingTcm::new(0, 60, 3, 1).unwrap();
        s.observe(0, 0, 10.0).unwrap(); // slot 0
        s.observe(130, 0, 20.0).unwrap(); // slot 2 (head)
        assert_eq!(s.tail_slot(), 0);
        // Jump to slot 5: slots 0..=2 evicted; window now 3..=5.
        s.observe(330, 0, 30.0).unwrap();
        assert_eq!(s.head_slot(), 5);
        assert_eq!(s.tail_slot(), 3);
        let tcm = s.snapshot();
        assert_eq!(tcm.observed_count(), 1);
        assert_eq!(tcm.get(2, 0), Some(30.0));
    }

    #[test]
    fn late_observations_counted_and_dropped() {
        let mut s = StreamingTcm::new(600, 60, 2, 1).unwrap();
        // Before grid start.
        s.observe(0, 0, 10.0).unwrap();
        assert_eq!(s.dropped_late(), 1);
        // Advance far, then send something that fell out of the window.
        s.observe(600 + 10 * 60, 0, 20.0).unwrap();
        s.observe(600, 0, 30.0).unwrap(); // slot 0, long evicted
        assert_eq!(s.dropped_late(), 2);
        assert_eq!(s.snapshot().observed_count(), 1);
    }

    #[test]
    fn observed_cells_tracks_occupancy() {
        let mut s = StreamingTcm::new(0, 60, 3, 2).unwrap();
        assert_eq!(s.observed_cells(), 0);
        s.observe(0, 0, 10.0).unwrap();
        s.observe(5, 0, 20.0).unwrap(); // same cell
        s.observe(70, 1, 30.0).unwrap();
        assert_eq!(s.observed_cells(), 2);
        assert_eq!(s.observed_cells(), s.snapshot().observed_count());
        // Retracting the last observation in a cell empties it again.
        assert!(s.retract(70, 1, 30.0).unwrap());
        assert_eq!(s.observed_cells(), 1);
        // Eviction clears cells too.
        s.advance_to_slot(10);
        assert_eq!(s.observed_cells(), 0);
    }

    #[test]
    fn snapshot_counts_match() {
        let mut s = StreamingTcm::new(0, 60, 2, 2).unwrap();
        s.observe(0, 1, 10.0).unwrap();
        s.observe(1, 1, 20.0).unwrap();
        s.observe(2, 1, 30.0).unwrap();
        let (tcm, counts) = s.snapshot_with_counts();
        assert_eq!(counts.get(0, 1), 3.0);
        assert_eq!(tcm.get(0, 1), Some(20.0));
        assert_eq!(counts.get(0, 0), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let mut s = StreamingTcm::new(0, 60, 2, 2).unwrap();
        assert!(matches!(s.observe(0, 5, 10.0), Err(TcmError::OutOfBounds { .. })));
        assert!(matches!(s.observe(0, 0, -3.0), Err(TcmError::InvalidSpeed(_))));
        assert!(matches!(s.observe(0, 0, f64::NAN), Err(TcmError::InvalidSpeed(_))));
    }

    #[test]
    fn advance_is_idempotent_backwards() {
        let mut s = StreamingTcm::new(0, 60, 3, 1).unwrap();
        s.observe(300, 0, 10.0).unwrap();
        let head = s.head_slot();
        s.advance_to_slot(1); // older than head: no-op
        assert_eq!(s.head_slot(), head);
    }

    #[test]
    fn zero_dimensions_are_errors_not_panics() {
        assert!(matches!(StreamingTcm::new(0, 60, 0, 1), Err(TcmError::EmptyDimension(_))));
        assert!(matches!(StreamingTcm::new(0, 0, 4, 1), Err(TcmError::EmptyDimension(_))));
        assert!(matches!(StreamingTcm::new(0, 60, 4, 0), Err(TcmError::EmptyDimension(_))));
    }

    #[test]
    fn retract_implements_last_write_wins() {
        let mut s = StreamingTcm::new(0, 60, 3, 2).unwrap();
        s.observe(10, 0, 30.0).unwrap();
        s.observe(20, 0, 50.0).unwrap();
        // Re-delivery of the t=20 report with a corrected speed.
        assert!(s.retract(20, 0, 50.0).unwrap());
        s.observe(20, 0, 40.0).unwrap();
        assert_eq!(s.snapshot().get(0, 0), Some(35.0));
        // Retracting the only observation empties the cell entirely.
        assert!(s.retract(10, 0, 30.0).unwrap());
        assert!(s.retract(20, 0, 40.0).unwrap());
        assert_eq!(s.snapshot().get(0, 0), None);
        // Slots outside the window report false, bad cells error.
        s.observe(10 * 60, 1, 20.0).unwrap();
        assert!(!s.retract(10, 0, 30.0).unwrap());
        assert!(s.retract(10 * 60, 0, 1.0).is_err(), "cell has no observations");
        assert!(s.retract(10 * 60, 9, 1.0).is_err(), "segment out of range");
    }

    #[test]
    fn matches_batch_builder_on_same_data() {
        // Feeding the same observations into the streaming window (large
        // enough to hold everything) and the batch builder must agree.
        use crate::tcm::TcmBuilder;
        let mut stream = StreamingTcm::new(0, 60, 10, 3).unwrap();
        let mut batch = TcmBuilder::new(10, 3);
        let obs = [(30u64, 0usize, 25.0), (90, 1, 35.0), (95, 1, 45.0), (540, 2, 55.0)];
        for &(t, c, v) in &obs {
            stream.observe(t, c, v).unwrap();
            batch.add_observation((t / 60) as usize, c, v).unwrap();
        }
        stream.advance_to_slot(9);
        assert_eq!(stream.snapshot(), batch.build());
    }
}
