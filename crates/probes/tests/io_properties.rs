//! Property tests for the CSV interchange: anything we can write, we can
//! read back bit-for-bit.

use probes::io::{read_reports, read_tcm, write_reports, write_tcm};
use probes::{ProbeReport, Tcm, VehicleId};
use proptest::prelude::*;
use roadnet::geometry::Point;

fn report_strategy() -> impl Strategy<Value = ProbeReport> {
    (
        0u32..10_000,
        -1.0e6f64..1.0e6,
        -1.0e6f64..1.0e6,
        0.0f64..200.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        0u64..10_000_000,
    )
        .prop_map(|(v, x, y, speed, hx, hy, ts)| {
            ProbeReport::with_heading(VehicleId(v), Point::new(x, y), speed, (hx, hy), ts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reports_round_trip(reports in proptest::collection::vec(report_strategy(), 0..50)) {
        let mut buf = Vec::new();
        write_reports(&reports, &mut buf).unwrap();
        let back = read_reports(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back, reports);
    }

    #[test]
    fn tcm_round_trip(
        rows in 1usize..12,
        cols in 1usize..10,
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values = linalg::Matrix::random_uniform(rows, cols, &mut rng, 0.0, 100.0);
        let mask = probes::mask::random_mask(rows, cols, 0.6, &mut rng);
        let tcm = Tcm::complete(values).masked(&mask).unwrap();
        let mut buf = Vec::new();
        write_tcm(&tcm, &mut buf).unwrap();
        let back = read_tcm(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.indicator(), tcm.indicator());
        // Values survive the decimal round trip exactly (Rust prints
        // f64 with round-trip precision).
        prop_assert_eq!(back.values(), tcm.values());
    }

    #[test]
    fn corrupted_report_lines_rejected_not_panicking(
        garbage in "[a-z0-9,.\\-]{0,80}",
    ) {
        let text = format!("{}\n{garbage}\n", probes::io::REPORT_HEADER);
        // Must return Ok (if the garbage happens to parse) or Err — never
        // panic.
        let _ = read_reports(std::io::BufReader::new(text.as_bytes()));
    }
}
