//! Property tests for the CSV interchange: anything we can write, we can
//! read back bit-for-bit.

use probes::io::{read_reports, read_tcm, write_reports, write_tcm};
use probes::{ProbeReport, Tcm, VehicleId};
use proptest::prelude::*;
use roadnet::geometry::Point;

fn report_strategy() -> impl Strategy<Value = ProbeReport> {
    (
        0u32..10_000,
        -1.0e6f64..1.0e6,
        -1.0e6f64..1.0e6,
        0.0f64..200.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        0u64..10_000_000,
    )
        .prop_map(|(v, x, y, speed, hx, hy, ts)| {
            ProbeReport::with_heading(VehicleId(v), Point::new(x, y), speed, (hx, hy), ts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reports_round_trip(reports in proptest::collection::vec(report_strategy(), 0..50)) {
        let mut buf = Vec::new();
        write_reports(&reports, &mut buf).unwrap();
        let back = read_reports(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back, reports);
    }

    #[test]
    fn tcm_round_trip(
        rows in 1usize..12,
        cols in 1usize..10,
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values = linalg::Matrix::random_uniform(rows, cols, &mut rng, 0.0, 100.0);
        let mask = probes::mask::random_mask(rows, cols, 0.6, &mut rng);
        let tcm = Tcm::complete(values).masked(&mask).unwrap();
        let mut buf = Vec::new();
        write_tcm(&tcm, &mut buf).unwrap();
        let back = read_tcm(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.indicator(), tcm.indicator());
        // Values survive the decimal round trip exactly (Rust prints
        // f64 with round-trip precision).
        prop_assert_eq!(back.values(), tcm.values());
    }

    #[test]
    fn corrupted_report_lines_rejected_not_panicking(
        garbage in "[a-z0-9,.\\-]{0,80}",
    ) {
        let text = format!("{}\n{garbage}\n", probes::io::REPORT_HEADER);
        // Must return Ok (if the garbage happens to parse) or Err — never
        // panic.
        let _ = read_reports(std::io::BufReader::new(text.as_bytes()));
    }
}

mod error_paths {
    //! Typed-error coverage of the report/TCM readers: every malformed
    //! input maps to a [`CsvError`] variant carrying the offending line,
    //! never a panic.

    use probes::io::{parse_report_record, read_reports, read_tcm, CsvError, REPORT_HEADER};

    /// Reads a report file whose second line is `record` and returns the
    /// expected parse failure.
    fn parse_failure(record: &str) -> (usize, String) {
        let text = format!("{REPORT_HEADER}\n{record}\n");
        match read_reports(std::io::BufReader::new(text.as_bytes())) {
            Err(CsvError::Parse { line, msg }) => (line, msg),
            other => panic!("expected CsvError::Parse for {record:?}, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rows_are_typed_parse_errors() {
        let (line, msg) = parse_failure("1,2,3");
        assert_eq!(line, 2);
        assert!(msg.contains("7 fields"), "{msg}");
        let (_, msg) = parse_failure("x,0,0,30,1,0,5");
        assert!(msg.contains("bad vehicle"), "{msg}");
        let (_, msg) = parse_failure("1,0,0,thirty,1,0,5");
        assert!(msg.contains("bad speed"), "{msg}");
    }

    #[test]
    fn non_finite_speeds_rejected() {
        for bad in ["NaN", "inf", "-inf", "-99"] {
            let (line, msg) = parse_failure(&format!("1,0,0,{bad},1,0,5"));
            assert_eq!(line, 2);
            assert!(msg.contains("speed"), "{bad}: {msg}");
        }
        // Non-finite coordinates and headings are equally fatal.
        let (_, msg) = parse_failure("1,inf,0,30,1,0,5");
        assert!(msg.contains("non-finite"), "{msg}");
        let (_, msg) = parse_failure("1,0,0,30,NaN,0,5");
        assert!(msg.contains("non-finite"), "{msg}");
    }

    #[test]
    fn out_of_range_timestamps_rejected() {
        // Negative and over-u64 timestamps both fail integer parsing
        // with the line number attached.
        for bad in ["-5", "99999999999999999999999999", "3.5", ""] {
            let (line, msg) = parse_failure(&format!("1,0,0,30,1,0,{bad}"));
            assert_eq!(line, 2);
            assert!(msg.contains("bad timestamp"), "{bad:?}: {msg}");
        }
    }

    #[test]
    fn per_record_parser_matches_batch_reader() {
        // The streaming path's single-record parser and the strict batch
        // reader agree on both the happy and the sad case.
        let good = "7,1.5,-2,33.25,0,1,900";
        let report = parse_report_record(good, 1).unwrap();
        let batch =
            read_reports(std::io::BufReader::new(format!("{REPORT_HEADER}\n{good}\n").as_bytes()))
                .unwrap();
        assert_eq!(batch, vec![report]);
        assert!(matches!(parse_report_record("7,1,2", 3), Err(CsvError::Parse { line: 3, .. })));
    }

    #[test]
    fn tcm_reader_errors_are_typed() {
        for (text, needle) in [
            ("", "no data rows"),
            ("slot,s0,s1\n0,1.0\n", "fields"),
            ("slot,s0\n0,abc\n", "bad value"),
        ] {
            match read_tcm(std::io::BufReader::new(text.as_bytes())) {
                Err(CsvError::Parse { msg, .. }) => assert!(msg.contains(needle), "{msg}"),
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }
}
