//! Compile-time verification that the `serde` feature provides
//! `Serialize`/`Deserialize` on every data-structure type (C-SERDE).
//! (No serializer crate is in the dependency set, so these are trait
//! bound checks rather than byte-level round trips.)

#![cfg(feature = "serde")]

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn all_data_types_are_serde() {
    assert_serde::<probes::ProbeReport>();
    assert_serde::<probes::VehicleId>();
    assert_serde::<probes::Tcm>();
    assert_serde::<probes::SlotGrid>();
    assert_serde::<probes::Granularity>();
    assert_serde::<linalg::Matrix>();
    assert_serde::<roadnet::Segment>();
    assert_serde::<roadnet::RoadClass>();
    assert_serde::<roadnet::SegmentId>();
    assert_serde::<roadnet::NodeId>();
}
