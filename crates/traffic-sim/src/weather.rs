//! Daily weather overlay for the ground-truth model.
//!
//! The paper's related work (Yuan et al. \[35\]) highlights weather as a
//! first-order factor in urban driving speeds. The overlay draws one
//! weather state per day and applies a citywide multiplicative speed
//! factor — a shared latent factor, so it *adds structure the completion
//! algorithm can exploit* (rainy days correlate every segment), while
//! making day-to-day traffic less repetitive than a pure weekly cycle.

use rand::{RngExt, SeedableRng};

/// Weather state of one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DayWeather {
    /// Dry day: no speed effect.
    Clear,
    /// Ordinary rain: citywide slowdown.
    Rain,
    /// Downpour: pronounced slowdown.
    HeavyRain,
}

impl DayWeather {
    /// Citywide multiplicative speed factor for the day.
    pub fn speed_factor(self) -> f64 {
        match self {
            DayWeather::Clear => 1.0,
            DayWeather::Rain => 0.88,
            DayWeather::HeavyRain => 0.74,
        }
    }
}

/// Weather generation parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeatherConfig {
    /// Probability a day is rainy at all.
    pub rain_prob: f64,
    /// Probability a rainy day is a downpour.
    pub heavy_given_rain: f64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        // Disabled by default: the core experiments match the paper's
        // weather-free modelling.
        Self { rain_prob: 0.0, heavy_given_rain: 0.3 }
    }
}

impl WeatherConfig {
    /// A temperate-city preset (~1 rainy day in 3).
    pub fn temperate() -> Self {
        Self { rain_prob: 0.35, heavy_given_rain: 0.25 }
    }
}

/// A realized weather sequence: one state per day.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeatherSequence {
    days: Vec<DayWeather>,
}

impl WeatherSequence {
    /// Draws `num_days` of weather.
    ///
    /// # Panics
    ///
    /// Panics when probabilities are outside `[0, 1]`.
    pub fn generate(num_days: usize, config: &WeatherConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&config.rain_prob), "rain_prob out of range");
        assert!((0.0..=1.0).contains(&config.heavy_given_rain), "heavy_given_rain out of range");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let days = (0..num_days)
            .map(|_| {
                if rng.random_range(0.0..1.0) < config.rain_prob {
                    if rng.random_range(0.0..1.0) < config.heavy_given_rain {
                        DayWeather::HeavyRain
                    } else {
                        DayWeather::Rain
                    }
                } else {
                    DayWeather::Clear
                }
            })
            .collect();
        Self { days }
    }

    /// All-clear sequence (the disabled default).
    pub fn clear(num_days: usize) -> Self {
        Self { days: vec![DayWeather::Clear; num_days] }
    }

    /// Weather of the day containing absolute time `t_s` (clamping past
    /// the end).
    pub fn at(&self, t_s: u64) -> DayWeather {
        let day = (t_s / crate::profile::DAY_S) as usize;
        self.days[day.min(self.days.len().saturating_sub(1))]
    }

    /// Speed factor at absolute time `t_s`.
    pub fn speed_factor(&self, t_s: u64) -> f64 {
        self.at(t_s).speed_factor()
    }

    /// Number of days covered.
    pub fn num_days(&self) -> usize {
        self.days.len()
    }

    /// The per-day states.
    pub fn days(&self) -> &[DayWeather] {
        &self.days
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DAY_S;

    #[test]
    fn factors_ordered() {
        assert!(DayWeather::Clear.speed_factor() > DayWeather::Rain.speed_factor());
        assert!(DayWeather::Rain.speed_factor() > DayWeather::HeavyRain.speed_factor());
        assert_eq!(DayWeather::Clear.speed_factor(), 1.0);
    }

    #[test]
    fn default_config_is_dry() {
        let seq = WeatherSequence::generate(30, &WeatherConfig::default(), 1);
        assert!(seq.days().iter().all(|&d| d == DayWeather::Clear));
        assert_eq!(seq, WeatherSequence::clear(30));
    }

    #[test]
    fn temperate_mix_roughly_matches_probabilities() {
        let seq = WeatherSequence::generate(5000, &WeatherConfig::temperate(), 2);
        let rainy = seq.days().iter().filter(|&&d| d != DayWeather::Clear).count() as f64 / 5000.0;
        assert!((rainy - 0.35).abs() < 0.03, "rainy fraction {rainy}");
        let heavy = seq.days().iter().filter(|&&d| d == DayWeather::HeavyRain).count() as f64;
        let rain_total = seq.days().iter().filter(|&&d| d != DayWeather::Clear).count() as f64;
        assert!((heavy / rain_total - 0.25).abs() < 0.05);
    }

    #[test]
    fn day_lookup_and_clamping() {
        let seq = WeatherSequence { days: vec![DayWeather::Clear, DayWeather::Rain] };
        assert_eq!(seq.at(0), DayWeather::Clear);
        assert_eq!(seq.at(DAY_S - 1), DayWeather::Clear);
        assert_eq!(seq.at(DAY_S), DayWeather::Rain);
        // Past the end: clamps to the last day.
        assert_eq!(seq.at(10 * DAY_S), DayWeather::Rain);
        assert!((seq.speed_factor(DAY_S) - 0.88).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WeatherSequence::generate(100, &WeatherConfig::temperate(), 7);
        let b = WeatherSequence::generate(100, &WeatherConfig::temperate(), 7);
        assert_eq!(a, b);
        let c = WeatherSequence::generate(100, &WeatherConfig::temperate(), 8);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "rain_prob")]
    fn bad_probability_panics() {
        WeatherSequence::generate(5, &WeatherConfig { rain_prob: 2.0, heavy_given_rain: 0.0 }, 1);
    }
}
