//! Time-of-day congestion profiles — the latent temporal factors.
//!
//! Urban traffic is dominated by a few shared temporal patterns: the
//! weekday double rush hour, flatter weekend traffic, and an overnight
//! lull. The ground-truth model expresses every segment's speed as a
//! combination of these few factors, which is precisely what gives real
//! TCMs their low rank (the paper's hidden structure, Section 3.1).

/// Seconds per day.
pub const DAY_S: u64 = 86_400;

/// A smooth, periodic congestion factor over time of day, built from
/// Gaussian rush-hour bumps. Output is in `[0, 1]`: `0` = free flow,
/// `1` = maximal congestion for this profile.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CongestionProfile {
    /// `(peak_hour, width_hours, height)` bumps; heights should sum ≤ 1.
    bumps: Vec<(f64, f64, f64)>,
    /// Constant background congestion level.
    base: f64,
    /// Multiplier applied on weekend days (day index 5 and 6).
    weekend_factor: f64,
}

impl CongestionProfile {
    /// Creates a profile from rush-hour bumps.
    ///
    /// # Panics
    ///
    /// Panics when parameters leave `[0, 1]` output unattainable
    /// (negative widths/heights or base outside `[0, 1]`).
    pub fn new(bumps: Vec<(f64, f64, f64)>, base: f64, weekend_factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&base), "base must be in [0,1]");
        assert!((0.0..=1.5).contains(&weekend_factor), "weekend factor must be in [0,1.5]");
        for &(hour, width, height) in &bumps {
            assert!((0.0..24.0).contains(&hour), "peak hour {hour} out of range");
            assert!(width > 0.0, "bump width must be positive");
            assert!((0.0..=1.0).contains(&height), "bump height must be in [0,1]");
        }
        Self { bumps, base, weekend_factor }
    }

    /// The weekday arterial pattern: strong 8 h and 18 h peaks.
    pub fn arterial() -> Self {
        Self::new(vec![(8.0, 1.2, 0.55), (18.0, 1.5, 0.6)], 0.1, 0.55)
    }

    /// Collector roads: the same peaks, moderated.
    pub fn collector() -> Self {
        Self::new(vec![(8.2, 1.4, 0.4), (17.8, 1.7, 0.45)], 0.08, 0.65)
    }

    /// Local streets: shallow, broad midday-heavy congestion.
    pub fn local() -> Self {
        Self::new(vec![(9.0, 2.5, 0.25), (17.5, 2.5, 0.3), (12.5, 3.0, 0.15)], 0.05, 0.8)
    }

    /// Congestion factor at absolute time `t_s` (seconds since the window
    /// start, assumed to begin at midnight on a Monday). Result ∈ [0, 1].
    pub fn at(&self, t_s: u64) -> f64 {
        let day = (t_s / DAY_S) % 7;
        let hour = (t_s % DAY_S) as f64 / 3600.0;
        let mut c = self.base;
        for &(peak, width, height) in &self.bumps {
            // Wrap-around distance on the 24 h circle.
            let mut d = (hour - peak).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            c += height * (-0.5 * (d / width) * (d / width)).exp();
        }
        let weekend = day >= 5;
        if weekend {
            c *= self.weekend_factor;
        }
        c.clamp(0.0, 1.0)
    }

    /// Samples the profile at the centre of each slot of a grid.
    pub fn sample(&self, start_s: u64, slot_len_s: u64, num_slots: usize) -> Vec<f64> {
        (0..num_slots).map(|i| self.at(start_s + slot_len_s * i as u64 + slot_len_s / 2)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_bounded() {
        for profile in [
            CongestionProfile::arterial(),
            CongestionProfile::collector(),
            CongestionProfile::local(),
        ] {
            for t in (0..7 * DAY_S).step_by(600) {
                let c = profile.at(t);
                assert!((0.0..=1.0).contains(&c), "{c} at {t}");
            }
        }
    }

    #[test]
    fn rush_hour_exceeds_night() {
        let p = CongestionProfile::arterial();
        let night = p.at(3 * 3600); // 3 am Monday
        let morning_rush = p.at(8 * 3600); // 8 am Monday
        let evening_rush = p.at(18 * 3600);
        assert!(morning_rush > night + 0.3, "{morning_rush} vs {night}");
        assert!(evening_rush > night + 0.3);
    }

    #[test]
    fn weekend_flatter_than_weekday() {
        let p = CongestionProfile::arterial();
        let weekday_rush = p.at(8 * 3600); // Monday
        let weekend_rush = p.at(5 * DAY_S + 8 * 3600); // Saturday
        assert!(weekend_rush < weekday_rush);
    }

    #[test]
    fn daily_periodicity_within_weekdays() {
        let p = CongestionProfile::collector();
        for hour in 0..24 {
            let mon = p.at(hour * 3600);
            let tue = p.at(DAY_S + hour * 3600);
            assert!((mon - tue).abs() < 1e-12);
        }
    }

    #[test]
    fn wraparound_continuity_at_midnight() {
        let p = CongestionProfile::local();
        let before = p.at(DAY_S - 60); // 23:59 Monday
        let after = p.at(DAY_S + 60); // 00:01 Tuesday
        assert!((before - after).abs() < 0.02, "{before} vs {after}");
    }

    #[test]
    fn class_ordering_at_rush() {
        // Arterials congest hardest at rush hour.
        let t = 18 * 3600;
        let a = CongestionProfile::arterial().at(t);
        let c = CongestionProfile::collector().at(t);
        let l = CongestionProfile::local().at(t);
        assert!(a > c && c > l, "a={a} c={c} l={l}");
    }

    #[test]
    fn sample_length_and_alignment() {
        let p = CongestionProfile::arterial();
        let s = p.sample(0, 3600, 24);
        assert_eq!(s.len(), 24);
        // Peak sample is near hour 18.
        let (argmax, _) =
            s.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        assert!((argmax as i64 - 18).abs() <= 1, "peak at {argmax}");
    }

    #[test]
    #[should_panic(expected = "peak hour")]
    fn invalid_peak_rejected() {
        CongestionProfile::new(vec![(25.0, 1.0, 0.5)], 0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "base")]
    fn invalid_base_rejected() {
        CongestionProfile::new(vec![], 1.5, 0.5);
    }
}
