//! Ground-truth traffic model and probe-vehicle fleet simulator.
//!
//! The paper's evaluation is driven by two proprietary datasets (GPS
//! traces of ~4,000 Shanghai taxis and ~8,000 Shenzhen taxis). This crate
//! is the substitution documented in DESIGN.md: a generative model of
//! urban traffic plus a taxi-fleet simulator, engineered so that the
//! statistical properties the paper's algorithms exploit are present:
//!
//! * **Low-rank structure** ([`ground_truth`]): segment speeds are driven
//!   by a handful of shared latent temporal factors (weekday rush-hour
//!   profiles per road class, a weekend modulation), so the ground-truth
//!   TCM has a sharp singular-value knee like Fig. 4.
//! * **Spikes** — random traffic incidents carve short deep speed drops
//!   into individual segments (the paper's type-2 eigenflows).
//! * **Noise** — per-cell Gaussian fluctuation (type-3 eigenflows).
//! * **Uneven sampling** ([`fleet`]): taxis route between random
//!   origin–destination pairs over shortest travel-time paths, naturally
//!   concentrating on arterials; GPS reports are periodic, noisy
//!   ([`gps`]), and frequently lost in urban canyons — producing the
//!   missing-data patterns of Section 2.3.
//!
//! # Example
//!
//! ```
//! use traffic_sim::config::ScenarioConfig;
//!
//! let scenario = ScenarioConfig::small_test();
//! let sim = scenario.run();
//! assert!(!sim.reports.is_empty());
//! assert_eq!(sim.ground_truth.num_segments(), sim.network.segment_count());
//! ```

pub mod config;
pub mod fleet;
pub mod gps;
pub mod ground_truth;
pub mod profile;
pub mod weather;

pub use config::{ScenarioConfig, SimulationOutput};
pub use ground_truth::{
    sample_probe_stream, GroundTruthConfig, GroundTruthModel, ProbeSample, ProbeStreamConfig,
};
