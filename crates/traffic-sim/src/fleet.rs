//! Probe-taxi fleet simulation.
//!
//! Each vehicle independently alternates between idle pauses and trips
//! routed over shortest travel-time paths between random
//! origin–destination nodes ("probe vehicles move at their own wills" —
//! Section 1). While driving, the vehicle moves at the flow speed of the
//! segment it is on (scaled by a per-traversal factor: an individual car
//! is not exactly the mean of the flow) and emits a GPS report every
//! reporting interval; reports pass through the [`crate::gps`] loss/noise
//! model before reaching the monitoring centre.
//!
//! The simulation is event driven per vehicle — it jumps from segment
//! boundary to segment boundary and interpolates report positions —
//! so a 2,000-taxi day simulates in well under a second.

use crate::gps::GpsConfig;
use crate::ground_truth::GroundTruthModel;
use linalg::rng::normal;
use probes::{ProbeReport, VehicleId};
use rand::{RngExt, SeedableRng};
use roadnet::routing::random_trip;
use roadnet::RoadNetwork;

/// Fleet behaviour parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FleetConfig {
    /// Number of probe vehicles.
    pub fleet_size: usize,
    /// Nominal seconds between consecutive reports of one vehicle
    /// (the paper: "from 30 seconds to several minutes").
    pub report_interval_s: u64,
    /// Uniform jitter added to each interval, seconds.
    pub report_jitter_s: u64,
    /// Idle pause between trips, uniform range in seconds (taxis waiting
    /// for passengers do not contribute flow-speed samples).
    pub idle_time_s: (u64, u64),
    /// Std-dev of the per-traversal vehicle speed factor around 1.0
    /// (driver variability within the flow).
    pub vehicle_speed_factor_std: f64,
    /// RNG seed; vehicle `i` derives its own stream from `seed + i`.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            fleet_size: 500,
            report_interval_s: 60,
            report_jitter_s: 10,
            idle_time_s: (120, 1200),
            vehicle_speed_factor_std: 0.12,
            seed: 99,
        }
    }
}

/// Simulates the whole fleet over `[0, duration_s)`, returning all
/// delivered probe reports sorted by timestamp.
///
/// # Panics
///
/// Panics when configs are invalid (see [`GpsConfig::validate`]) or the
/// network/ground-truth disagree on segment count.
pub fn simulate_fleet(
    net: &RoadNetwork,
    ground: &GroundTruthModel,
    duration_s: u64,
    fleet: &FleetConfig,
    gps: &GpsConfig,
) -> Vec<ProbeReport> {
    gps.validate();
    assert!(fleet.report_interval_s > 0, "report interval must be positive");
    assert!(fleet.idle_time_s.0 <= fleet.idle_time_s.1, "idle range inverted");
    assert_eq!(
        ground.speeds().cols(),
        net.segment_count(),
        "ground truth and network disagree on segment count"
    );
    let mut all = Vec::new();
    for i in 0..fleet.fleet_size {
        let mut rng = rand::rngs::StdRng::seed_from_u64(fleet.seed.wrapping_add(i as u64));
        simulate_vehicle(
            VehicleId(i as u32),
            net,
            ground,
            duration_s,
            fleet,
            gps,
            &mut rng,
            &mut all,
        );
    }
    all.sort_by_key(|r| (r.timestamp_s, r.vehicle.0));
    all
}

/// Simulates a single vehicle, appending its delivered reports to `out`.
#[allow(clippy::too_many_arguments)]
fn simulate_vehicle(
    id: VehicleId,
    net: &RoadNetwork,
    ground: &GroundTruthModel,
    duration_s: u64,
    fleet: &FleetConfig,
    gps: &GpsConfig,
    rng: &mut rand::rngs::StdRng,
    out: &mut Vec<ProbeReport>,
) {
    // Stagger fleet start so report times don't align across vehicles.
    let mut now = rng.random_range(0.0..fleet.report_interval_s as f64);
    let mut next_report = now + report_gap(fleet, rng);

    while (now as u64) < duration_s {
        // Idle pause (no reports while parked).
        let idle = rng.random_range(fleet.idle_time_s.0..=fleet.idle_time_s.1) as f64;
        now += idle;
        next_report = next_report.max(now);
        if now as u64 >= duration_s {
            break;
        }

        // Next trip.
        let Some((_, _, route)) = random_trip(net, rng) else { break };
        for &sid in &route.segments {
            let seg = net.segment(sid);
            let flow_speed = ground.speed_at(now as u64, sid.index());
            let factor = (1.0 + normal(rng, 0.0, fleet.vehicle_speed_factor_std)).clamp(0.5, 1.5);
            let speed_kmh = (flow_speed * factor).max(2.0);
            let speed_ms = speed_kmh / 3.6;
            let exit = now + seg.length_m / speed_ms;

            // Direction of travel and the lane offset: vehicles drive on
            // the right-hand side ~3 m off the centreline, which is what
            // lets a directed map matcher separate the two directions of
            // a two-way road.
            let a = net.segment_start(sid);
            let b = net.segment_end(sid);
            let (ux, uy) = ((b.x - a.x) / seg.length_m, (b.y - a.y) / seg.length_m);
            const LANE_OFFSET_M: f64 = 3.0;

            // Emit every report falling inside this traversal.
            while next_report < exit {
                if next_report >= now {
                    let frac = (next_report - now) / (exit - now);
                    let centre = net.segment_point(sid, frac);
                    let pos = roadnet::geometry::Point::new(
                        centre.x + uy * LANE_OFFSET_M,
                        centre.y - ux * LANE_OFFSET_M,
                    );
                    let ts = next_report as u64;
                    if ts >= duration_s {
                        return;
                    }
                    if let Some((obs_pos, obs_speed)) =
                        gps.observe(rng, pos, speed_kmh, seg.urban_canyon)
                    {
                        // GPS course over ground, with a little angular
                        // noise.
                        let ang = normal(rng, 0.0, 0.08);
                        let (c, s) = (ang.cos(), ang.sin());
                        let heading = (ux * c - uy * s, ux * s + uy * c);
                        out.push(ProbeReport::with_heading(id, obs_pos, obs_speed, heading, ts));
                    }
                }
                next_report += report_gap(fleet, rng);
            }
            now = exit;
            if now as u64 >= duration_s {
                return;
            }
        }
    }
}

fn report_gap(fleet: &FleetConfig, rng: &mut rand::rngs::StdRng) -> f64 {
    let jitter = if fleet.report_jitter_s == 0 {
        0.0
    } else {
        rng.random_range(0.0..=fleet.report_jitter_s as f64)
    };
    fleet.report_interval_s as f64 + jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::GroundTruthConfig;
    use probes::{Granularity, SlotGrid};
    use roadnet::generator::{generate_grid_city, GridCityConfig};
    use roadnet::matching::SegmentIndex;

    fn setup(duration_s: u64) -> (RoadNetwork, GroundTruthModel) {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, duration_s, Granularity::Min15);
        let ground = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
        (net, ground)
    }

    #[test]
    fn reports_sorted_and_in_window() {
        let (net, ground) = setup(7200);
        let fleet = FleetConfig { fleet_size: 10, ..FleetConfig::default() };
        let reports = simulate_fleet(&net, &ground, 7200, &fleet, &GpsConfig::default());
        assert!(!reports.is_empty());
        for w in reports.windows(2) {
            assert!(w[0].timestamp_s <= w[1].timestamp_s);
        }
        assert!(reports.iter().all(|r| r.timestamp_s < 7200));
    }

    #[test]
    fn report_rate_close_to_interval() {
        let (net, ground) = setup(7200);
        let fleet = FleetConfig {
            fleet_size: 20,
            report_interval_s: 60,
            report_jitter_s: 0,
            idle_time_s: (0, 1), // nearly always driving
            ..FleetConfig::default()
        };
        let gps = GpsConfig { dropout_prob: 0.0, canyon_dropout_prob: 0.0, ..GpsConfig::default() };
        let reports = simulate_fleet(&net, &ground, 7200, &fleet, &gps);
        // 20 vehicles * 7200 s / 60 s = 2400 expected; allow trip-boundary
        // slack.
        let per_vehicle = reports.len() as f64 / 20.0;
        assert!((per_vehicle - 120.0).abs() < 15.0, "per-vehicle {per_vehicle}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, ground) = setup(3600);
        let fleet = FleetConfig { fleet_size: 5, ..FleetConfig::default() };
        let a = simulate_fleet(&net, &ground, 3600, &fleet, &GpsConfig::default());
        let b = simulate_fleet(&net, &ground, 3600, &fleet, &GpsConfig::default());
        assert_eq!(a, b);
        let fleet2 = FleetConfig { seed: 1, ..fleet };
        let c = simulate_fleet(&net, &ground, 3600, &fleet2, &GpsConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn more_vehicles_more_reports() {
        let (net, ground) = setup(3600);
        let small = FleetConfig { fleet_size: 5, ..FleetConfig::default() };
        let big = FleetConfig { fleet_size: 40, ..FleetConfig::default() };
        let gps = GpsConfig::default();
        let a = simulate_fleet(&net, &ground, 3600, &small, &gps);
        let b = simulate_fleet(&net, &ground, 3600, &big, &gps);
        assert!(b.len() > 3 * a.len(), "{} vs {}", a.len(), b.len());
    }

    #[test]
    fn reported_positions_near_network() {
        let (net, ground) = setup(3600);
        let fleet = FleetConfig { fleet_size: 10, ..FleetConfig::default() };
        let reports = simulate_fleet(&net, &ground, 3600, &fleet, &GpsConfig::default());
        let index = SegmentIndex::build(&net, 100.0);
        let matched =
            reports.iter().filter(|r| index.match_point(&net, r.position, 80.0).is_some()).count();
        // Virtually every report should match within 80 m (noise std 8/25 m).
        assert!(matched as f64 > 0.97 * reports.len() as f64, "{matched}/{}", reports.len());
    }

    #[test]
    fn probe_speeds_track_flow_speeds() {
        // With zero GPS noise and a calm network, the average probe speed
        // observed on a segment should approximate the ground truth —
        // the paper's Definition 1 approximation.
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 3 * 3600, Granularity::Min60);
        let gt_cfg = GroundTruthConfig {
            noise_std_kmh: 0.0,
            incident_rate_per_segment_day: 0.0,
            ..GroundTruthConfig::default()
        };
        let ground = GroundTruthModel::generate(&net, grid, &gt_cfg);
        let fleet = FleetConfig {
            fleet_size: 60,
            report_interval_s: 30,
            report_jitter_s: 0,
            idle_time_s: (0, 60),
            vehicle_speed_factor_std: 0.05,
            seed: 5,
        };
        let gps = GpsConfig {
            position_noise_std_m: 0.0,
            canyon_position_noise_std_m: 0.0,
            speed_noise_std_kmh: 0.0,
            dropout_prob: 0.0,
            canyon_dropout_prob: 0.0,
        };
        let reports = simulate_fleet(&net, &ground, 3 * 3600, &fleet, &gps);
        let index = SegmentIndex::build(&net, 100.0);
        let tcm = probes::tcm::build_tcm_from_reports(&reports, &net, &index, &grid, 20.0);
        // Over observed cells with several samples, relative error of the
        // averaged probe speed vs ground truth should be small.
        let mut rel_err_sum = 0.0;
        let mut count = 0;
        for (t, c, v) in tcm.observed_entries() {
            let truth = ground.speeds().get(t, c);
            rel_err_sum += (v - truth).abs() / truth;
            count += 1;
        }
        assert!(count > 50, "too few observed cells: {count}");
        let mean_rel = rel_err_sum / count as f64;
        assert!(mean_rel < 0.12, "mean relative error {mean_rel}");
    }

    #[test]
    #[should_panic(expected = "segment count")]
    fn mismatched_ground_truth_rejected() {
        let (net, _) = setup(3600);
        let other_net = generate_grid_city(&GridCityConfig {
            rows: 3,
            cols: 3,
            ..GridCityConfig::small_test()
        });
        let grid = SlotGrid::covering(0, 3600, Granularity::Min15);
        let ground = GroundTruthModel::generate(&other_net, grid, &GroundTruthConfig::default());
        simulate_fleet(&net, &ground, 3600, &FleetConfig::default(), &GpsConfig::default());
    }
}
