//! Generative ground-truth traffic model.
//!
//! Produces a *complete* traffic condition matrix — the `X` the paper can
//! only approximate by picking well-covered downtown subnetworks — with
//! the three structural ingredients the paper's PCA study identifies:
//! shared periodic factors (low rank), incident spikes, and noise.

use crate::profile::{CongestionProfile, DAY_S};
use linalg::rng::normal;
use linalg::Matrix;
use probes::{SlotGrid, Tcm};
use rand::{RngExt, SeedableRng};
use roadnet::{RoadClass, RoadNetwork};

/// Parameters of the generative traffic model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroundTruthConfig {
    /// Expected number of traffic incidents per segment per day.
    pub incident_rate_per_segment_day: f64,
    /// Incident duration range in *seconds* (uniform).
    pub incident_duration_s: (u64, u64),
    /// Fraction of speed removed during an incident (uniform range).
    pub incident_severity: (f64, f64),
    /// Standard deviation of the per-cell Gaussian speed noise, km/h.
    pub noise_std_kmh: f64,
    /// When set, `noise_std_kmh` is interpreted at this reference slot
    /// length (seconds) and scaled by `√(reference / slot_len)` for
    /// other granularities — a cell's speed is a sample mean over the
    /// slot, so shorter slots average fewer vehicles and are noisier.
    /// This is what makes finer granularities harder to estimate in the
    /// paper's Fig. 11. `None` keeps the noise constant.
    pub noise_reference_slot_s: Option<u64>,
    /// Hard lower bound on any speed, km/h (gridlocked but not parked).
    pub min_speed_kmh: f64,
    /// Relative jitter of each segment's coupling to its class profile
    /// (how uniformly a class congests).
    pub coupling_jitter: f64,
    /// Daily weather overlay (disabled by the default config).
    pub weather: crate::weather::WeatherConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        Self {
            incident_rate_per_segment_day: 0.05,
            incident_duration_s: (900, 5400),
            incident_severity: (0.4, 0.8),
            noise_std_kmh: 2.0,
            noise_reference_slot_s: None,
            min_speed_kmh: 3.0,
            coupling_jitter: 0.15,
            weather: crate::weather::WeatherConfig::default(),
            seed: 7,
        }
    }
}

/// How deeply each road class's speed collapses at full congestion.
fn congestion_depth(class: RoadClass) -> f64 {
    match class {
        RoadClass::Arterial => 0.75,
        RoadClass::Collector => 0.62,
        RoadClass::Local => 0.5,
    }
}

fn class_profile(class: RoadClass) -> CongestionProfile {
    match class {
        RoadClass::Arterial => CongestionProfile::arterial(),
        RoadClass::Collector => CongestionProfile::collector(),
        RoadClass::Local => CongestionProfile::local(),
    }
}

/// A traffic incident injected by the generative model: a contiguous
/// speed collapse on one segment. Exposed so incident-detection
/// evaluations have labelled ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Incident {
    /// Segment column the incident occurred on.
    pub segment: usize,
    /// First affected slot (inclusive).
    pub start_slot: usize,
    /// Last affected slot (inclusive).
    pub end_slot: usize,
    /// Fraction of speed removed.
    pub severity: f64,
}

/// A realized ground truth: the complete TCM plus continuous-time speed
/// lookup for the fleet simulator.
#[derive(Debug, Clone)]
pub struct GroundTruthModel {
    grid: SlotGrid,
    /// Complete speed matrix, slots × segments, km/h.
    speeds: Matrix,
    /// Injected incidents, in generation order.
    incidents: Vec<Incident>,
}

impl GroundTruthModel {
    /// Generates ground truth for every segment of `net` over `grid`.
    ///
    /// The construction is literally "low rank + spikes + noise":
    /// per-class latent congestion factors shared by all segments of the
    /// class (rank ≤ number of classes), per-segment incidents, Gaussian
    /// cell noise, then clamping.
    pub fn generate(net: &RoadNetwork, grid: SlotGrid, config: &GroundTruthConfig) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let m = grid.num_slots();
        let n = net.segment_count();

        // Daily weather: a citywide multiplicative factor per slot.
        let num_days = (grid.end_s().div_ceil(DAY_S)) as usize;
        let weather = crate::weather::WeatherSequence::generate(
            num_days.max(1),
            &config.weather,
            config.seed ^ 0xFEED,
        );
        let weather_factor: Vec<f64> =
            (0..m).map(|t| weather.speed_factor(grid.slot_start(t))).collect();

        // Latent temporal factors, one per class, sampled per slot.
        let factors: Vec<(RoadClass, Vec<f64>)> =
            [RoadClass::Arterial, RoadClass::Collector, RoadClass::Local]
                .into_iter()
                .map(|class| {
                    (class, class_profile(class).sample(grid.start_s(), grid.slot_len_s(), m))
                })
                .collect();

        let mut speeds = Matrix::zeros(m, n);
        let mut incidents = Vec::new();
        for (col, seg) in net.segments().iter().enumerate() {
            let factor =
                &factors.iter().find(|(c, _)| *c == seg.class).expect("all classes sampled").1;
            let depth = congestion_depth(seg.class);
            let coupling = (1.0 + normal(&mut rng, 0.0, config.coupling_jitter)).clamp(0.5, 1.4);
            for (t, f) in factor.iter().enumerate() {
                let congested = 1.0 - depth * coupling * f;
                speeds.set(t, col, seg.free_flow_kmh * congested * weather_factor[t]);
            }

            // Incidents: Poisson count over the window, each a contiguous
            // speed collapse.
            let days = (grid.end_s() - grid.start_s()) as f64 / DAY_S as f64;
            let expected = config.incident_rate_per_segment_day * days;
            let count = poisson(&mut rng, expected);
            for _ in 0..count {
                let start = rng.random_range(grid.start_s()..grid.end_s());
                let dur =
                    rng.random_range(config.incident_duration_s.0..=config.incident_duration_s.1);
                let severity =
                    rng.random_range(config.incident_severity.0..=config.incident_severity.1);
                let s0 = grid.slot_of(start).expect("start inside window");
                let s1 = grid.slot_of((start + dur).min(grid.end_s() - 1)).expect("clamped inside");
                for t in s0..=s1 {
                    let cur = speeds.get(t, col);
                    speeds.set(t, col, cur * (1.0 - severity));
                }
                incidents.push(Incident { segment: col, start_slot: s0, end_slot: s1, severity });
            }

            // Per-cell noise and clamping. With a reference slot length
            // configured, shorter slots are noisier (sample-mean noise
            // grows as 1/√samples ∝ 1/√slot length).
            let noise_std = match config.noise_reference_slot_s {
                Some(reference) => {
                    config.noise_std_kmh * (reference as f64 / grid.slot_len_s() as f64).sqrt()
                }
                None => config.noise_std_kmh,
            };
            for t in 0..m {
                let noisy = speeds.get(t, col) + normal(&mut rng, 0.0, noise_std);
                speeds.set(t, col, noisy.clamp(config.min_speed_kmh, seg.free_flow_kmh * 1.05));
            }
        }

        Self { grid, speeds, incidents }
    }

    /// The incidents the generator injected (labelled ground truth for
    /// incident-detection evaluations).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// The slot grid the model was generated over.
    pub fn grid(&self) -> &SlotGrid {
        &self.grid
    }

    /// The complete ground-truth TCM.
    pub fn tcm(&self) -> Tcm {
        Tcm::complete(self.speeds.clone())
    }

    /// Raw speed matrix (slots × segments, km/h).
    pub fn speeds(&self) -> &Matrix {
        &self.speeds
    }

    /// Mean flow speed of segment column `col` at absolute time `t_s`,
    /// clamping times outside the window to the nearest slot. This is
    /// what a vehicle in the flow experiences (Definition 1's uniformity
    /// assumption within a slot).
    pub fn speed_at(&self, t_s: u64, col: usize) -> f64 {
        let slot = self.grid.slot_of(t_s).unwrap_or(if t_s < self.grid.start_s() {
            0
        } else {
            self.grid.num_slots() - 1
        });
        self.speeds.get(slot, col)
    }
}

/// One segment-resolved probe observation sampled from a ground-truth
/// speed matrix — the raw material of streaming-service harnesses,
/// which bypass GPS map matching and feed segment columns directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Synthetic reporting-vehicle id (unique per sample).
    pub vehicle: u64,
    /// Absolute report timestamp in seconds.
    pub timestamp_s: u64,
    /// Segment column of the truth matrix.
    pub segment: usize,
    /// Reported speed, km/h (truth plus multiplicative jitter).
    pub speed_kmh: f64,
}

/// Parameters for [`sample_probe_stream`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStreamConfig {
    /// Absolute start of the sampled slot grid, in seconds.
    pub start_s: u64,
    /// Length of one slot (one truth-matrix row), in seconds.
    pub slot_len_s: u64,
    /// Probability that a (slot, segment) cell is covered at all.
    pub coverage: f64,
    /// Probe reports per covered cell.
    pub probes_per_cell: usize,
    /// Half-width of the uniform multiplicative speed jitter.
    pub speed_jitter: f64,
    /// RNG seed; equal seeds produce identical streams.
    pub seed: u64,
}

impl Default for ProbeStreamConfig {
    fn default() -> Self {
        Self {
            start_s: 0,
            slot_len_s: 60,
            coverage: 0.8,
            probes_per_cell: 2,
            speed_jitter: 0.05,
            seed: 1,
        }
    }
}

/// Samples a deterministic probe stream from a complete speed matrix
/// (row = slot, column = segment), e.g. [`GroundTruthModel::speeds`]:
/// each covered cell yields `probes_per_cell` reports with timestamps
/// uniform inside the slot and speeds jittered around the truth.
/// Samples are ordered slot-major (all of slot 0, then slot 1, …), so a
/// tick-driven replay can partition them by row without sorting. The
/// stream is a pure function of `(speeds, config)`.
pub fn sample_probe_stream(speeds: &Matrix, config: &ProbeStreamConfig) -> Vec<ProbeSample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let mut vehicle = 0u64;
    for slot in 0..speeds.rows() {
        let slot_start = config.start_s + slot as u64 * config.slot_len_s;
        for segment in 0..speeds.cols() {
            if rng.random_range(0.0..1.0) >= config.coverage {
                continue;
            }
            let truth = speeds.get(slot, segment);
            for _ in 0..config.probes_per_cell {
                let offset = rng.random_range(0..config.slot_len_s.max(1));
                let jitter = rng.random_range(-config.speed_jitter..=config.speed_jitter);
                out.push(ProbeSample {
                    vehicle,
                    timestamp_s: slot_start + offset,
                    segment,
                    speed_kmh: (truth * (1.0 + jitter)).max(0.5),
                });
                vehicle += 1;
            }
        }
    }
    out
}

/// Knuth's Poisson sampler; fine for the small rates used here.
fn poisson<R: RngExt + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // pathological lambda guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Svd;
    use probes::Granularity;
    use roadnet::generator::{generate_grid_city, GridCityConfig};

    fn small_model() -> (RoadNetwork, GroundTruthModel) {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 2 * DAY_S, Granularity::Min30);
        let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
        (net, model)
    }

    #[test]
    fn shape_and_bounds() {
        let (net, model) = small_model();
        assert_eq!(model.speeds().rows(), 96);
        assert_eq!(model.speeds().cols(), net.segment_count());
        for (col, seg) in net.segments().iter().enumerate() {
            for t in 0..model.speeds().rows() {
                let v = model.speeds().get(t, col);
                assert!(v >= 3.0 - 1e-9, "speed {v} below floor");
                assert!(v <= seg.free_flow_kmh * 1.05 + 1e-9, "speed {v} above free flow");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, DAY_S, Granularity::Min60);
        let cfg = GroundTruthConfig::default();
        let a = GroundTruthModel::generate(&net, grid, &cfg);
        let b = GroundTruthModel::generate(&net, grid, &cfg);
        assert_eq!(a.speeds(), b.speeds());
        let mut cfg2 = cfg.clone();
        cfg2.seed = 1234;
        let c = GroundTruthModel::generate(&net, grid, &cfg2);
        assert_ne!(a.speeds(), c.speeds());
    }

    #[test]
    fn rush_hour_slower_than_night() {
        let (net, model) = small_model();
        // Average over all segments: 18:00 slot vs 03:00 slot (Monday).
        let rush_slot = model.grid().slot_of(18 * 3600).unwrap();
        let night_slot = model.grid().slot_of(3 * 3600).unwrap();
        let n = net.segment_count();
        let rush: f64 = (0..n).map(|c| model.speeds().get(rush_slot, c)).sum::<f64>() / n as f64;
        let night: f64 = (0..n).map(|c| model.speeds().get(night_slot, c)).sum::<f64>() / n as f64;
        assert!(rush < night - 5.0, "rush {rush} vs night {night}");
    }

    #[test]
    fn effective_rank_is_low() {
        // The defining property: a week-long TCM concentrates its energy
        // in a handful of components (Fig. 4's sharp knee).
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 7 * DAY_S, Granularity::Min30);
        let cfg = GroundTruthConfig { noise_std_kmh: 1.5, ..GroundTruthConfig::default() };
        let model = GroundTruthModel::generate(&net, grid, &cfg);
        let svd = Svd::compute(model.speeds()).unwrap();
        let k90 = svd.components_for_energy(0.9);
        assert!(k90 <= 3, "90% energy needs {k90} components");
        // And well over half the *fluctuation* energy in the top 5:
        let k99 = svd.components_for_energy(0.99);
        assert!(k99 <= 20, "99% energy needs {k99} components");
    }

    #[test]
    fn incidents_create_spikes() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 2 * DAY_S, Granularity::Min15);
        let cfg = GroundTruthConfig {
            incident_rate_per_segment_day: 2.0, // force many incidents
            incident_severity: (0.7, 0.8),
            noise_std_kmh: 0.5,
            ..GroundTruthConfig::default()
        };
        let model = GroundTruthModel::generate(&net, grid, &cfg);
        // Compare against an incident-free run with the same seed: some
        // cells must be dramatically slower.
        let cfg0 = GroundTruthConfig { incident_rate_per_segment_day: 0.0, ..cfg.clone() };
        let base = GroundTruthModel::generate(&net, grid, &cfg0);
        let mut big_drops = 0;
        for (r, c, v) in model.speeds().iter() {
            if v < base.speeds().get(r, c) * 0.6 {
                big_drops += 1;
            }
        }
        assert!(big_drops > 10, "only {big_drops} incident cells");
    }

    #[test]
    fn speed_at_clamps_outside_window() {
        let (_, model) = small_model();
        let last = model.grid().end_s();
        // Outside window: clamps rather than panicking.
        let v = model.speed_at(last + 999, 0);
        assert_eq!(v, model.speeds().get(model.speeds().rows() - 1, 0));
        assert!(model.speed_at(0, 0) > 0.0);
    }

    #[test]
    fn tcm_is_complete() {
        let (_, model) = small_model();
        let tcm = model.tcm();
        assert_eq!(tcm.integrity(), 1.0);
        assert_eq!(tcm.num_slots(), model.speeds().rows());
    }

    #[test]
    fn noise_scales_inversely_with_slot_length() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let measure_noise = |gran: Granularity| {
            let grid = SlotGrid::covering(0, 2 * DAY_S, gran);
            let cfg = GroundTruthConfig {
                noise_std_kmh: 3.0,
                noise_reference_slot_s: Some(1800),
                incident_rate_per_segment_day: 0.0,
                ..GroundTruthConfig::default()
            };
            let noisy = GroundTruthModel::generate(&net, grid, &cfg);
            let clean = GroundTruthModel::generate(
                &net,
                grid,
                &GroundTruthConfig {
                    noise_std_kmh: 0.0,
                    incident_rate_per_segment_day: 0.0,
                    ..cfg
                },
            );
            // RMS of the noise component over unclamped cells.
            let mut ss = 0.0;
            let mut count = 0;
            for (t, c, v) in noisy.speeds().iter() {
                let base = clean.speeds().get(t, c);
                if v > 3.5 && base > 3.5 {
                    ss += (v - base) * (v - base);
                    count += 1;
                }
            }
            (ss / count as f64).sqrt()
        };
        let n15 = measure_noise(Granularity::Min15);
        let n30 = measure_noise(Granularity::Min30);
        let n60 = measure_noise(Granularity::Min60);
        // Reference is 30 min: 15-min noise ~ sqrt(2) x, 60-min ~ 1/sqrt(2) x.
        assert!((n30 - 3.0).abs() < 0.3, "30 min noise {n30}");
        assert!((n15 / n30 - std::f64::consts::SQRT_2).abs() < 0.15, "15/30 ratio {}", n15 / n30);
        assert!(
            (n60 / n30 - 1.0 / std::f64::consts::SQRT_2).abs() < 0.15,
            "60/30 ratio {}",
            n60 / n30
        );
    }

    #[test]
    fn weather_overlay_slows_rainy_days() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 10 * DAY_S, Granularity::Min60);
        let dry_cfg = GroundTruthConfig { noise_std_kmh: 0.0, ..GroundTruthConfig::default() };
        let wet_cfg = GroundTruthConfig {
            noise_std_kmh: 0.0,
            weather: crate::weather::WeatherConfig { rain_prob: 1.0, heavy_given_rain: 0.0 },
            ..GroundTruthConfig::default()
        };
        let dry = GroundTruthModel::generate(&net, grid, &dry_cfg);
        let wet = GroundTruthModel::generate(&net, grid, &wet_cfg);
        // Every unclamped cell on a rainy day is slower by the rain factor.
        let mut checked = 0;
        for (t, c, v) in wet.speeds().iter() {
            let dry_v = dry.speeds().get(t, c);
            if v > 3.0 + 1e-9 && dry_v < dry.speeds().get(t, c).max(dry_v) * 1.04 {
                assert!(v <= dry_v + 1e-9, "wet {v} faster than dry {dry_v}");
                checked += 1;
            }
        }
        assert!(checked > 100);
        // Citywide means differ by roughly the rain factor.
        let mean = |m: &linalg::Matrix| m.sum() / m.len() as f64;
        let ratio = mean(wet.speeds()) / mean(dry.speeds());
        assert!((ratio - 0.88).abs() < 0.04, "ratio {ratio}");
    }

    #[test]
    fn probe_stream_is_deterministic_and_in_bounds() {
        let (_, model) = small_model();
        let cfg = ProbeStreamConfig {
            start_s: 3600,
            slot_len_s: 60,
            coverage: 0.7,
            probes_per_cell: 2,
            speed_jitter: 0.05,
            seed: 42,
        };
        let a = sample_probe_stream(model.speeds(), &cfg);
        let b = sample_probe_stream(model.speeds(), &cfg);
        assert_eq!(a, b, "same seed, same stream");
        assert!(!a.is_empty());
        let mut last_slot = 0;
        for s in &a {
            assert!(s.segment < model.speeds().cols());
            let slot = ((s.timestamp_s - cfg.start_s) / cfg.slot_len_s) as usize;
            assert!(slot < model.speeds().rows(), "timestamp inside the sampled grid");
            assert!(slot >= last_slot, "slot-major ordering");
            last_slot = slot;
            let truth = model.speeds().get(slot, s.segment);
            assert!((s.speed_kmh - truth).abs() <= truth * 0.05 + 1e-9);
            assert!(s.speed_kmh > 0.0);
        }
        // Vehicle ids are unique, so dedup keys never collide by accident.
        let mut ids: Vec<u64> = a.iter().map(|s| s.vehicle).collect();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
        // Coverage roughly holds and different seeds differ.
        let cells = (model.speeds().rows() * model.speeds().cols()) as f64;
        let covered = a.len() as f64 / cfg.probes_per_cell as f64;
        assert!((covered / cells - 0.7).abs() < 0.1, "coverage {}", covered / cells);
        let c = sample_probe_stream(model.speeds(), &ProbeStreamConfig { seed: 43, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_roughly_lambda() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 0.3)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
