//! GPS observation and loss model.
//!
//! Section 1 of the paper: "when a vehicle moves through a road with
//! surrounding tall buildings (so-called urban canyons)", reports are lost
//! "because of attenuation and multipath propagation of radio signals",
//! and GPS positions/speeds carry error. This module turns a vehicle's
//! true state into what the monitoring centre actually receives.

use linalg::rng::normal;
use rand::RngExt;
use roadnet::geometry::Point;

/// GPS error and dropout parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpsConfig {
    /// Position error standard deviation per axis, metres, open sky.
    pub position_noise_std_m: f64,
    /// Position error standard deviation in urban canyons.
    pub canyon_position_noise_std_m: f64,
    /// Speed error standard deviation, km/h.
    pub speed_noise_std_kmh: f64,
    /// Probability a report is lost (GPS fix or GPRS delivery failure),
    /// open sky.
    pub dropout_prob: f64,
    /// Loss probability in urban canyons.
    pub canyon_dropout_prob: f64,
}

impl Default for GpsConfig {
    fn default() -> Self {
        Self {
            position_noise_std_m: 8.0,
            canyon_position_noise_std_m: 25.0,
            speed_noise_std_kmh: 2.0,
            dropout_prob: 0.05,
            canyon_dropout_prob: 0.45,
        }
    }
}

impl GpsConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics when a std-dev is negative or a probability is outside
    /// `[0, 1]` — configuration bugs.
    pub fn validate(&self) {
        assert!(self.position_noise_std_m >= 0.0, "negative position noise");
        assert!(self.canyon_position_noise_std_m >= 0.0, "negative canyon noise");
        assert!(self.speed_noise_std_kmh >= 0.0, "negative speed noise");
        assert!((0.0..=1.0).contains(&self.dropout_prob), "dropout prob out of range");
        assert!((0.0..=1.0).contains(&self.canyon_dropout_prob), "canyon dropout out of range");
    }

    /// Simulates one observation of a vehicle at `true_pos` moving at
    /// `true_speed_kmh` on a segment that is (or isn't) an urban canyon.
    ///
    /// Returns `None` when the report is lost; otherwise the noisy
    /// position and speed the monitoring centre receives (speed clamped
    /// to be non-negative).
    pub fn observe<R: RngExt + ?Sized>(
        &self,
        rng: &mut R,
        true_pos: Point,
        true_speed_kmh: f64,
        in_canyon: bool,
    ) -> Option<(Point, f64)> {
        let p_loss = if in_canyon { self.canyon_dropout_prob } else { self.dropout_prob };
        if rng.random_range(0.0..1.0) < p_loss {
            return None;
        }
        let pos_std =
            if in_canyon { self.canyon_position_noise_std_m } else { self.position_noise_std_m };
        let pos = Point::new(
            true_pos.x + normal(rng, 0.0, pos_std),
            true_pos.y + normal(rng, 0.0, pos_std),
        );
        let speed = (true_speed_kmh + normal(rng, 0.0, self.speed_noise_std_kmh)).max(0.0);
        Some((pos, speed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn default_validates() {
        GpsConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "dropout prob")]
    fn bad_probability_panics() {
        let cfg = GpsConfig { dropout_prob: 1.5, ..GpsConfig::default() };
        cfg.validate();
    }

    #[test]
    fn canyon_loses_more_reports() {
        let cfg = GpsConfig::default();
        let mut r = rng(1);
        let p = Point::new(0.0, 0.0);
        let n = 20_000;
        let open_received =
            (0..n).filter(|_| cfg.observe(&mut r, p, 30.0, false).is_some()).count();
        let canyon_received =
            (0..n).filter(|_| cfg.observe(&mut r, p, 30.0, true).is_some()).count();
        let open_rate = open_received as f64 / n as f64;
        let canyon_rate = canyon_received as f64 / n as f64;
        assert!((open_rate - 0.95).abs() < 0.02, "open rate {open_rate}");
        assert!((canyon_rate - 0.55).abs() < 0.02, "canyon rate {canyon_rate}");
    }

    #[test]
    fn position_noise_scales_in_canyon() {
        let cfg = GpsConfig::default();
        let mut r = rng(2);
        let p = Point::new(1000.0, 1000.0);
        let errors = |canyon: bool, r: &mut rand::rngs::StdRng| -> f64 {
            let mut sum = 0.0;
            let mut count = 0;
            for _ in 0..20_000 {
                if let Some((obs, _)) = cfg.observe(r, p, 30.0, canyon) {
                    sum += obs.distance(p);
                    count += 1;
                }
            }
            sum / count as f64
        };
        let open = errors(false, &mut r);
        let canyon = errors(true, &mut r);
        assert!(canyon > 2.0 * open, "canyon {canyon} vs open {open}");
    }

    #[test]
    fn speed_never_negative_and_unbiased() {
        let cfg = GpsConfig::default();
        let mut r = rng(3);
        let mut sum = 0.0;
        let mut count = 0;
        for _ in 0..20_000 {
            if let Some((_, s)) = cfg.observe(&mut r, Point::new(0.0, 0.0), 40.0, false) {
                assert!(s >= 0.0);
                sum += s;
                count += 1;
            }
        }
        let mean = sum / count as f64;
        assert!((mean - 40.0).abs() < 0.2, "mean speed {mean}");
    }

    #[test]
    fn zero_noise_zero_dropout_is_transparent() {
        let cfg = GpsConfig {
            position_noise_std_m: 0.0,
            canyon_position_noise_std_m: 0.0,
            speed_noise_std_kmh: 0.0,
            dropout_prob: 0.0,
            canyon_dropout_prob: 0.0,
        };
        let mut r = rng(4);
        let p = Point::new(7.0, 9.0);
        let (obs, s) = cfg.observe(&mut r, p, 33.0, true).unwrap();
        assert_eq!(obs, p);
        assert_eq!(s, 33.0);
    }
}
