//! Scenario presets bundling a city, a ground truth, a fleet, and GPS
//! parameters into one reproducible simulation.

use crate::fleet::{simulate_fleet, FleetConfig};
use crate::gps::GpsConfig;
use crate::ground_truth::{GroundTruthConfig, GroundTruthModel};
use probes::{Granularity, ProbeReport, SlotGrid, Tcm};
use roadnet::generator::{generate_grid_city, GridCityConfig};
use roadnet::RoadNetwork;

/// A complete simulation scenario.
///
/// The two headline presets substitute for the paper's datasets:
///
/// * [`ScenarioConfig::shanghai_like`] — dense coverage: a 2,000-taxi
///   fleet (scalable) on the 39 × 39 city.
/// * [`ScenarioConfig::shenzhen_like`] — the same pipeline with a larger
///   city, relatively sparser coverage of the studied core, and noisier
///   GPS, giving uniformly higher estimation error as in Fig. 12.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScenarioConfig {
    /// Human-readable scenario name.
    pub name: String,
    /// City generator parameters.
    pub city: GridCityConfig,
    /// Ground-truth traffic model parameters.
    pub ground: GroundTruthConfig,
    /// Fleet behaviour parameters.
    pub fleet: FleetConfig,
    /// GPS noise/loss parameters.
    pub gps: GpsConfig,
    /// Observation window length, seconds.
    pub duration_s: u64,
    /// Time granularity for the ground-truth/assembled TCMs.
    pub granularity: Granularity,
}

impl ScenarioConfig {
    /// Tiny scenario for unit tests and the quickstart example: a 5 × 5
    /// city, 25 taxis, 6 hours.
    pub fn small_test() -> Self {
        Self {
            name: "small-test".into(),
            city: GridCityConfig::small_test(),
            ground: GroundTruthConfig::default(),
            fleet: FleetConfig { fleet_size: 25, ..FleetConfig::default() },
            gps: GpsConfig::default(),
            duration_s: 6 * 3600,
            granularity: Granularity::Min15,
        }
    }

    /// Shanghai-like scenario: 39 × 39 city (5,928 segments), 2,000
    /// taxis, 24 hours at 15-minute granularity — the configuration of
    /// the paper's Section 2.3 integrity study.
    pub fn shanghai_like() -> Self {
        Self {
            name: "shanghai-like".into(),
            city: GridCityConfig::shanghai_like(),
            // Noise and incident rates are calibrated so that the
            // "unpredictable randomness" floor of the estimation error
            // sits where the paper measures it (≈15–20% NMAE even at
            // high integrity — Section 4.3's discussion).
            ground: GroundTruthConfig {
                seed: 2007,
                noise_std_kmh: 5.5,
                noise_reference_slot_s: Some(1800),
                incident_rate_per_segment_day: 0.15,
                ..GroundTruthConfig::default()
            },
            fleet: FleetConfig { fleet_size: 2000, seed: 41, ..FleetConfig::default() },
            gps: GpsConfig::default(),
            duration_s: 24 * 3600,
            granularity: Granularity::Min15,
        }
    }

    /// Shenzhen-like scenario: larger city, 8,000 taxis spread thinner
    /// over it, noisier GPS. At equal settings the studied core sees
    /// fewer probes per segment than the Shanghai-like scenario, matching
    /// the paper's observation that "probe taxis in Shanghai are more
    /// densely distributed over the subnetwork under investigation".
    pub fn shenzhen_like() -> Self {
        Self {
            name: "shenzhen-like".into(),
            city: GridCityConfig::shenzhen_like(),
            ground: GroundTruthConfig {
                seed: 518,
                noise_std_kmh: 7.0,
                noise_reference_slot_s: Some(1800),
                coupling_jitter: 0.22,
                incident_rate_per_segment_day: 0.2,
                ..GroundTruthConfig::default()
            },
            fleet: FleetConfig { fleet_size: 8000, seed: 86, ..FleetConfig::default() },
            gps: GpsConfig {
                speed_noise_std_kmh: 3.0,
                dropout_prob: 0.08,
                canyon_dropout_prob: 0.5,
                ..GpsConfig::default()
            },
            duration_s: 24 * 3600,
            granularity: Granularity::Min15,
        }
    }

    /// Returns a copy with a different fleet size (Table 1 sweeps 500,
    /// 1,000, 2,000 vehicles).
    pub fn with_fleet_size(mut self, fleet_size: usize) -> Self {
        self.fleet.fleet_size = fleet_size;
        self
    }

    /// Returns a copy with a different granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// The slot grid implied by the duration and granularity.
    pub fn slot_grid(&self) -> SlotGrid {
        SlotGrid::covering(0, self.duration_s, self.granularity)
    }

    /// Runs the full simulation: generate city → ground truth → fleet →
    /// reports.
    pub fn run(&self) -> SimulationOutput {
        let network = generate_grid_city(&self.city);
        let grid = self.slot_grid();
        let model = GroundTruthModel::generate(&network, grid, &self.ground);
        let reports = simulate_fleet(&network, &model, self.duration_s, &self.fleet, &self.gps);
        let ground_truth = model.tcm();
        SimulationOutput { network, model, ground_truth, reports, grid }
    }
}

/// Everything a downstream experiment needs from one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutput {
    /// The generated road network.
    pub network: RoadNetwork,
    /// The generative model (for continuous-time speed lookup).
    pub model: GroundTruthModel,
    /// Complete ground-truth TCM over all segments.
    pub ground_truth: Tcm,
    /// Delivered probe reports, sorted by timestamp.
    pub reports: Vec<ProbeReport>,
    /// The slot grid shared by ground truth and any assembled TCM.
    pub grid: SlotGrid,
}

/// Indices of the `count` segments closest to the city centre — how the
/// experiments pick their "downtown subnetwork" (221 segments in
/// Shanghai, 198 in Shenzhen; Section 4.1 chooses regions "close to city
/// centers" because they are well covered).
///
/// # Panics
///
/// Panics when `count > net.segment_count()`.
pub fn central_segments(net: &RoadNetwork, count: usize) -> Vec<usize> {
    assert!(count <= net.segment_count(), "requested more segments than exist");
    let bb = net.bounding_box().expect("non-empty network");
    let cx = (bb.min.x + bb.max.x) / 2.0;
    let cy = (bb.min.y + bb.max.y) / 2.0;
    let centre = roadnet::geometry::Point::new(cx, cy);
    let mut with_dist: Vec<(usize, f64)> = net
        .segment_ids()
        .map(|sid| {
            let mid = net.segment_point(sid, 0.5);
            (sid.index(), mid.distance(centre))
        })
        .collect();
    with_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances").then(a.0.cmp(&b.0)));
    let mut out: Vec<usize> = with_dist.into_iter().take(count).map(|(i, _)| i).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probes::tcm::build_tcm_from_reports;
    use roadnet::matching::SegmentIndex;

    #[test]
    fn small_scenario_runs_end_to_end() {
        let out = ScenarioConfig::small_test().run();
        assert_eq!(out.ground_truth.num_slots(), 24); // 6 h at 15 min
        assert_eq!(out.ground_truth.num_segments(), 80);
        assert!(!out.reports.is_empty());
        assert_eq!(out.ground_truth.integrity(), 1.0);
        // Assembled TCM is sparser than ground truth.
        let index = SegmentIndex::build(&out.network, 100.0);
        let tcm = build_tcm_from_reports(&out.reports, &out.network, &index, &out.grid, 60.0);
        let integ = tcm.integrity();
        assert!(integ > 0.0 && integ < 1.0, "integrity {integ}");
    }

    #[test]
    fn with_fleet_size_and_granularity() {
        let s =
            ScenarioConfig::small_test().with_fleet_size(3).with_granularity(Granularity::Min60);
        assert_eq!(s.fleet.fleet_size, 3);
        assert_eq!(s.slot_grid().num_slots(), 6);
    }

    #[test]
    fn presets_have_expected_scale() {
        let sh = ScenarioConfig::shanghai_like();
        assert_eq!(sh.city.expected_segments(), 5928);
        assert_eq!(sh.fleet.fleet_size, 2000);
        let sz = ScenarioConfig::shenzhen_like();
        assert!(sz.city.expected_segments() > sh.city.expected_segments());
        assert_eq!(sz.fleet.fleet_size, 8000);
    }

    #[test]
    fn central_segments_are_central_and_sorted() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let picked = central_segments(&net, 10);
        assert_eq!(picked.len(), 10);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        // All picked midpoints closer to the centre than the worst
        // non-picked one.
        let bb = net.bounding_box().unwrap();
        let centre =
            roadnet::geometry::Point::new((bb.min.x + bb.max.x) / 2.0, (bb.min.y + bb.max.y) / 2.0);
        let d = |i: usize| net.segment_point(roadnet::SegmentId(i as u32), 0.5).distance(centre);
        let max_picked = picked.iter().map(|&i| d(i)).fold(0.0, f64::max);
        let min_unpicked = (0..net.segment_count())
            .filter(|i| !picked.contains(i))
            .map(d)
            .fold(f64::INFINITY, f64::min);
        assert!(max_picked <= min_unpicked + 1e-9);
    }

    #[test]
    #[should_panic(expected = "more segments")]
    fn central_segments_overflow_panics() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        central_segments(&net, 1000);
    }
}
