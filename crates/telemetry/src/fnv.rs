//! Incremental FNV-1a (64-bit) content hashing.
//!
//! The workspace's deterministic fingerprint: the chaos harness hashes
//! estimates, windows, and fault logs with it; the load generator hashes
//! the offered stream; and the streaming service derives per-report
//! trace IDs from it. Chosen for being trivially portable and
//! dependency-free; collision resistance is irrelevant here (the hashes
//! compare *runs of the same seed*, not adversarial inputs).
//!
//! Lives in `telemetry` (the workspace's lowest-level observability
//! crate) so both `traffic_cs` and `chaos` can share one
//! implementation; `chaos::Fnv` re-exports it for compatibility.

/// Incremental FNV-1a (64-bit) hasher.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "empty input = offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv::new();
        h2.write(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }
}
