//! Minimal JSON tree, encoder, and recursive-descent parser.
//!
//! Powers the JSONL sink, the run-manifest writer in `cs-bench`, and the
//! `validate-jsonl` CI gate. Covers exactly the JSON this workspace
//! emits: finite numbers, UTF-8 strings with standard escapes, arrays,
//! and objects (insertion-ordered). Non-finite floats encode as `null`,
//! matching what serde_json would do.

/// A parsed or to-be-encoded JSON value.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on encode.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object (`None` for non-objects and missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Encodes to a compact single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fractional part so
                    // counters round-trip as integers.
                    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number '{text}'") })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("als.sweep".into())),
            ("elapsed_us".into(), Json::Num(12.75)),
            ("tags".into(), Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null])),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::Str("v\"x\n".into()))])),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(42.5).encode(), "42.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Json::parse(r#"{"type":"span","n":3}"#).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("span"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("tab\there \"quoted\" \\ \u{1F600} \u{0001}".into());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }
}
