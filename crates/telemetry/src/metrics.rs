//! Process-global counters, gauges, and histograms.
//!
//! Metric handles are `Arc`s into a global registry keyed by name:
//! [`counter`], [`gauge`], and [`histogram`] return the existing metric
//! or create it. Updates are lock-free atomics, so hot loops can hold a
//! handle and bump it without contention beyond the cache line.
//! [`snapshot`] drains the registry into per-metric records for the
//! sinks (called by [`crate::shutdown`]).

use crate::sink::{Record, RecordKind};
use crate::{dispatch, unix_ms, Field, Level, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins measurement.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets. Bucket `i` covers
/// `[2^(i - SUB_UNIT_BUCKETS - 1), 2^(i - SUB_UNIT_BUCKETS))` with the
/// first and last buckets absorbing the tails, giving useful resolution
/// from ~1/512 up to ~2^54 in whatever unit the caller observes
/// (microseconds for the built-in timings).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// How many buckets sit below 1.0 (see [`HISTOGRAM_BUCKETS`]).
const SUB_UNIT_BUCKETS: i32 = 9;

/// A log₂-bucketed histogram over non-negative `f64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Histogram {
    /// Index of the bucket an observation falls into: `log₂(v)` shifted
    /// so values below `2^-9` land in bucket 0 and the top bucket
    /// absorbs everything beyond the range. Non-positive and non-finite
    /// values clamp into the edge buckets.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        if v.is_infinite() {
            return HISTOGRAM_BUCKETS - 1;
        }
        let idx = v.log2().floor() as i32 + SUB_UNIT_BUCKETS + 1;
        idx.clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i` (edge
    /// buckets extend to 0 and infinity).
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        let lo = if i == 0 { 0.0 } else { 2f64.powi(i as i32 - SUB_UNIT_BUCKETS - 1) };
        let hi = if i == HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            2f64.powi(i as i32 - SUB_UNIT_BUCKETS)
        };
        (lo, hi)
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_float(&self.sum_bits, |cur| cur + v);
        update_float(&self.min_bits, |cur| cur.min(v));
        update_float(&self.max_bits, |cur| cur.max(v));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observation (`None` before the first observe).
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Largest observation (`None` before the first observe).
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, compactly
    /// describing the distribution.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let c = self.bucket_count(i);
                (c > 0).then(|| (Self::bucket_bounds(i).1, c))
            })
            .collect()
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples —
    /// the full bounds a consumer needs to re-derive quantiles from a
    /// flushed snapshot.
    pub fn nonzero_bucket_bounds(&self) -> Vec<(f64, f64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let c = self.bucket_count(i);
                (c > 0).then(|| {
                    let (lo, hi) = Self::bucket_bounds(i);
                    (lo, hi, c)
                })
            })
            .collect()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation inside the log₂ bucket holding the target rank.
    ///
    /// The continuous rank `q·count` is located in the cumulative bucket
    /// counts; the value is interpolated between the bucket's bounds at
    /// the rank's fractional position, then clamped to the observed
    /// `[min, max]` so the open-ended edge buckets (`[0, 2⁻⁹)` and
    /// `[2⁵⁴, ∞)`) cannot produce a value outside the data.
    ///
    /// Returns `None` before the first observation. The estimate is
    /// monotone in `q`, exact at `q = 0` (`min`) and `q = 1` (`max`),
    /// and within one bucket width (a factor of 2) everywhere else.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let (min, max) = (self.min()?, self.max()?);
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(min);
        }
        let target = q * count as f64;
        let mut cum = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let c = self.bucket_count(i);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = (target - cum as f64) / c as f64;
                let v = if hi.is_finite() { lo + frac * (hi - lo) } else { max };
                return Some(v.clamp(min, max));
            }
            cum += c;
        }
        // Concurrent observes can leave `count` ahead of the bucket sum
        // for a moment; the largest observation is the right answer.
        Some(max)
    }

    /// Discards every observation, returning the histogram to its
    /// freshly-created state. Callers that keep a long-lived handle can
    /// draw a measurement boundary (e.g. the load generator resetting at
    /// the warmup/measurement edge) without re-registering the metric.
    /// Not atomic with respect to concurrent `observe` calls; reset at
    /// quiescent points.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// CAS loop for float-valued atomics (sum/min/max).
fn update_float(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let _ = bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        Some(f(f64::from_bits(cur)).to_bits())
    });
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns (creating on first use) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = registry().lock().expect("metric registry poisoned");
    match reg.entry(name.to_string()).or_insert_with(|| Metric::Counter(Arc::default())) {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric '{name}' already registered with a different kind"),
    }
}

/// Returns (creating on first use) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = registry().lock().expect("metric registry poisoned");
    match reg.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::default())) {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric '{name}' already registered with a different kind"),
    }
}

/// Returns (creating on first use) the histogram named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry().lock().expect("metric registry poisoned");
    match reg.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Arc::default())) {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric '{name}' already registered with a different kind"),
    }
}

/// Point-in-time copy of one metric, ready to dispatch to the sinks.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: String,
    /// Which record type this flushes as.
    pub kind: RecordKind,
    /// The metric's state as structured fields.
    pub fields: Vec<Field>,
}

impl MetricSnapshot {
    /// Sends this snapshot to every registered sink as one record.
    pub(crate) fn dispatch(&self) {
        dispatch(&Record {
            kind: self.kind,
            level: Level::Info,
            name: &self.name,
            span_id: None,
            parent_id: None,
            elapsed_ns: None,
            fields: &self.fields,
            ts_ms: unix_ms(),
        });
    }

    /// Appends this metric in Prometheus text exposition format.
    ///
    /// Counters and gauges become one `# TYPE` header plus one sample.
    /// Histograms are rendered as a Prometheus `summary` (the quantiles
    /// are already computed server-side): `{quantile="0.5|0.99|0.999"}`
    /// samples plus `_sum` and `_count`. Dotted names are sanitized to
    /// the Prometheus charset (`serve.tick_us` → `serve_tick_us`).
    ///
    /// Shared by [`expose_text`] (live registry) and
    /// `cs-traffic-cli inspect --expose` (snapshots re-parsed from a
    /// metrics JSONL), so both render byte-identically.
    pub fn expose_text_into(&self, out: &mut String) {
        let name = sanitize_metric_name(&self.name);
        let field = |key: &str| self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| field(key).map_or_else(|| "0".to_string(), fmt_sample);
        match self.kind {
            RecordKind::Counter => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", num("value")));
            }
            RecordKind::Gauge => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", num("value")));
            }
            RecordKind::Histogram => {
                out.push_str(&format!(
                    "# TYPE {name} summary\n\
                     {name}{{quantile=\"0.5\"}} {}\n\
                     {name}{{quantile=\"0.99\"}} {}\n\
                     {name}{{quantile=\"0.999\"}} {}\n\
                     {name}_sum {}\n\
                     {name}_count {}\n",
                    num("p50"),
                    num("p99"),
                    num("p999"),
                    num("sum"),
                    num("count"),
                ));
            }
            // Spans/events/traces are not metrics; nothing to expose.
            _ => {}
        }
    }
}

/// Maps a dotted metric name onto the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        // A leading digit keeps the digit behind a '_' prefix.
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// One Prometheus sample value. Integral floats print without a
/// fraction (`42`, not `42.0`) so live and JSONL-round-tripped
/// snapshots agree; non-finite values use the Prometheus spellings.
fn fmt_sample(v: &Value) -> String {
    match v {
        Value::Float(f) if f.is_nan() => "NaN".to_string(),
        Value::Float(f) if *f == f64::INFINITY => "+Inf".to_string(),
        Value::Float(f) if *f == f64::NEG_INFINITY => "-Inf".to_string(),
        other => other.to_string(),
    }
}

/// Renders every registered metric, in name order, in Prometheus text
/// exposition format — the pull-based scrape surface of the exposition
/// plane (`cs-traffic-cli inspect --expose` renders the same format from
/// a flushed JSONL).
pub fn expose_text() -> String {
    let mut out = String::new();
    for snap in snapshot() {
        snap.expose_text_into(&mut out);
    }
    out
}

/// Snapshots every registered metric, in name order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().expect("metric registry poisoned");
    reg.iter()
        .map(|(name, metric)| match metric {
            Metric::Counter(c) => MetricSnapshot {
                name: name.clone(),
                kind: RecordKind::Counter,
                fields: vec![("value".into(), Value::UInt(c.get()))],
            },
            Metric::Gauge(g) => MetricSnapshot {
                name: name.clone(),
                kind: RecordKind::Gauge,
                fields: vec![("value".into(), Value::Float(g.get()))],
            },
            Metric::Histogram(h) => {
                // `lo:hi:count` per non-empty bucket — both bounds, so a
                // consumer of the flushed JSONL can re-derive quantiles
                // without knowing the bucketing scheme.
                let buckets = h
                    .nonzero_bucket_bounds()
                    .iter()
                    .map(|(lo, hi, c)| format!("{lo}:{hi}:{c}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                MetricSnapshot {
                    name: name.clone(),
                    kind: RecordKind::Histogram,
                    fields: vec![
                        ("count".into(), Value::UInt(h.count())),
                        ("sum".into(), Value::Float(h.sum())),
                        ("min".into(), Value::Float(h.min().unwrap_or(0.0))),
                        ("max".into(), Value::Float(h.max().unwrap_or(0.0))),
                        ("p50".into(), Value::Float(h.quantile(0.50).unwrap_or(0.0))),
                        ("p99".into(), Value::Float(h.quantile(0.99).unwrap_or(0.0))),
                        ("p999".into(), Value::Float(h.quantile(0.999).unwrap_or(0.0))),
                        ("buckets".into(), Value::Str(buckets)),
                    ],
                }
            }
        })
        .collect()
}

/// Empties the registry (test-only; see [`crate::reset_for_tests`]).
pub(crate) fn clear_registry() {
    registry().lock().expect("metric registry poisoned").clear();
}
