//! Zero-dependency observability for the cs-traffic workspace.
//!
//! The completion pipeline's hot loops (ALS sweeps, GA generations, CV
//! folds, workpool fan-outs) are instrumented with three primitives:
//!
//! * **spans** — hierarchical wall-clock timings with structured fields,
//!   created by [`span`] and emitted when dropped;
//! * **events** — one-shot structured `key=value` records, emitted by
//!   [`event`] (or the allocation-free guard pattern `if enabled(..)`);
//! * **metrics** — process-global [`counter`]s, [`gauge`]s, and
//!   [`histogram`]s, snapshotted into the sinks by [`shutdown`].
//!
//! Records flow through a pluggable [`Sink`] API; two sinks ship with
//! the crate: a leveled pretty-printer to stderr ([`PrettySink`]) and a
//! machine-readable JSON-lines writer ([`JsonlSink`]). Binaries wire
//! both through [`init`] from `--log-level` / `--metrics-out` flags.
//!
//! Disabled-by-default instrumentation is near-free: [`enabled`] is a
//! single relaxed atomic load, [`span`] returns an inert handle without
//! allocating when the level is filtered out, and `record` on an inert
//! span is a no-op. Anything more expensive than passing an
//! already-computed scalar belongs behind `span.is_enabled()` /
//! `enabled(level)`.
//!
//! Like the rest of the workspace (see `workpool`), the crate is
//! hand-rolled with zero external dependencies — no `tracing`, no `log`,
//! no `serde_json` — so it builds in the vendored/offline environment.

pub mod flight;
pub mod fnv;
pub mod json;
pub mod metrics;
pub mod sink;
mod span;

pub use fnv::Fnv;
pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram, MetricSnapshot};
pub use sink::{CaptureSink, JsonlSink, PrettySink, Record, RecordKind, Sink};
pub use span::{span, Span};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Verbosity levels, from fully silent to per-item tracing.
///
/// Matches the CLI surface `--log-level <off|error|info|debug|trace>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum Level {
    /// No records emitted at all (the default).
    #[default]
    Off = 0,
    /// Unrecoverable or surprising failures only.
    Error = 1,
    /// Pipeline-stage summaries (one record per completion / GA run).
    Info = 2,
    /// Per-iteration records (ALS sweeps, GA generations, CV folds,
    /// workpool fan-outs).
    Debug = 3,
    /// Everything, including per-item detail.
    Trace = 4,
}

impl Level {
    /// Lowercase name as used by the CLI flag and the JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level '{other}' (off|error|info|debug|trace)")),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured field value. Kept deliberately scalar: nested data goes
/// into separate fields or separate records.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counts, indices).
    UInt(u64),
    /// Floating-point measurement.
    Float(f64),
    /// Free-form text (reasons, enum names, compact lists).
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::UInt(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $cast:ty),+ $(,)?) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $cast)
            }
        }
    )+};
}

value_from!(
    bool => Bool as bool,
    i32 => Int as i64,
    i64 => Int as i64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
    f32 => Float as f64,
    f64 => Float as f64,
);

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Field key: `&'static str` in the common case, owned for dynamic names
/// (e.g. per-worker counters).
pub type Key = std::borrow::Cow<'static, str>;

/// One structured `key = value` pair.
pub type Field = (Key, Value);

/// Current maximum level, stored as its `u8` discriminant. `Off` (0)
/// disables everything, which is the default.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Whether process-global metrics are being collected.
static METRICS_ON: AtomicBool = AtomicBool::new(false);

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    static SINKS: OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Sets the process-wide maximum level. Records above it (and all
/// records while `Off`) are dropped before construction.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current maximum level.
pub fn level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Info,
        3 => Level::Debug,
        4 => Level::Trace,
        _ => Level::Off,
    }
}

/// Whether a record at `level` would be emitted — one relaxed atomic
/// load, the guard that keeps disabled instrumentation near-free.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    level as u8 <= max && level != Level::Off
}

/// Turns metric collection on or off. Off (the default) makes
/// [`metrics_enabled`]-guarded call sites skip their counter updates.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ON.store(on, Ordering::Relaxed);
}

/// Whether metrics are being collected (one relaxed atomic load).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Registers an additional sink. Every record at or below the global
/// level fans out to all registered sinks.
pub fn add_sink(sink: Arc<dyn Sink>) {
    sinks().write().expect("sink registry poisoned").push(sink);
}

/// Removes all sinks (used by tests and [`shutdown`]).
pub fn clear_sinks() {
    sinks().write().expect("sink registry poisoned").clear();
}

/// Emits a record to every registered sink. Callers are expected to have
/// checked [`enabled`] already; this only does the fan-out.
pub(crate) fn dispatch(record: &Record<'_>) {
    let guard = sinks().read().expect("sink registry poisoned");
    for sink in guard.iter() {
        sink.emit(record);
    }
}

/// Milliseconds since the Unix epoch, the `ts_ms` of every record.
pub(crate) fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Emits a one-shot structured event. The fields vector is only worth
/// building when [`enabled`]`(level)` — use the [`tele_event!`] macro or
/// an explicit guard so disabled telemetry stays free.
pub fn event(level: Level, name: &str, fields: Vec<Field>) {
    if !enabled(level) {
        return;
    }
    dispatch(&Record {
        kind: RecordKind::Event,
        level,
        name,
        span_id: None,
        parent_id: span::current_span_id(),
        elapsed_ns: None,
        fields: &fields,
        ts_ms: unix_ms(),
    });
}

/// Emits a causal-trace record (kind `trace`, level `Trace`) for one
/// probe report stage. Same contract as [`event`]: callers guard with
/// [`enabled`]`(Level::Trace)` before building the fields vector so
/// disabled tracing stays allocation-free.
pub fn trace_event(name: &str, fields: Vec<Field>) {
    if !enabled(Level::Trace) {
        return;
    }
    dispatch(&Record {
        kind: RecordKind::Trace,
        level: Level::Trace,
        name,
        span_id: None,
        parent_id: span::current_span_id(),
        elapsed_ns: None,
        fields: &fields,
        ts_ms: unix_ms(),
    });
}

/// Emits a structured event, constructing its fields only when the level
/// is enabled:
///
/// ```
/// telemetry::tele_event!(telemetry::Level::Debug, "als.sweep", "objective" => 1.5);
/// ```
#[macro_export]
macro_rules! tele_event {
    ($level:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::event(
                $level,
                $name,
                vec![$(($crate::Key::from($k), $crate::Value::from($v))),*],
            );
        }
    };
}

/// Everything [`init`] needs to wire the telemetry layer from CLI flags.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Maximum level for the stderr pretty-printer (`Off` = no sink).
    pub level: Level,
    /// Path for the JSON-lines sink; also turns metric collection on so
    /// [`shutdown`] can append the metric snapshot.
    pub metrics_out: Option<std::path::PathBuf>,
}

/// Installs the built-in sinks per `config`: a [`PrettySink`] on stderr
/// when `level > Off`, and a [`JsonlSink`] (plus metric collection) when
/// `metrics_out` is set. The global level becomes the maximum the
/// installed sinks need.
///
/// # Errors
///
/// Propagates the I/O error when the JSONL file cannot be created.
pub fn init(config: &TelemetryConfig) -> std::io::Result<()> {
    if config.level > Level::Off {
        add_sink(Arc::new(PrettySink::to_stderr(config.level)));
    }
    let mut effective = config.level;
    if let Some(path) = &config.metrics_out {
        add_sink(Arc::new(JsonlSink::create(path)?));
        set_metrics_enabled(true);
        // The JSONL sink records everything the spans produce; give it
        // at least debug-level detail so per-sweep/per-generation spans
        // land in the file even when stderr stays quiet.
        effective = effective.max(Level::Debug);
    }
    set_level(effective);
    install_panic_flush_hook();
    Ok(())
}

/// Chains a panic hook that dumps the flight recorder (if installed) and
/// flushes every sink, so a panicking tick cannot truncate the JSONL
/// output mid-record or lose the flight ring. Installed once per
/// process; the previous hook (the default backtrace printer) still runs
/// first.
pub fn install_panic_flush_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            flight::dump_on_panic();
            flush_sinks();
        }));
    });
}

/// Flushes every registered sink without snapshotting metrics — the
/// panic-path sibling of [`shutdown`] (a metric snapshot mid-panic would
/// interleave with whatever the process was writing).
pub fn flush_sinks() {
    let guard = sinks().read().expect("sink registry poisoned");
    for sink in guard.iter() {
        sink.flush();
    }
}

/// Flushes the metric registry into the sinks (one record per metric)
/// and flushes the sinks themselves. Call once before process exit.
pub fn shutdown() {
    if metrics_enabled() {
        for snapshot in metrics::snapshot() {
            snapshot.dispatch();
        }
    }
    flush_sinks();
}

/// Resets every piece of global state (level, metrics, sinks, registry).
/// Test-only escape hatch: the globals otherwise accumulate across tests
/// in one process.
pub fn reset_for_tests() {
    set_level(Level::Off);
    set_metrics_enabled(false);
    clear_sinks();
    metrics::clear_registry();
    flight::uninstall();
}
