//! CI gate for telemetry output: checks that every line of a metrics
//! JSONL file is parseable JSON carrying the expected top-level keys,
//! that histogram snapshots carry well-formed `lo:hi:count` bucket
//! triples, and (optionally) that a run manifest or a
//! `cs-traffic-bench-serve/v1|v2` load-test artifact parses with its
//! required keys (v2 adds the solve-path counters — cache hits,
//! incremental vs full solves, rows resolved — and the `scale`
//! latency-vs-grid-size curve).
//!
//! ```text
//! validate-jsonl [--serve BENCH_serve.json] <metrics.jsonl> [run_manifest.json]
//! validate-jsonl --serve BENCH_serve.json
//! validate-jsonl --flight flight_dump.jsonl
//! ```
//!
//! `--flight` checks a `cs-traffic-flight/v1` flight-recorder dump:
//! the header line, strictly increasing `seq` numbers, well-formed
//! trace records (16-hex `trace` id plus a `stage`), and that every
//! trace admitted into the window also reached a terminal stage
//! (`solved`, `degraded`, or `checkpointed`) inside the dump.
//!
//! Exits non-zero with a line-precise message on the first violation.

use std::collections::{BTreeMap, BTreeSet};
use telemetry::json::Json;

const KNOWN_TYPES: &[&str] = &["span", "event", "counter", "gauge", "histogram", "trace"];
const REQUIRED_RECORD_KEYS: &[&str] = &["type", "level", "name", "ts_ms"];
const REQUIRED_MANIFEST_KEYS: &[&str] =
    &["schema", "command", "git_rev", "threads", "quick", "experiments", "created_unix_ms"];

fn fail(message: String) -> ! {
    eprintln!("validate-jsonl: {message}");
    std::process::exit(1);
}

fn validate_jsonl(path: &str) -> usize {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let mut records = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line)
            .unwrap_or_else(|e| fail(format!("{path}:{}: not valid JSON: {e}", lineno + 1)));
        let Json::Obj(_) = value else {
            fail(format!("{path}:{}: line is not a JSON object", lineno + 1));
        };
        for key in REQUIRED_RECORD_KEYS {
            if value.get(key).is_none() {
                fail(format!("{path}:{}: missing required key '{key}'", lineno + 1));
            }
        }
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{path}:{}: 'type' is not a string", lineno + 1)));
        if !KNOWN_TYPES.contains(&ty) {
            fail(format!("{path}:{}: unknown record type '{ty}'", lineno + 1));
        }
        if value.get("ts_ms").and_then(Json::as_num).is_none() {
            fail(format!("{path}:{}: 'ts_ms' is not a number", lineno + 1));
        }
        if ty == "histogram" {
            validate_buckets(path, lineno + 1, &value);
        }
        records += 1;
    }
    if records == 0 {
        fail(format!("{path}: no records emitted"));
    }
    records
}

/// Histogram snapshots encode non-empty buckets as space-separated
/// `lo:hi:count` triples (hi = `inf` in the top bucket) so downstream
/// tooling can re-derive quantiles; reject anything else.
fn validate_buckets(path: &str, lineno: usize, value: &Json) {
    let Some(buckets) = value.get("buckets") else {
        return; // empty histograms omit the field
    };
    let Some(buckets) = buckets.as_str() else {
        fail(format!("{path}:{lineno}: 'buckets' is not a string"));
    };
    for triple in buckets.split_whitespace() {
        let parts: Vec<&str> = triple.split(':').collect();
        let ok = parts.len() == 3
            && parts[0].parse::<f64>().is_ok()
            && (parts[1] == "inf" || parts[1].parse::<f64>().is_ok())
            && parts[2].parse::<u64>().is_ok();
        if !ok {
            fail(format!("{path}:{lineno}: malformed bucket triple '{triple}' (want lo:hi:count)"));
        }
    }
}

/// Solve-path counters the v2 serve artifact splits out of `solves`:
/// cache hits/misses plus the incremental-vs-full-sweep accounting.
const SOLVE_PATH_COUNTERS: &[&str] = &[
    "solve_cache_hits",
    "solve_cache_misses",
    "incremental_solves",
    "full_solves",
    "rows_resolved",
];

/// Required shape of the `cs-traffic-bench-serve/v1|v2|v3` load-test
/// artifact: the schema marker, the searched rate, and a best leg with
/// full quantile sets, counters, and the determinism witness hash. The
/// v2 schema additionally carries the solve-path counters
/// ([`SOLVE_PATH_COUNTERS`]) in every counter block and a `scale`
/// array (the latency-vs-grid-size curve, possibly empty). The v3
/// schema adds a `socket` section (the socket-transport leg with
/// client-observed e2e quantiles and the daemon's transport counters,
/// or null when the run was in-process only).
fn validate_serve(path: &str) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let value =
        Json::parse(&content).unwrap_or_else(|e| fail(format!("{path}: not valid JSON: {e}")));
    let (v2, v3) = match value.get("schema").and_then(Json::as_str) {
        Some("cs-traffic-bench-serve/v1") => (false, false),
        Some("cs-traffic-bench-serve/v2") => (true, false),
        Some("cs-traffic-bench-serve/v3") => (true, true),
        Some(other) => fail(format!("{path}: unsupported serve schema '{other}'")),
        None => fail(format!("{path}: missing 'schema'")),
    };
    for key in ["git_rev", "seed", "threads", "quick", "grid", "search_legs"] {
        if value.get(key).is_none() {
            fail(format!("{path}: missing required key '{key}'"));
        }
    }
    if value.get("max_sustainable_rate").and_then(Json::as_num).is_none() {
        fail(format!("{path}: 'max_sustainable_rate' is not a number"));
    }
    let Some(leg) = value.get("leg") else {
        fail(format!("{path}: missing 'leg'"));
    };
    for key in ["offered_rate", "achieved_rate", "drop_rate", "degrade_rate", "wall_s"] {
        if leg.get(key).and_then(Json::as_num).is_none() {
            fail(format!("{path}: leg.{key} is not a number"));
        }
    }
    for hist in ["tick_us", "solve_us", "e2e_us"] {
        let Some(h) = leg.get(hist) else {
            fail(format!("{path}: missing leg.{hist}"));
        };
        for q in ["p50", "p99", "p999", "max", "count"] {
            if h.get(q).and_then(Json::as_num).is_none() {
                fail(format!("{path}: leg.{hist}.{q} is not a number"));
            }
        }
    }
    let Some(counters) = leg.get("counters") else {
        fail(format!("{path}: missing leg.counters"));
    };
    if v2 {
        for key in SOLVE_PATH_COUNTERS {
            if counters.get(key).and_then(Json::as_num).is_none() {
                fail(format!("{path}: leg.counters.{key} is not a number"));
            }
        }
    }
    let hash = leg
        .get("stream_hash")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(format!("{path}: leg.stream_hash is not a string")));
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        fail(format!("{path}: leg.stream_hash '{hash}' is not a 16-digit hex hash"));
    }
    if v2 {
        let Some(Json::Arr(points)) = value.get("scale") else {
            fail(format!("{path}: v2 artifact is missing the 'scale' array"));
        };
        for (i, point) in points.iter().enumerate() {
            if point.get("segments").and_then(Json::as_num).is_none() {
                fail(format!("{path}: scale[{i}].segments is not a number"));
            }
            for hist in ["tick_us", "solve_us"] {
                let Some(h) = point.get(hist) else {
                    fail(format!("{path}: missing scale[{i}].{hist}"));
                };
                for q in ["p50", "p99", "p999", "max", "count"] {
                    if h.get(q).and_then(Json::as_num).is_none() {
                        fail(format!("{path}: scale[{i}].{hist}.{q} is not a number"));
                    }
                }
            }
            let Some(c) = point.get("counters") else {
                fail(format!("{path}: missing scale[{i}].counters"));
            };
            for key in SOLVE_PATH_COUNTERS {
                if c.get(key).and_then(Json::as_num).is_none() {
                    fail(format!("{path}: scale[{i}].counters.{key} is not a number"));
                }
            }
        }
    }
    if v3 {
        match value.get("socket") {
            Some(Json::Null) => {}
            Some(socket) => {
                for key in ["offered_rate", "achieved_rate", "drop_rate", "shards"] {
                    if socket.get(key).and_then(Json::as_num).is_none() {
                        fail(format!("{path}: socket.{key} is not a number"));
                    }
                }
                for hist in ["e2e_us", "tick_us", "solve_us"] {
                    let Some(h) = socket.get(hist) else {
                        fail(format!("{path}: missing socket.{hist}"));
                    };
                    for q in ["p50", "p99", "p999", "max", "count"] {
                        if h.get(q).and_then(Json::as_num).is_none() {
                            fail(format!("{path}: socket.{hist}.{q} is not a number"));
                        }
                    }
                }
                let Some(daemon) = socket.get("daemon") else {
                    fail(format!("{path}: missing socket.daemon"));
                };
                for key in ["connections", "frames", "reports", "protocol_errors"] {
                    if daemon.get(key).and_then(Json::as_num).is_none() {
                        fail(format!("{path}: socket.daemon.{key} is not a number"));
                    }
                }
            }
            None => fail(format!("{path}: v3 artifact is missing the 'socket' key")),
        }
    }
    println!("{path}: serve artifact OK");
}

/// Terminal causal-trace stages: once a report hits one of these, its
/// story in the dump is complete.
const TERMINAL_STAGES: &[&str] = &["solved", "degraded", "checkpointed"];

/// Required shape of a `cs-traffic-flight/v1` flight-recorder dump:
/// the header line, the ring records with strictly increasing `seq`
/// numbers, and causal completeness of the traces it captured.
fn validate_flight(path: &str) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let mut lines = content.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());

    let Some((header_no, header_line)) = lines.next() else {
        fail(format!("{path}: empty flight dump"));
    };
    let header = Json::parse(header_line)
        .unwrap_or_else(|e| fail(format!("{path}:{}: not valid JSON: {e}", header_no + 1)));
    match header.get("schema").and_then(Json::as_str) {
        Some("cs-traffic-flight/v1") => {}
        Some(other) => fail(format!("{path}: unsupported flight schema '{other}'")),
        None => fail(format!("{path}: header is missing 'schema'")),
    }
    if header.get("trigger").and_then(Json::as_str).is_none() {
        fail(format!("{path}: header 'trigger' is not a string"));
    }
    if header.get("git_rev").and_then(Json::as_str).is_none() {
        fail(format!("{path}: header 'git_rev' is not a string"));
    }
    for key in ["created_unix_ms", "capacity", "captured", "dropped"] {
        if header.get(key).and_then(Json::as_num).is_none() {
            fail(format!("{path}: header '{key}' is not a number"));
        }
    }
    if header.get("meta").is_none() {
        fail(format!("{path}: header is missing 'meta'"));
    }

    let mut records = 0usize;
    let mut last_seq: Option<f64> = None;
    // stage sets per trace id: admitted traces must also reach a
    // terminal stage somewhere in the dump.
    let mut stages: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (lineno, line) in lines {
        let lineno = lineno + 1;
        let value = Json::parse(line)
            .unwrap_or_else(|e| fail(format!("{path}:{lineno}: not valid JSON: {e}")));
        for key in REQUIRED_RECORD_KEYS {
            if value.get(key).is_none() {
                fail(format!("{path}:{lineno}: missing required key '{key}'"));
            }
        }
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{path}:{lineno}: 'type' is not a string")));
        if !KNOWN_TYPES.contains(&ty) {
            fail(format!("{path}:{lineno}: unknown record type '{ty}'"));
        }
        let Some(seq) = value.get("seq").and_then(Json::as_num) else {
            fail(format!("{path}:{lineno}: ring record is missing numeric 'seq'"));
        };
        if let Some(prev) = last_seq {
            if seq <= prev {
                fail(format!("{path}:{lineno}: 'seq' {seq} not strictly above previous {prev}"));
            }
        }
        last_seq = Some(seq);
        if ty == "histogram" {
            validate_buckets(path, lineno, &value);
        }
        if ty == "trace" {
            let fields = value
                .get("fields")
                .unwrap_or_else(|| fail(format!("{path}:{lineno}: trace record has no fields")));
            let id = fields
                .get("trace")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(format!("{path}:{lineno}: fields.trace is not a string")));
            if id.len() != 16 || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
                fail(format!("{path}:{lineno}: trace id '{id}' is not a 16-digit hex id"));
            }
            let stage = fields
                .get("stage")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(format!("{path}:{lineno}: fields.stage is not a string")));
            stages.entry(id.to_string()).or_default().insert(stage.to_string());
        }
        records += 1;
    }

    let mut traced = 0usize;
    for (id, set) in &stages {
        if set.contains("admitted") && !TERMINAL_STAGES.iter().any(|t| set.contains(*t)) {
            fail(format!(
                "{path}: trace {id} was admitted but never reached a terminal stage \
                 (solved/degraded/checkpointed)"
            ));
        }
        traced += 1;
    }
    println!("{path}: flight dump OK ({records} ring records, {traced} traced reports)");
}

fn validate_manifest(path: &str) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let value =
        Json::parse(&content).unwrap_or_else(|e| fail(format!("{path}: not valid JSON: {e}")));
    for key in REQUIRED_MANIFEST_KEYS {
        if value.get(key).is_none() {
            fail(format!("{path}: missing required manifest key '{key}'"));
        }
    }
    let Some(Json::Arr(experiments)) = value.get("experiments") else {
        fail(format!("{path}: 'experiments' is not an array"));
    };
    for (i, exp) in experiments.iter().enumerate() {
        for key in ["id", "elapsed_s", "outputs"] {
            if exp.get(key).is_none() {
                fail(format!("{path}: experiments[{i}] missing key '{key}'"));
            }
        }
    }
    println!("{path}: manifest OK ({} experiments)", experiments.len());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        args.remove(pos);
        if pos >= args.len() {
            fail("--serve requires a path".to_string());
        }
        validate_serve(&args.remove(pos));
    }
    if let Some(pos) = args.iter().position(|a| a == "--flight") {
        args.remove(pos);
        if pos >= args.len() {
            fail("--flight requires a path".to_string());
        }
        validate_flight(&args.remove(pos));
    }
    if args.is_empty() && std::env::args().len() <= 1 {
        fail(
            "usage: validate-jsonl [--serve BENCH_serve.json] [--flight flight_dump.jsonl] \
             <metrics.jsonl> [run_manifest.json]"
                .to_string(),
        );
    }
    if let Some(jsonl) = args.first() {
        let records = validate_jsonl(jsonl);
        println!("{jsonl}: {records} valid records");
    }
    if let Some(manifest) = args.get(1) {
        validate_manifest(manifest);
    }
}
