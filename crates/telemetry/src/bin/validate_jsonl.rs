//! CI gate for telemetry output: checks that every line of a metrics
//! JSONL file is parseable JSON carrying the expected top-level keys,
//! and (optionally) that a run manifest parses with its required keys.
//!
//! ```text
//! validate-jsonl <metrics.jsonl> [run_manifest.json]
//! ```
//!
//! Exits non-zero with a line-precise message on the first violation.

use telemetry::json::Json;

const KNOWN_TYPES: &[&str] = &["span", "event", "counter", "gauge", "histogram"];
const REQUIRED_RECORD_KEYS: &[&str] = &["type", "level", "name", "ts_ms"];
const REQUIRED_MANIFEST_KEYS: &[&str] =
    &["schema", "command", "git_rev", "threads", "quick", "experiments", "created_unix_ms"];

fn fail(message: String) -> ! {
    eprintln!("validate-jsonl: {message}");
    std::process::exit(1);
}

fn validate_jsonl(path: &str) -> usize {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let mut records = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line)
            .unwrap_or_else(|e| fail(format!("{path}:{}: not valid JSON: {e}", lineno + 1)));
        let Json::Obj(_) = value else {
            fail(format!("{path}:{}: line is not a JSON object", lineno + 1));
        };
        for key in REQUIRED_RECORD_KEYS {
            if value.get(key).is_none() {
                fail(format!("{path}:{}: missing required key '{key}'", lineno + 1));
            }
        }
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{path}:{}: 'type' is not a string", lineno + 1)));
        if !KNOWN_TYPES.contains(&ty) {
            fail(format!("{path}:{}: unknown record type '{ty}'", lineno + 1));
        }
        if value.get("ts_ms").and_then(Json::as_num).is_none() {
            fail(format!("{path}:{}: 'ts_ms' is not a number", lineno + 1));
        }
        records += 1;
    }
    if records == 0 {
        fail(format!("{path}: no records emitted"));
    }
    records
}

fn validate_manifest(path: &str) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let value =
        Json::parse(&content).unwrap_or_else(|e| fail(format!("{path}: not valid JSON: {e}")));
    for key in REQUIRED_MANIFEST_KEYS {
        if value.get(key).is_none() {
            fail(format!("{path}: missing required manifest key '{key}'"));
        }
    }
    let Some(Json::Arr(experiments)) = value.get("experiments") else {
        fail(format!("{path}: 'experiments' is not an array"));
    };
    for (i, exp) in experiments.iter().enumerate() {
        for key in ["id", "elapsed_s", "outputs"] {
            if exp.get(key).is_none() {
                fail(format!("{path}: experiments[{i}] missing key '{key}'"));
            }
        }
    }
    println!("{path}: manifest OK ({} experiments)", experiments.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(jsonl) = args.first() else {
        fail("usage: validate-jsonl <metrics.jsonl> [run_manifest.json]".to_string());
    };
    let records = validate_jsonl(jsonl);
    println!("{jsonl}: {records} valid records");
    if let Some(manifest) = args.get(1) {
        validate_manifest(manifest);
    }
}
