//! CI gate for telemetry output: checks that every line of a metrics
//! JSONL file is parseable JSON carrying the expected top-level keys,
//! that histogram snapshots carry well-formed `lo:hi:count` bucket
//! triples, and (optionally) that a run manifest or a
//! `cs-traffic-bench-serve/v1` load-test artifact parses with its
//! required keys.
//!
//! ```text
//! validate-jsonl [--serve BENCH_serve.json] <metrics.jsonl> [run_manifest.json]
//! validate-jsonl --serve BENCH_serve.json
//! ```
//!
//! Exits non-zero with a line-precise message on the first violation.

use telemetry::json::Json;

const KNOWN_TYPES: &[&str] = &["span", "event", "counter", "gauge", "histogram"];
const REQUIRED_RECORD_KEYS: &[&str] = &["type", "level", "name", "ts_ms"];
const REQUIRED_MANIFEST_KEYS: &[&str] =
    &["schema", "command", "git_rev", "threads", "quick", "experiments", "created_unix_ms"];

fn fail(message: String) -> ! {
    eprintln!("validate-jsonl: {message}");
    std::process::exit(1);
}

fn validate_jsonl(path: &str) -> usize {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let mut records = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line)
            .unwrap_or_else(|e| fail(format!("{path}:{}: not valid JSON: {e}", lineno + 1)));
        let Json::Obj(_) = value else {
            fail(format!("{path}:{}: line is not a JSON object", lineno + 1));
        };
        for key in REQUIRED_RECORD_KEYS {
            if value.get(key).is_none() {
                fail(format!("{path}:{}: missing required key '{key}'", lineno + 1));
            }
        }
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{path}:{}: 'type' is not a string", lineno + 1)));
        if !KNOWN_TYPES.contains(&ty) {
            fail(format!("{path}:{}: unknown record type '{ty}'", lineno + 1));
        }
        if value.get("ts_ms").and_then(Json::as_num).is_none() {
            fail(format!("{path}:{}: 'ts_ms' is not a number", lineno + 1));
        }
        if ty == "histogram" {
            validate_buckets(path, lineno + 1, &value);
        }
        records += 1;
    }
    if records == 0 {
        fail(format!("{path}: no records emitted"));
    }
    records
}

/// Histogram snapshots encode non-empty buckets as space-separated
/// `lo:hi:count` triples (hi = `inf` in the top bucket) so downstream
/// tooling can re-derive quantiles; reject anything else.
fn validate_buckets(path: &str, lineno: usize, value: &Json) {
    let Some(buckets) = value.get("buckets") else {
        return; // empty histograms omit the field
    };
    let Some(buckets) = buckets.as_str() else {
        fail(format!("{path}:{lineno}: 'buckets' is not a string"));
    };
    for triple in buckets.split_whitespace() {
        let parts: Vec<&str> = triple.split(':').collect();
        let ok = parts.len() == 3
            && parts[0].parse::<f64>().is_ok()
            && (parts[1] == "inf" || parts[1].parse::<f64>().is_ok())
            && parts[2].parse::<u64>().is_ok();
        if !ok {
            fail(format!("{path}:{lineno}: malformed bucket triple '{triple}' (want lo:hi:count)"));
        }
    }
}

/// Required shape of the `cs-traffic-bench-serve/v1` load-test
/// artifact: the schema marker, the searched rate, and a best leg with
/// full quantile sets, counters, and the determinism witness hash.
fn validate_serve(path: &str) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let value =
        Json::parse(&content).unwrap_or_else(|e| fail(format!("{path}: not valid JSON: {e}")));
    match value.get("schema").and_then(Json::as_str) {
        Some("cs-traffic-bench-serve/v1") => {}
        Some(other) => fail(format!("{path}: unsupported serve schema '{other}'")),
        None => fail(format!("{path}: missing 'schema'")),
    }
    for key in ["git_rev", "seed", "threads", "quick", "grid", "search_legs"] {
        if value.get(key).is_none() {
            fail(format!("{path}: missing required key '{key}'"));
        }
    }
    if value.get("max_sustainable_rate").and_then(Json::as_num).is_none() {
        fail(format!("{path}: 'max_sustainable_rate' is not a number"));
    }
    let Some(leg) = value.get("leg") else {
        fail(format!("{path}: missing 'leg'"));
    };
    for key in ["offered_rate", "achieved_rate", "drop_rate", "degrade_rate", "wall_s"] {
        if leg.get(key).and_then(Json::as_num).is_none() {
            fail(format!("{path}: leg.{key} is not a number"));
        }
    }
    for hist in ["tick_us", "solve_us", "e2e_us"] {
        let Some(h) = leg.get(hist) else {
            fail(format!("{path}: missing leg.{hist}"));
        };
        for q in ["p50", "p99", "p999", "max", "count"] {
            if h.get(q).and_then(Json::as_num).is_none() {
                fail(format!("{path}: leg.{hist}.{q} is not a number"));
            }
        }
    }
    if leg.get("counters").is_none() {
        fail(format!("{path}: missing leg.counters"));
    }
    let hash = leg
        .get("stream_hash")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(format!("{path}: leg.stream_hash is not a string")));
    if hash.len() != 16 || !hash.bytes().all(|b| b.is_ascii_hexdigit()) {
        fail(format!("{path}: leg.stream_hash '{hash}' is not a 16-digit hex hash"));
    }
    println!("{path}: serve artifact OK");
}

fn validate_manifest(path: &str) {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read '{path}': {e}")));
    let value =
        Json::parse(&content).unwrap_or_else(|e| fail(format!("{path}: not valid JSON: {e}")));
    for key in REQUIRED_MANIFEST_KEYS {
        if value.get(key).is_none() {
            fail(format!("{path}: missing required manifest key '{key}'"));
        }
    }
    let Some(Json::Arr(experiments)) = value.get("experiments") else {
        fail(format!("{path}: 'experiments' is not an array"));
    };
    for (i, exp) in experiments.iter().enumerate() {
        for key in ["id", "elapsed_s", "outputs"] {
            if exp.get(key).is_none() {
                fail(format!("{path}: experiments[{i}] missing key '{key}'"));
            }
        }
    }
    println!("{path}: manifest OK ({} experiments)", experiments.len());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        args.remove(pos);
        if pos >= args.len() {
            fail("--serve requires a path".to_string());
        }
        validate_serve(&args.remove(pos));
    } else if args.is_empty() {
        fail(
            "usage: validate-jsonl [--serve BENCH_serve.json] <metrics.jsonl> [run_manifest.json]"
                .to_string(),
        );
    }
    if let Some(jsonl) = args.first() {
        let records = validate_jsonl(jsonl);
        println!("{jsonl}: {records} valid records");
    }
    if let Some(manifest) = args.get(1) {
        validate_manifest(manifest);
    }
}
