//! Crash-safe flight recorder: a fixed-capacity ring of the most recent
//! telemetry records, dumped as a self-contained JSONL post-mortem.
//!
//! The recorder is a [`Sink`]: once installed it captures every record
//! the dispatch layer fans out (spans, events, traces, counter
//! snapshots) into a lock-free ring of `capacity` slots with process-
//! monotonic sequence numbers. When something goes wrong — the solve
//! watchdog degrades, a chaos oracle fails, or the process panics (see
//! [`crate::install_panic_flush_hook`]) — the last N records are written
//! to `flight_dump.jsonl` under schema `cs-traffic-flight/v1` together
//! with the git revision, run metadata (seed, config), and a final
//! metric snapshot, so the crash site can be replayed without rerunning
//! the workload.
//!
//! Writers never block each other on the hot path: claiming a sequence
//! number is one `fetch_add`, and each slot has its own mutex (only
//! contended when two writers race `capacity` records apart). Dumping
//! walks the slots and sorts by sequence number, so a dump taken while
//! writers are active is a consistent *sample*, not a torn record.

use crate::json::Json;
use crate::sink::{JsonlSink, OwnedRecord, Record, Sink};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One captured record with its global sequence number.
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    record: OwnedRecord,
}

/// Fixed-capacity ring of the last N telemetry records.
pub struct FlightRecorder {
    capacity: usize,
    /// Next sequence number; also counts every record ever captured.
    seq: AtomicU64,
    slots: Vec<Mutex<Option<Entry>>>,
    /// Run metadata echoed into the dump header (seed, config, …).
    meta: Mutex<Vec<(String, String)>>,
    /// Where [`dump_on_panic`] writes; also the default for triggers
    /// that don't name a path.
    dump_path: Mutex<Option<PathBuf>>,
}

impl FlightRecorder {
    /// New recorder holding the most recent `capacity` records
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            meta: Mutex::new(Vec::new()),
            dump_path: Mutex::new(None),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records captured over the recorder's lifetime (not just
    /// those still in the ring).
    pub fn total_captured(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records a `key = value` metadata pair for the dump header.
    /// Re-setting a key overwrites its value.
    pub fn set_meta(&self, key: &str, value: &str) {
        let mut meta = self.meta.lock().expect("flight meta poisoned");
        if let Some(slot) = meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            meta.push((key.to_string(), value.to_string()));
        }
    }

    /// Sets the default dump destination (used by the panic hook and by
    /// triggers that don't name a path).
    pub fn set_dump_path(&self, path: PathBuf) {
        *self.dump_path.lock().expect("flight path poisoned") = Some(path);
    }

    /// The configured default dump destination, if any.
    pub fn dump_path(&self) -> Option<PathBuf> {
        self.dump_path.lock().expect("flight path poisoned").clone()
    }

    /// Ring contents in sequence order (oldest surviving record first).
    fn entries(&self) -> Vec<Entry> {
        let mut entries: Vec<Entry> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight slot poisoned").clone())
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// Renders the dump as JSONL: one `cs-traffic-flight/v1` header
    /// line, then the surviving ring records (each with its `seq`),
    /// then — so the post-mortem is self-contained — a snapshot of every
    /// registered metric with continuing sequence numbers.
    pub fn dump_string(&self, trigger: &str) -> String {
        let entries = self.entries();
        let total = self.total_captured();
        let dropped = total.saturating_sub(entries.len() as u64);
        let meta = self.meta.lock().expect("flight meta poisoned").clone();
        let header = Json::Obj(vec![
            ("schema".to_string(), Json::Str("cs-traffic-flight/v1".to_string())),
            ("trigger".to_string(), Json::Str(trigger.to_string())),
            ("git_rev".to_string(), Json::Str(git_rev())),
            ("created_unix_ms".to_string(), Json::Num(crate::unix_ms() as f64)),
            ("capacity".to_string(), Json::Num(self.capacity as f64)),
            ("captured".to_string(), Json::Num(total as f64)),
            ("dropped".to_string(), Json::Num(dropped as f64)),
            (
                "meta".to_string(),
                Json::Obj(meta.into_iter().map(|(k, v)| (k, Json::Str(v))).collect()),
            ),
        ]);
        let mut out = header.encode();
        out.push('\n');
        for entry in &entries {
            out.push_str(&encode_with_seq(&entry.record, entry.seq));
            out.push('\n');
        }
        // Metric snapshots continue the sequence numbering after the
        // ring so `validate-jsonl --flight` sees one monotone stream.
        for (i, snap) in crate::metrics::snapshot().into_iter().enumerate() {
            let owned = OwnedRecord {
                kind: snap.kind,
                level: crate::Level::Info,
                name: snap.name.clone(),
                span_id: None,
                parent_id: None,
                elapsed_ns: None,
                fields: snap.fields.clone(),
                ts_ms: crate::unix_ms(),
            };
            out.push_str(&encode_with_seq(&owned, total + i as u64));
            out.push('\n');
        }
        out
    }

    /// Writes the dump to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn dump_to_path(&self, path: &Path, trigger: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.dump_string(trigger).as_bytes())?;
        file.flush()
    }

    /// Writes the dump to the configured [`Self::set_dump_path`]
    /// destination, defaulting to `flight_dump.jsonl` in the working
    /// directory so an unconfigured panic still leaves evidence.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn dump(&self, trigger: &str) -> std::io::Result<PathBuf> {
        let path = self.dump_path().unwrap_or_else(|| PathBuf::from("flight_dump.jsonl"));
        self.dump_to_path(&path, trigger)?;
        Ok(path)
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, record: &Record<'_>) {
        // Claim a sequence number lock-free, then write the slot it maps
        // to. Two writers only contend when they race exactly
        // `capacity` records apart.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let entry = Entry {
            seq,
            record: OwnedRecord {
                kind: record.kind,
                level: record.level,
                name: record.name.to_string(),
                span_id: record.span_id,
                parent_id: record.parent_id,
                elapsed_ns: record.elapsed_ns,
                fields: record.fields.to_vec(),
                ts_ms: record.ts_ms,
            },
        };
        let slot = &self.slots[(seq % self.capacity as u64) as usize];
        let mut guard = slot.lock().expect("flight slot poisoned");
        // A slow writer could hold an older claim for this slot; keep
        // the newest record.
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(entry);
        }
    }
}

/// Encodes one owned record as its JSONL object with the flight `seq`
/// injected as the first key.
fn encode_with_seq(record: &OwnedRecord, seq: u64) -> String {
    let borrowed = Record {
        kind: record.kind,
        level: record.level,
        name: &record.name,
        span_id: record.span_id,
        parent_id: record.parent_id,
        elapsed_ns: record.elapsed_ns,
        fields: &record.fields,
        ts_ms: record.ts_ms,
    };
    let mut obj = match JsonlSink::<std::io::Sink>::encode(&borrowed) {
        Json::Obj(pairs) => pairs,
        other => vec![("record".to_string(), other)],
    };
    obj.insert(0, ("seq".to_string(), Json::Num(seq as f64)));
    Json::Obj(obj).encode()
}

/// Git revision of the running binary: `git rev-parse HEAD`, falling
/// back to `GITHUB_SHA`, then `"unknown"` (mirrors `cs_bench`'s report
/// header).
fn git_rev() -> String {
    if let Ok(out) = std::process::Command::new("git").args(["rev-parse", "HEAD"]).output() {
        if out.status.success() {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".to_string())
}

fn global() -> &'static RwLock<Option<Arc<FlightRecorder>>> {
    static GLOBAL: OnceLock<RwLock<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Installs a process-global flight recorder of `capacity` records and
/// registers it as a sink. Replaces any previously installed recorder
/// (the old one stays registered as a sink until [`crate::clear_sinks`];
/// callers normally install once at startup).
pub fn install(capacity: usize) -> Arc<FlightRecorder> {
    let recorder = Arc::new(FlightRecorder::new(capacity));
    crate::add_sink(Arc::clone(&recorder) as Arc<dyn Sink>);
    *global().write().expect("flight global poisoned") = Some(Arc::clone(&recorder));
    recorder
}

/// The installed recorder, if any.
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    global().read().expect("flight global poisoned").clone()
}

/// Forgets the installed recorder (test-only; see
/// [`crate::reset_for_tests`]). Does not unregister it as a sink.
pub fn uninstall() {
    *global().write().expect("flight global poisoned") = None;
}

/// Panic-path dump: writes the installed recorder (if any) to its
/// configured path. Failures are reported to stderr rather than
/// propagated — the process is already going down.
pub(crate) fn dump_on_panic() {
    if let Some(rec) = recorder() {
        match rec.dump("panic") {
            Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
            Err(e) => eprintln!("flight recorder dump failed: {e}"),
        }
    }
}
