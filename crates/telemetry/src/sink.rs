//! The pluggable sink API and the two built-in sinks.

use crate::json::Json;
use crate::{Field, Level};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RecordKind {
    /// A closed span (has `elapsed_ns`).
    Span,
    /// A one-shot event.
    Event,
    /// A counter snapshot (flushed at shutdown).
    Counter,
    /// A gauge snapshot.
    Gauge,
    /// A histogram snapshot.
    Histogram,
    /// A causal-trace stage of one probe report (carries `trace` and
    /// `stage` fields; see `traffic_cs::service`).
    Trace,
}

impl RecordKind {
    /// The `type` string in the JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
            RecordKind::Counter => "counter",
            RecordKind::Gauge => "gauge",
            RecordKind::Histogram => "histogram",
            RecordKind::Trace => "trace",
        }
    }
}

/// One telemetry record, borrowed from the emitting site.
#[derive(Debug)]
pub struct Record<'a> {
    /// Span close, event, or metric snapshot.
    pub kind: RecordKind,
    /// Severity of the record.
    pub level: Level,
    /// Span/event/metric name (dotted, e.g. `als.sweep`).
    pub name: &'a str,
    /// Id of the span (span records only).
    pub span_id: Option<u64>,
    /// Id of the enclosing span on the same thread, if any.
    pub parent_id: Option<u64>,
    /// Wall-clock duration (span records only).
    pub elapsed_ns: Option<u128>,
    /// Structured `key = value` payload.
    pub fields: &'a [Field],
    /// Milliseconds since the Unix epoch.
    pub ts_ms: u64,
}

/// Where records go. Implementations must be cheap and non-blocking in
/// spirit: they run inline at the emitting site.
pub trait Sink: Send + Sync {
    /// Consumes one record.
    fn emit(&self, record: &Record<'_>);

    /// Flushes any buffered output (called by [`crate::shutdown`]).
    fn flush(&self) {}
}

/// Leveled pretty-printer: one aligned line per record to stderr (or any
/// writer), indented by span depth on the emitting thread.
pub struct PrettySink<W: Write + Send = std::io::Stderr> {
    max_level: Level,
    writer: Mutex<W>,
}

impl PrettySink<std::io::Stderr> {
    /// Pretty-printer to stderr showing records at or below `max_level`.
    pub fn to_stderr(max_level: Level) -> Self {
        Self { max_level, writer: Mutex::new(std::io::stderr()) }
    }
}

impl<W: Write + Send> PrettySink<W> {
    /// Pretty-printer to an arbitrary writer (used by tests).
    pub fn to_writer(max_level: Level, writer: W) -> Self {
        Self { max_level, writer: Mutex::new(writer) }
    }
}

impl<W: Write + Send> Sink for PrettySink<W> {
    fn emit(&self, record: &Record<'_>) {
        if record.level > self.max_level {
            return;
        }
        let indent = "  ".repeat(crate::span::current_depth().min(8));
        let mut line = format!("[{:>5}] {}{}", record.level, indent, record.name);
        for (k, v) in record.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        if let Some(ns) = record.elapsed_ns {
            line.push_str(&format!(" ({:.3} ms)", ns as f64 / 1e6));
        }
        let mut w = self.writer.lock().expect("pretty sink poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("pretty sink poisoned").flush();
    }
}

/// Machine-readable JSON-lines writer: every record becomes one JSON
/// object per line with top-level keys `type`, `level`, `name`, `ts_ms`,
/// plus `span`, `parent`, `elapsed_us`, and `fields` when present.
pub struct JsonlSink<W: Write + Send = std::io::BufWriter<std::fs::File>> {
    writer: Mutex<W>,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) the JSONL file at `path`, creating parent
    /// directories as needed — `--metrics-out results/run.jsonl` must
    /// work before anything else has created `results/`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(Self { writer: Mutex::new(std::io::BufWriter::new(file)) })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// JSONL to an arbitrary writer (used by tests).
    pub fn to_writer(writer: W) -> Self {
        Self { writer: Mutex::new(writer) }
    }

    /// Encodes one record as its JSONL object.
    pub fn encode(record: &Record<'_>) -> Json {
        let mut obj = vec![
            ("type".to_string(), Json::Str(record.kind.as_str().to_string())),
            ("level".to_string(), Json::Str(record.level.as_str().to_string())),
            ("name".to_string(), Json::Str(record.name.to_string())),
            ("ts_ms".to_string(), Json::Num(record.ts_ms as f64)),
        ];
        if let Some(id) = record.span_id {
            obj.push(("span".to_string(), Json::Num(id as f64)));
        }
        if let Some(id) = record.parent_id {
            obj.push(("parent".to_string(), Json::Num(id as f64)));
        }
        if let Some(ns) = record.elapsed_ns {
            obj.push(("elapsed_us".to_string(), Json::Num(ns as f64 / 1e3)));
        }
        if !record.fields.is_empty() {
            let fields = record
                .fields
                .iter()
                .map(|(k, v)| {
                    let jv = match v {
                        crate::Value::Bool(b) => Json::Bool(*b),
                        crate::Value::Int(i) => Json::Num(*i as f64),
                        crate::Value::UInt(u) => Json::Num(*u as f64),
                        crate::Value::Float(f) => Json::Num(*f),
                        crate::Value::Str(s) => Json::Str(s.clone()),
                    };
                    (k.to_string(), jv)
                })
                .collect();
            obj.push(("fields".to_string(), Json::Obj(fields)));
        }
        Json::Obj(obj)
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn emit(&self, record: &Record<'_>) {
        let line = Self::encode(record).encode();
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

/// An owned copy of a [`Record`], as captured by [`CaptureSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedRecord {
    /// See [`Record::kind`].
    pub kind: RecordKind,
    /// See [`Record::level`].
    pub level: Level,
    /// See [`Record::name`].
    pub name: String,
    /// See [`Record::span_id`].
    pub span_id: Option<u64>,
    /// See [`Record::parent_id`].
    pub parent_id: Option<u64>,
    /// See [`Record::elapsed_ns`].
    pub elapsed_ns: Option<u128>,
    /// See [`Record::fields`].
    pub fields: Vec<Field>,
    /// See [`Record::ts_ms`].
    pub ts_ms: u64,
}

impl OwnedRecord {
    /// Field value by key.
    pub fn field(&self, key: &str) -> Option<&crate::Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// In-memory sink for tests: clones every record into a vector.
#[derive(Default)]
pub struct CaptureSink {
    records: Mutex<Vec<OwnedRecord>>,
}

impl CaptureSink {
    /// New empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything captured so far.
    pub fn records(&self) -> Vec<OwnedRecord> {
        self.records.lock().expect("capture sink poisoned").clone()
    }

    /// Discards everything captured so far, so one sink can be reused
    /// across phases of a test without re-registering it.
    pub fn clear(&self) {
        self.records.lock().expect("capture sink poisoned").clear();
    }

    /// Number of captured records with the given name — the cheap
    /// assertion helper for "every injected fault emitted its event".
    pub fn count_named(&self, name: &str) -> usize {
        self.records
            .lock()
            .expect("capture sink poisoned")
            .iter()
            .filter(|r| r.name == name)
            .count()
    }
}

impl Sink for CaptureSink {
    fn emit(&self, record: &Record<'_>) {
        self.records.lock().expect("capture sink poisoned").push(OwnedRecord {
            kind: record.kind,
            level: record.level,
            name: record.name.to_string(),
            span_id: record.span_id,
            parent_id: record.parent_id,
            elapsed_ns: record.elapsed_ns,
            fields: record.fields.to_vec(),
            ts_ms: record.ts_ms,
        });
    }
}
