//! Hierarchical spans: wall-clock timed scopes with structured fields.

use crate::sink::{Record, RecordKind};
use crate::{dispatch, enabled, unix_ms, Field, Key, Level, Value};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotone span-id source; 0 is never handed out so ids are `NonZero`
/// in spirit.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span or event. Spans opened on worker threads start a
    /// fresh (empty) stack, so cross-thread parents are intentionally
    /// not tracked.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Id of the innermost open span on this thread, if any.
pub(crate) fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Depth of the current thread's span stack (used by the pretty sink
/// for indentation).
pub(crate) fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    level: Level,
    start: Instant,
    fields: Vec<Field>,
}

/// A timed scope. Created by [`span`]; emits one record with its
/// elapsed time and accumulated fields when dropped. When the span's
/// level is filtered out the handle is inert: no allocation, no clock
/// reads, `record` is a no-op.
pub struct Span {
    inner: Option<ActiveSpan>,
}

/// Opens a span at `level` named `name`. Returns an inert handle (a
/// `None` wrapper, no allocation) when [`enabled`]`(level)` is false, so
/// unconditional call sites stay near-free with telemetry off.
pub fn span(level: Level, name: &'static str) -> Span {
    if !enabled(level) {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            level,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Whether this span will emit a record — gate expensive field
    /// computation behind it.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id (`None` when inert).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.id)
    }

    /// Attaches a field, reported when the span closes. No-op on inert
    /// spans — but the arguments are still evaluated, so keep them to
    /// already-computed scalars.
    pub fn record(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        if let Some(active) = &mut self.inner {
            active.fields.push((key.into(), value.into()));
        }
    }

    /// Elapsed wall-clock time since the span opened (`None` when inert).
    pub fn elapsed(&self) -> Option<std::time::Duration> {
        self.inner.as_ref().map(|a| a.start.elapsed())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else { return };
        let elapsed_ns = active.start.elapsed().as_nanos();
        // Pop this span from the thread's stack. Spans close LIFO under
        // normal scoping; a retain keeps the stack sane even if a caller
        // holds spans across overlapping lifetimes.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        dispatch(&Record {
            kind: RecordKind::Span,
            level: active.level,
            name: active.name,
            span_id: Some(active.id),
            parent_id: active.parent,
            elapsed_ns: Some(elapsed_ns),
            fields: &active.fields,
            ts_ms: unix_ms(),
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(a) => write!(f, "Span({} #{})", a.name, a.id),
            None => f.write_str("Span(inert)"),
        }
    }
}
