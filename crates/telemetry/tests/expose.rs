//! Golden test for the Prometheus text exposition plane: the exact
//! bytes `telemetry::metrics::expose_text()` produces are pinned here,
//! because `cs-traffic-cli inspect --expose` promises to re-render the
//! same text from a flushed metrics JSONL. Change the format and both
//! this test and that round trip must move together.

use std::sync::{Mutex, MutexGuard};
use telemetry::metrics;

fn serialize() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset_for_tests();
    guard
}

#[test]
fn expose_text_matches_the_golden_output() {
    let _g = serialize();
    telemetry::gauge("queue.depth").set(1.5);
    telemetry::counter("reqs.total").add(42);
    // One observation of 2.0 pins every quantile to exactly 2 (the
    // estimate clamps to [min, max]).
    telemetry::histogram("serve.tick_us").observe(2.0);

    let golden = "\
# TYPE queue_depth gauge
queue_depth 1.5
# TYPE reqs_total counter
reqs_total 42
# TYPE serve_tick_us summary
serve_tick_us{quantile=\"0.5\"} 2
serve_tick_us{quantile=\"0.99\"} 2
serve_tick_us{quantile=\"0.999\"} 2
serve_tick_us_sum 2
serve_tick_us_count 1
";
    assert_eq!(metrics::expose_text(), golden);
}

#[test]
fn exposition_sanitizes_names_and_non_finite_samples() {
    let _g = serialize();
    telemetry::gauge("2x.per-leg ratio").set(f64::INFINITY);
    let text = metrics::expose_text();
    assert_eq!(text, "# TYPE _2x_per_leg_ratio gauge\n_2x_per_leg_ratio +Inf\n");

    telemetry::reset_for_tests();
    telemetry::gauge("nan.gauge").set(f64::NAN);
    assert_eq!(metrics::expose_text(), "# TYPE nan_gauge gauge\nnan_gauge NaN\n");
}

#[test]
fn empty_registry_exposes_nothing() {
    let _g = serialize();
    assert_eq!(metrics::expose_text(), "");
}
