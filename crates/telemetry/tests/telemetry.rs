//! Integration tests over the public telemetry surface: level
//! filtering, span nesting and timing, histogram bucketing, and the
//! JSONL golden-file round trip.
//!
//! The crate's state (level, sinks, metric registry) is process-global,
//! so every test serializes on one mutex and resets the globals first.

use std::sync::{Arc, Mutex, MutexGuard};
use telemetry::json::Json;
use telemetry::metrics::{Histogram, HISTOGRAM_BUCKETS};
use telemetry::{CaptureSink, JsonlSink, Level, RecordKind, Value};

fn serialize() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset_for_tests();
    guard
}

fn capture() -> Arc<CaptureSink> {
    let sink = Arc::new(CaptureSink::new());
    telemetry::add_sink(sink.clone());
    sink
}

#[test]
fn level_filtering_drops_records_above_the_max() {
    let _g = serialize();
    let sink = capture();
    telemetry::set_level(Level::Info);

    drop(telemetry::span(Level::Info, "kept"));
    drop(telemetry::span(Level::Debug, "dropped"));
    telemetry::event(Level::Error, "kept.event", vec![]);
    telemetry::event(Level::Trace, "dropped.event", vec![]);

    let names: Vec<String> = sink.records().iter().map(|r| r.name.clone()).collect();
    assert_eq!(names, vec!["kept", "kept.event"]);

    telemetry::set_level(Level::Off);
    drop(telemetry::span(Level::Error, "even.errors.drop.at.off"));
    assert_eq!(sink.records().len(), 2);
}

#[test]
fn capture_sink_clear_and_count() {
    let _g = serialize();
    let sink = capture();
    telemetry::set_level(Level::Info);

    telemetry::event(Level::Info, "chaos.fault", vec![]);
    telemetry::event(Level::Info, "chaos.fault", vec![]);
    telemetry::event(Level::Info, "other.event", vec![]);
    assert_eq!(sink.count_named("chaos.fault"), 2);
    assert_eq!(sink.count_named("other.event"), 1);
    assert_eq!(sink.count_named("missing"), 0);

    sink.clear();
    assert!(sink.records().is_empty());
    telemetry::event(Level::Info, "chaos.fault", vec![]);
    assert_eq!(sink.count_named("chaos.fault"), 1, "sink keeps capturing after clear");
}

#[test]
fn enabled_matches_the_level_lattice() {
    let _g = serialize();
    telemetry::set_level(Level::Debug);
    assert!(telemetry::enabled(Level::Error));
    assert!(telemetry::enabled(Level::Info));
    assert!(telemetry::enabled(Level::Debug));
    assert!(!telemetry::enabled(Level::Trace));
    assert!(!telemetry::enabled(Level::Off), "Off is never emittable");
}

#[test]
fn spans_nest_and_report_monotone_timings() {
    let _g = serialize();
    let sink = capture();
    telemetry::set_level(Level::Debug);

    let outer = telemetry::span(Level::Info, "outer");
    let outer_id = outer.id().expect("enabled span has an id");
    {
        let mut inner = telemetry::span(Level::Debug, "inner");
        inner.record("k", 7u64);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    drop(outer);

    let records = sink.records();
    assert_eq!(records.len(), 2, "inner closes first, then outer");
    let (inner, outer) = (&records[0], &records[1]);
    assert_eq!(inner.name, "inner");
    assert_eq!(outer.name, "outer");
    assert_eq!(inner.parent_id, Some(outer_id), "inner's parent is the enclosing span");
    assert_eq!(outer.parent_id, None);
    assert_eq!(inner.field("k"), Some(&Value::UInt(7)));

    // Timing monotonicity: both non-zero, and the outer span (which
    // contains the inner's lifetime) took at least as long.
    let inner_ns = inner.elapsed_ns.expect("span records carry elapsed_ns");
    let outer_ns = outer.elapsed_ns.expect("span records carry elapsed_ns");
    assert!(inner_ns > 0);
    assert!(outer_ns >= inner_ns, "outer {outer_ns} < inner {inner_ns}");
}

#[test]
fn inert_spans_cost_no_ids_and_accept_records() {
    let _g = serialize();
    telemetry::set_level(Level::Off);
    let mut span = telemetry::span(Level::Info, "ghost");
    assert!(!span.is_enabled());
    assert_eq!(span.id(), None);
    assert_eq!(span.elapsed(), None);
    span.record("ignored", 1u64); // must not panic
}

#[test]
fn histogram_bucketing() {
    let _g = serialize();
    // Exact powers of two land at the lower edge of their bucket; the
    // bucket above must start exactly where the previous ends.
    for i in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = Histogram::bucket_bounds(i);
        assert!(lo < hi);
        if i > 0 {
            assert_eq!(Histogram::bucket_bounds(i - 1).1, lo, "gap before bucket {i}");
        }
        if lo > 0.0 {
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
        }
    }
    // Edge cases clamp instead of panicking.
    assert_eq!(Histogram::bucket_index(0.0), 0);
    assert_eq!(Histogram::bucket_index(-3.0), 0);
    assert_eq!(Histogram::bucket_index(f64::NAN), 0);
    assert_eq!(Histogram::bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
    assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);

    let h = Histogram::default();
    for v in [0.5, 0.6, 3.0, 3.9, 1000.0] {
        h.observe(v);
    }
    assert_eq!(h.count(), 5);
    assert!((h.sum() - 1008.0).abs() < 1e-12);
    assert_eq!(h.min(), Some(0.5));
    assert_eq!(h.max(), Some(1000.0));
    // 0.5 and 0.6 share [0.5, 1); 3.0 and 3.9 share [2, 4); 1000 is alone.
    let buckets = h.nonzero_buckets();
    assert_eq!(buckets.len(), 3);
    assert_eq!(buckets[0], (1.0, 2));
    assert_eq!(buckets[1], (4.0, 2));
    assert_eq!(buckets[2].1, 1);
}

#[test]
fn metric_registry_shares_handles_by_name() {
    let _g = serialize();
    telemetry::counter("test.shared").add(3);
    telemetry::counter("test.shared").add(4);
    assert_eq!(telemetry::counter("test.shared").get(), 7);
    telemetry::gauge("test.gauge").set(1.5);
    assert_eq!(telemetry::gauge("test.gauge").get(), 1.5);
}

#[test]
fn shutdown_snapshots_metrics_into_the_sinks() {
    let _g = serialize();
    let sink = capture();
    telemetry::set_metrics_enabled(true);
    telemetry::counter("snap.counter").add(5);
    telemetry::gauge("snap.gauge").set(0.25);
    telemetry::histogram("snap.hist").observe(2.0);
    telemetry::shutdown();

    let records = sink.records();
    let by_name = |n: &str| records.iter().find(|r| r.name == n).expect("snapshot present");
    assert_eq!(by_name("snap.counter").kind, RecordKind::Counter);
    assert_eq!(by_name("snap.counter").field("value"), Some(&Value::UInt(5)));
    assert_eq!(by_name("snap.gauge").field("value"), Some(&Value::Float(0.25)));
    let hist = by_name("snap.hist");
    assert_eq!(hist.field("count"), Some(&Value::UInt(1)));
    assert_eq!(hist.field("min"), Some(&Value::Float(2.0)));
}

/// Golden-file shape test: run a realistic slice of the pipeline's
/// instrumentation through a real `JsonlSink`, then require every line
/// to parse as a JSON object with the documented top-level keys and to
/// round-trip `parse → encode → parse` without loss.
#[test]
fn jsonl_output_parses_and_round_trips() {
    let _g = serialize();
    let path = std::env::temp_dir().join("telemetry_golden_test.jsonl");
    telemetry::init(&telemetry::TelemetryConfig {
        level: Level::Off,
        metrics_out: Some(path.clone()),
    })
    .expect("jsonl sink creation");

    {
        let mut outer = telemetry::span(Level::Info, "als.complete");
        outer.record("m", 48u64);
        outer.record("lambda", 100.0);
        let mut sweep = telemetry::span(Level::Debug, "als.sweep");
        sweep.record("objective", 12.5);
        sweep.record("early_stop", true);
        drop(sweep);
    }
    telemetry::event(Level::Info, "run.note", vec![("id".into(), "fig11".into())]);
    telemetry::counter("als.sweeps").add(2);
    telemetry::histogram("als.complete_us").observe(1234.5);
    telemetry::shutdown();

    let content = std::fs::read_to_string(&path).expect("jsonl file readable");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = content.lines().collect();
    // 2 spans + 1 event + 2 metric snapshots.
    assert_eq!(lines.len(), 5, "unexpected output:\n{content}");

    for line in &lines {
        let parsed = Json::parse(line).expect("every line is valid JSON");
        for key in ["type", "level", "name", "ts_ms"] {
            assert!(parsed.get(key).is_some(), "missing '{key}' in {line}");
        }
        let kind = parsed.get("type").and_then(Json::as_str).expect("type is a string");
        assert!(
            ["span", "event", "counter", "gauge", "histogram"].contains(&kind),
            "unknown type '{kind}'"
        );
        // Round trip: encode the parsed tree and parse it again; the
        // trees must be identical (ordering is preserved by Json::Obj).
        let reparsed = Json::parse(&parsed.encode()).expect("re-encoded line parses");
        assert_eq!(parsed, reparsed, "round trip changed {line}");
    }

    // The span records must nest: als.sweep's parent is als.complete.
    let span_of = |name: &str| {
        lines
            .iter()
            .map(|l| Json::parse(l).unwrap())
            .find(|j| j.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("record '{name}' missing"))
    };
    let outer = span_of("als.complete");
    let inner = span_of("als.sweep");
    assert_eq!(
        inner.get("parent").and_then(Json::as_num),
        outer.get("span").and_then(Json::as_num),
        "sweep span not nested under completion span"
    );
    assert!(outer.get("elapsed_us").and_then(Json::as_num).expect("elapsed present") >= 0.0);
    assert_eq!(
        outer.get("fields").and_then(|f| f.get("lambda")).and_then(Json::as_num),
        Some(100.0)
    );
}

/// The `JsonlSink::encode` record shape is stable for in-memory records
/// too (no file needed): integral numbers encode without a fraction.
#[test]
fn jsonl_encode_integers_stay_integral() {
    let _g = serialize();
    let fields = vec![("count".into(), Value::UInt(3))];
    let record = telemetry::Record {
        kind: RecordKind::Event,
        level: Level::Info,
        name: "n",
        span_id: Some(9),
        parent_id: None,
        elapsed_ns: None,
        fields: &fields,
        ts_ms: 1700000000000,
    };
    let line = JsonlSink::<Vec<u8>>::encode(&record).encode();
    assert!(line.contains("\"ts_ms\":1700000000000"), "{line}");
    assert!(line.contains("\"span\":9"), "{line}");
    assert!(line.contains("\"count\":3"), "{line}");
    assert!(!line.contains("3.0"), "{line}");
}
