//! Compile-time verification that the `serde` feature provides
//! `Serialize`/`Deserialize` on the telemetry data types (C-SERDE).
//! (No serializer crate is in the dependency set, so these are trait
//! bound checks rather than byte-level round trips.)

#![cfg(feature = "serde")]

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn telemetry_data_types_are_serde() {
    assert_serde::<telemetry::Level>();
    assert_serde::<telemetry::Value>();
    assert_serde::<telemetry::RecordKind>();
    assert_serde::<telemetry::json::Json>();
}
