//! Unit suite for [`Histogram::quantile`]: exact values on synthetic
//! bucket fills, edge-case clamping, and a monotonicity property test.
//!
//! The quantile estimator interpolates linearly inside log₂ buckets, so
//! the exactness tests place observations where the interpolation is
//! analytically known (single observations, uniform fills of one
//! bucket), and the property test only asserts what the estimator
//! guarantees for arbitrary data: monotone in `q`, bounded by
//! `[min, max]`, exact at the ends.

use proptest::prelude::*;
use telemetry::Histogram;

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::default();
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.quantile(0.0), None);
    assert_eq!(h.quantile(1.0), None);
}

#[test]
fn single_observation_is_every_quantile() {
    // One value: the clamp to [min, max] makes every quantile exact.
    let h = Histogram::default();
    h.observe(3.0);
    for q in [0.0, 0.1, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(3.0), "q={q}");
    }
}

#[test]
fn interpolates_within_one_bucket() {
    // Two observations inside [2, 4): target rank for q=0.5 is 1.0, so
    // the interpolation sits halfway into the bucket: 2 + 0.5·(4−2) = 3,
    // then clamps into the observed [2.5, 3.5].
    let h = Histogram::default();
    h.observe(2.5);
    h.observe(3.5);
    assert_eq!(h.quantile(0.5), Some(3.0));
    // q=0.25 → rank 0.5 → 2 + 0.25·2 = 2.5 exactly (also the min).
    assert_eq!(h.quantile(0.25), Some(2.5));
    // q=1 → the max observation, not the bucket's upper bound.
    assert_eq!(h.quantile(1.0), Some(3.5));
    assert_eq!(h.quantile(0.0), Some(2.5));
}

#[test]
fn walks_across_buckets() {
    // 10 observations in [1, 2), 90 in [2, 4): p50 falls at rank 50,
    // which is 40/90 of the way through the second bucket.
    let h = Histogram::default();
    for _ in 0..10 {
        h.observe(1.5);
    }
    for _ in 0..90 {
        h.observe(3.0);
    }
    let p50 = h.quantile(0.5).unwrap();
    let expected = 2.0 + (50.0 - 10.0) / 90.0 * (4.0 - 2.0);
    assert!((p50 - expected).abs() < 1e-12, "p50={p50}, expected {expected}");
    // p05 lands exactly at the end of the first bucket's rank range
    // (rank 5 of 10 in [1, 2) → 1.5), clamped within the data.
    let p05 = h.quantile(0.05).unwrap();
    assert!((p05 - 1.5).abs() < 1e-12, "p05={p05}");
}

#[test]
fn edge_buckets_clamp_to_observed_range() {
    // Bucket 0 reaches down to 0 and the top bucket up to infinity; the
    // estimate must still stay inside the observed data.
    let h = Histogram::default();
    h.observe(0.0001); // bucket 0
    h.observe(1e300); // top bucket
    for q in [0.0, 0.3, 0.7, 1.0] {
        let v = h.quantile(q).unwrap();
        assert!((0.0001..=1e300).contains(&v), "q={q} escaped the data: {v}");
    }
    assert_eq!(h.quantile(0.0), Some(0.0001));
    assert_eq!(h.quantile(1.0), Some(1e300));
}

#[test]
fn out_of_range_q_clamps() {
    let h = Histogram::default();
    h.observe(5.0);
    h.observe(7.0);
    assert_eq!(h.quantile(-1.0), h.quantile(0.0));
    assert_eq!(h.quantile(2.0), h.quantile(1.0));
}

proptest! {
    /// For arbitrary positive observations: quantiles are monotone in
    /// `q`, bounded by the observed range, and exact at the endpoints.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1e-6f64..1e9, 1..200),
        qs in proptest::collection::vec(0f64..=1.0, 2..20),
    ) {
        let h = Histogram::default();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &values {
            h.observe(v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!((lo..=hi).contains(&v), "quantile({q}) = {v} outside [{lo}, {hi}]");
            prev = v;
        }
        prop_assert_eq!(h.quantile(0.0).unwrap(), lo);
        prop_assert_eq!(h.quantile(1.0).unwrap(), hi);
    }
}
