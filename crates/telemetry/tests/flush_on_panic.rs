//! A panicking tick must not truncate telemetry output: the panic hook
//! installed by `telemetry::install_panic_flush_hook` (wired by
//! `telemetry::init`) flushes every sink and dumps the flight recorder
//! before the unwind continues.
//!
//! Runs in its own test binary so the process-global panic hook cannot
//! interfere with other tests' panics.

use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex, MutexGuard};
use telemetry::json::Json;
use telemetry::{flight, JsonlSink, Level};

fn serialize() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset_for_tests();
    guard
}

/// A cloneable byte sink: the test keeps one handle while the
/// `BufWriter` inside the `JsonlSink` owns another.
#[derive(Clone, Default)]
struct SharedVec(Arc<Mutex<Vec<u8>>>);

impl SharedVec {
    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

impl Write for SharedVec {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn panic_hook_flushes_buffered_sinks_and_dumps_the_flight_ring() {
    let _g = serialize();
    let out = SharedVec::default();
    // A big buffer guarantees the record sits in the BufWriter, not in
    // the shared vec, until something flushes.
    let sink = JsonlSink::to_writer(BufWriter::with_capacity(1 << 20, out.clone()));
    telemetry::add_sink(Arc::new(sink));
    let dump_path = std::env::temp_dir().join("flush_on_panic_flight.jsonl");
    let _ = std::fs::remove_file(&dump_path);
    let recorder = flight::install(8);
    recorder.set_dump_path(dump_path.clone());
    telemetry::set_level(Level::Info);
    telemetry::install_panic_flush_hook();

    telemetry::event(Level::Info, "before.the.panic", vec![("k".into(), 7u64.into())]);
    assert_eq!(out.contents(), "", "record must still be buffered");

    // Panic hooks run before the unwind is caught, so catch_unwind
    // exercises exactly the crash path without killing the test.
    let result = std::panic::catch_unwind(|| panic!("tick exploded"));
    assert!(result.is_err());

    let flushed = out.contents();
    assert!(flushed.contains("\"name\":\"before.the.panic\""), "not flushed: {flushed:?}");
    let line = flushed.lines().next().expect("one flushed line");
    assert!(Json::parse(line).is_ok(), "flushed line is whole JSON: {line}");

    let dump = std::fs::read_to_string(&dump_path).expect("flight ring dumped on panic");
    let header = Json::parse(dump.lines().next().unwrap()).expect("dump header parses");
    assert_eq!(header.get("schema").and_then(Json::as_str), Some("cs-traffic-flight/v1"));
    assert_eq!(header.get("trigger").and_then(Json::as_str), Some("panic"));
    assert!(dump.contains("before.the.panic"), "ring retained the pre-panic record");
    let _ = std::fs::remove_file(&dump_path);
}
