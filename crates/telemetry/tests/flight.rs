//! Flight-recorder tests: ring-wrap semantics, monotone sequence
//! numbers, and the `cs-traffic-flight/v1` dump shape.
//!
//! Telemetry state is process-global, so every test serializes on one
//! mutex and resets the globals first (same pattern as `telemetry.rs`).

use std::sync::{Mutex, MutexGuard};
use telemetry::flight::{self, FlightRecorder};
use telemetry::json::Json;
use telemetry::Level;

fn serialize() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset_for_tests();
    guard
}

fn emit_events(n: usize) {
    for i in 0..n {
        telemetry::event(Level::Info, "flight.test", vec![("i".into(), (i as u64).into())]);
    }
}

#[test]
fn ring_keeps_the_most_recent_records() {
    let _g = serialize();
    let recorder = flight::install(4);
    telemetry::set_level(Level::Info);
    emit_events(10);

    assert_eq!(recorder.capacity(), 4);
    assert_eq!(recorder.total_captured(), 10, "every record claims a seq");

    let dump = recorder.dump_string("test");
    let lines: Vec<&str> = dump.lines().collect();
    // Header + 4 surviving ring records (no metrics registered).
    assert_eq!(lines.len(), 5, "unexpected dump:\n{dump}");

    let header = Json::parse(lines[0]).expect("header parses");
    assert_eq!(header.get("schema").and_then(Json::as_str), Some("cs-traffic-flight/v1"));
    assert_eq!(header.get("trigger").and_then(Json::as_str), Some("test"));
    assert_eq!(header.get("captured").and_then(Json::as_num), Some(10.0));
    assert_eq!(header.get("dropped").and_then(Json::as_num), Some(6.0));

    // The survivors are exactly the last 4, in seq order, and `seq` is
    // the first key of each line so the dump greps chronologically.
    let mut seqs = Vec::new();
    for line in &lines[1..] {
        assert!(line.starts_with("{\"seq\":"), "seq not first key in {line}");
        let rec = Json::parse(line).expect("ring record parses");
        seqs.push(rec.get("seq").and_then(Json::as_num).expect("numeric seq"));
        assert_eq!(rec.get("name").and_then(Json::as_str), Some("flight.test"));
    }
    assert_eq!(seqs, vec![6.0, 7.0, 8.0, 9.0]);
}

#[test]
fn dump_appends_metric_snapshots_with_continuing_seqs() {
    let _g = serialize();
    let recorder = flight::install(8);
    telemetry::set_level(Level::Info);
    recorder.set_meta("seed", "7");
    recorder.set_meta("seed", "9"); // re-set overwrites
    emit_events(3);
    telemetry::counter("flight.dump.counter").add(2);

    let dump = recorder.dump_string("solve_degraded");
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(lines.len(), 5, "header + 3 events + 1 metric:\n{dump}");

    let header = Json::parse(lines[0]).unwrap();
    assert_eq!(header.get("meta").and_then(|m| m.get("seed")).and_then(Json::as_str), Some("9"),);
    assert!(header.get("git_rev").and_then(Json::as_str).is_some());
    assert!(header.get("created_unix_ms").and_then(Json::as_num).is_some());

    let metric = Json::parse(lines[4]).unwrap();
    assert_eq!(metric.get("type").and_then(Json::as_str), Some("counter"));
    assert_eq!(metric.get("name").and_then(Json::as_str), Some("flight.dump.counter"));
    // Snapshots continue after the ring's 3 records: seq 3.
    assert_eq!(metric.get("seq").and_then(Json::as_num), Some(3.0));
}

#[test]
fn trace_records_reach_the_ring() {
    let _g = serialize();
    let recorder = flight::install(16);
    telemetry::set_level(Level::Trace);
    telemetry::trace_event(
        "serve.trace",
        vec![("trace".into(), "00000000deadbeef".into()), ("stage".into(), "admitted".into())],
    );

    let dump = recorder.dump_string("test");
    let line = dump.lines().nth(1).expect("one ring record");
    let rec = Json::parse(line).unwrap();
    assert_eq!(rec.get("type").and_then(Json::as_str), Some("trace"));
    assert_eq!(
        rec.get("fields").and_then(|f| f.get("trace")).and_then(Json::as_str),
        Some("00000000deadbeef"),
    );
    assert_eq!(
        rec.get("fields").and_then(|f| f.get("stage")).and_then(Json::as_str),
        Some("admitted"),
    );
}

#[test]
fn dump_to_path_creates_parents_and_zero_capacity_clamps() {
    let _g = serialize();
    let recorder = FlightRecorder::new(0);
    assert_eq!(recorder.capacity(), 1, "capacity clamps to at least one slot");

    let dir = std::env::temp_dir().join("flight_test_nested");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("deep/flight_dump.jsonl");
    recorder.dump_to_path(&path, "test").expect("dump creates parent dirs");
    let content = std::fs::read_to_string(&path).expect("dump written");
    assert!(content.starts_with("{\"schema\":\"cs-traffic-flight/v1\""), "{content}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn install_registers_recorder_and_uninstall_forgets_it() {
    let _g = serialize();
    assert!(flight::recorder().is_none(), "reset clears the global recorder");
    let recorder = flight::install(2);
    recorder.set_dump_path(std::path::PathBuf::from("somewhere.jsonl"));
    let seen = flight::recorder().expect("recorder installed");
    assert_eq!(seen.dump_path(), Some(std::path::PathBuf::from("somewhere.jsonl")));
    flight::uninstall();
    assert!(flight::recorder().is_none());
}
