//! Time-dependent fastest-path planning and route evaluation.
//!
//! Standard time-dependent Dijkstra under the FIFO assumption (a later
//! departure never arrives earlier), which holds for any
//! [`crate::TravelTimeField`] because within-slot speeds are constant
//! and traversal times are positive.

use crate::field::TravelTimeField;
use roadnet::{NodeId, RoadNetwork, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A planned trip under a time-dependent field.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRoute {
    /// Segments in traversal order.
    pub segments: Vec<SegmentId>,
    /// Departure time, seconds.
    pub depart_s: u64,
    /// Total travel time, seconds.
    pub travel_time_s: f64,
}

impl TimedRoute {
    /// Arrival time, seconds.
    pub fn arrival_s(&self) -> f64 {
        self.depart_s as f64 + self.travel_time_s
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    arrival: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .arrival
            .partial_cmp(&self.arrival)
            .expect("arrival times are finite")
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-dependent fastest route from `from` to `to` departing at
/// `depart_s`, or `None` when unreachable.
pub fn fastest_route(
    net: &RoadNetwork,
    field: &TravelTimeField,
    from: NodeId,
    to: NodeId,
    depart_s: u64,
) -> Option<TimedRoute> {
    if from == to {
        return Some(TimedRoute { segments: Vec::new(), depart_s, travel_time_s: 0.0 });
    }
    let n = net.node_count();
    let mut best_arrival = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    best_arrival[from.index()] = depart_s as f64;
    heap.push(HeapEntry { arrival: depart_s as f64, node: from });

    while let Some(HeapEntry { arrival, node }) = heap.pop() {
        if node == to {
            break;
        }
        if arrival > best_arrival[node.index()] {
            continue;
        }
        for &sid in net.outgoing(node) {
            let seg = net.segment(sid);
            let t = field.traversal_time_s(net, sid, arrival as u64);
            let next_arrival = arrival + t;
            if next_arrival < best_arrival[seg.to.index()] {
                best_arrival[seg.to.index()] = next_arrival;
                prev[seg.to.index()] = Some(sid);
                heap.push(HeapEntry { arrival: next_arrival, node: seg.to });
            }
        }
    }

    if best_arrival[to.index()].is_infinite() {
        return None;
    }
    let mut segments = Vec::new();
    let mut cur = to;
    while cur != from {
        let sid = prev[cur.index()].expect("reachable node has predecessor");
        segments.push(sid);
        cur = net.segment(sid).from;
    }
    segments.reverse();
    Some(TimedRoute {
        segments,
        depart_s,
        travel_time_s: best_arrival[to.index()] - depart_s as f64,
    })
}

/// Travel time (seconds) of a *given* segment sequence departing at
/// `depart_s`, evaluated under `field`. Used to score a route planned on
/// an estimated field against the ground-truth field.
///
/// # Panics
///
/// Panics when the segments do not form a connected path.
pub fn route_travel_time(
    net: &RoadNetwork,
    field: &TravelTimeField,
    segments: &[SegmentId],
    depart_s: u64,
) -> f64 {
    let mut t = depart_s as f64;
    let mut cur: Option<NodeId> = None;
    for &sid in segments {
        let seg = net.segment(sid);
        if let Some(c) = cur {
            assert_eq!(seg.from, c, "segments do not form a connected path");
        }
        t += field.traversal_time_s(net, sid, t as u64);
        cur = Some(seg.to);
    }
    t - depart_s as f64
}

/// Relative regret of planning on `estimated` instead of `truth`:
/// `(T(route_est) − T(route_opt)) / T(route_opt)`, both evaluated under
/// the ground-truth field. Zero means the estimated field chose an
/// equally fast route.
///
/// Returns `None` when the pair is unreachable.
pub fn planning_regret(
    net: &RoadNetwork,
    truth: &TravelTimeField,
    estimated: &TravelTimeField,
    from: NodeId,
    to: NodeId,
    depart_s: u64,
) -> Option<f64> {
    let optimal = fastest_route(net, truth, from, to, depart_s)?;
    let planned = fastest_route(net, estimated, from, to, depart_s)?;
    let planned_true_time = route_travel_time(net, truth, &planned.segments, depart_s);
    if optimal.travel_time_s <= 0.0 {
        return Some(0.0);
    }
    Some((planned_true_time - optimal.travel_time_s) / optimal.travel_time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;
    use probes::{Granularity, SlotGrid, Tcm};
    use roadnet::builder::RoadNetworkBuilder;
    use roadnet::generator::{generate_grid_city, GridCityConfig};
    use roadnet::geometry::Point;
    use roadnet::RoadClass;

    fn flat_field(net: &RoadNetwork, grid: SlotGrid, kmh: f64) -> TravelTimeField {
        let tcm = Tcm::complete(Matrix::filled(grid.num_slots(), net.segment_count(), kmh));
        TravelTimeField::new(net, tcm, grid).unwrap()
    }

    #[test]
    fn flat_field_matches_static_shortest_path() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 3600, Granularity::Min60);
        let field = flat_field(&net, grid, 36.0);
        let timed = fastest_route(&net, &field, NodeId(0), NodeId(24), 0).unwrap();
        // Under a flat field the geometry decides: 8 blocks of 200 m at
        // 10 m/s = 160 s.
        assert!((timed.travel_time_s - 160.0).abs() < 1e-6, "{}", timed.travel_time_s);
        assert_eq!(timed.arrival_s(), timed.travel_time_s);
        // Route is connected and correct.
        assert_eq!(net.segment(timed.segments[0]).from, NodeId(0));
        assert_eq!(net.segment(*timed.segments.last().unwrap()).to, NodeId(24));
    }

    /// Two-route network: direct (one segment) vs detour (two segments).
    /// The direct road congests at "rush hour" (slot 1).
    fn congestible() -> (RoadNetwork, SlotGrid, TravelTimeField) {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let mid = b.add_node(Point::new(500.0, 400.0));
        let z = b.add_node(Point::new(1000.0, 0.0));
        // Direct: 1000 m.
        b.add_segment(a, z, RoadClass::Arterial, Some(60.0), false).unwrap(); // s0
                                                                              // Detour: ~640 m + ~640 m.
        b.add_segment(a, mid, RoadClass::Local, Some(40.0), false).unwrap(); // s1
        b.add_segment(mid, z, RoadClass::Local, Some(40.0), false).unwrap(); // s2
        let net = b.build().unwrap();
        let grid = SlotGrid::covering(0, 2 * 900, Granularity::Min15);
        // Slot 0: direct fast (60). Slot 1: direct jams to 10 km/h.
        let mut speeds = Matrix::zeros(2, 3);
        speeds.set_row(0, &[60.0, 40.0, 40.0]);
        speeds.set_row(1, &[10.0, 40.0, 40.0]);
        let field = TravelTimeField::new(&net, Tcm::complete(speeds), grid).unwrap();
        (net, grid, field)
    }

    #[test]
    fn planner_reacts_to_time_of_day() {
        let (net, _, field) = congestible();
        // Off-peak: the direct arterial wins.
        let morning = fastest_route(&net, &field, NodeId(0), NodeId(2), 0).unwrap();
        assert_eq!(morning.segments, vec![SegmentId(0)]);
        // Rush hour: the detour wins (direct 1000 m at 10 km/h = 360 s;
        // detour ≈ 2 × 640 m at 40 km/h ≈ 115 s).
        let rush = fastest_route(&net, &field, NodeId(0), NodeId(2), 900).unwrap();
        assert_eq!(rush.segments, vec![SegmentId(1), SegmentId(2)]);
        assert!(rush.travel_time_s < 150.0);
    }

    #[test]
    fn route_travel_time_consistent_with_planner() {
        let (net, _, field) = congestible();
        let trip = fastest_route(&net, &field, NodeId(0), NodeId(2), 900).unwrap();
        let replay = route_travel_time(&net, &field, &trip.segments, 900);
        assert!((replay - trip.travel_time_s).abs() < 1e-9);
    }

    #[test]
    fn regret_zero_when_fields_agree() {
        let (net, _, field) = congestible();
        let r = planning_regret(&net, &field, &field, NodeId(0), NodeId(2), 900).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn regret_positive_for_misleading_field() {
        let (net, grid, truth) = congestible();
        // A field that thinks the direct road is always fast.
        let wrong = flat_field(&net, grid, 60.0);
        let r = planning_regret(&net, &truth, &wrong, NodeId(0), NodeId(2), 900).unwrap();
        // Misled onto the jammed direct road: ~360 s vs ~115 s optimal.
        assert!(r > 1.0, "regret {r}");
    }

    #[test]
    fn unreachable_returns_none() {
        let (net, _, field) = congestible();
        // Node 2 has no outgoing segments: 2 -> 0 is unreachable.
        assert!(fastest_route(&net, &field, NodeId(2), NodeId(0), 0).is_none());
        assert!(planning_regret(&net, &field, &field, NodeId(2), NodeId(0), 0).is_none());
    }

    #[test]
    fn same_node_trivial() {
        let (net, _, field) = congestible();
        let trip = fastest_route(&net, &field, NodeId(1), NodeId(1), 0).unwrap();
        assert!(trip.segments.is_empty());
        assert_eq!(trip.travel_time_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "connected path")]
    fn disconnected_replay_panics() {
        let (net, _, field) = congestible();
        route_travel_time(&net, &field, &[SegmentId(2), SegmentId(0)], 0);
    }

    #[test]
    fn estimated_field_plans_nearly_optimal_routes() {
        // The end-to-end payoff: complete a masked TCM, plan on the
        // estimate, compare trip times under the truth.
        use probes::mask::random_mask;
        use rand::SeedableRng;
        use traffic_sim::{GroundTruthConfig, GroundTruthModel};

        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 86_400, Granularity::Min30);
        let model = GroundTruthModel::generate(&net, grid, &GroundTruthConfig::default());
        let truth_tcm = model.tcm();
        let truth_field = TravelTimeField::new(&net, truth_tcm.clone(), grid).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mask = random_mask(truth_tcm.num_slots(), truth_tcm.num_segments(), 0.3, &mut rng);
        let observed = truth_tcm.masked(&mask).unwrap();
        let cfg = traffic_cs::cs::CsConfig { rank: 2, lambda: 0.5, ..Default::default() };
        let est = traffic_cs::cs::complete_matrix(&observed, &cfg).unwrap();
        let est_field = TravelTimeField::from_estimate(&net, &est, grid).unwrap();

        let mut total_regret = 0.0;
        let mut trips = 0;
        for (from, to, depart) in
            [(0u32, 24u32, 8 * 3600u64), (4, 20, 18 * 3600), (2, 22, 12 * 3600)]
        {
            if let Some(r) =
                planning_regret(&net, &truth_field, &est_field, NodeId(from), NodeId(to), depart)
            {
                assert!(r >= -1e-9, "regret cannot be negative: {r}");
                total_regret += r;
                trips += 1;
            }
        }
        assert!(trips > 0);
        let mean = total_regret / trips as f64;
        assert!(mean < 0.15, "mean planning regret {mean}");
    }
}
