//! Application layer over recovered traffic condition matrices.
//!
//! The paper's introduction motivates traffic estimation with downstream
//! tasks — "trip planning, traffic management, road engineering and
//! infrastructure planning". This crate implements the first of those on
//! top of the reproduction's estimates:
//!
//! * [`TravelTimeField`] — a time-dependent speed field over a road
//!   network, backed by any complete (estimated or ground-truth) TCM;
//! * [`planner`] — time-dependent fastest-path search and route
//!   evaluation, so the quality of a traffic *estimate* can be measured
//!   in the currency end users care about: trip time regret.
//!
//! # Example
//!
//! ```
//! use navigator::{TravelTimeField, planner};
//! use roadnet::generator::{generate_grid_city, GridCityConfig};
//! use roadnet::NodeId;
//! use probes::{Granularity, SlotGrid, Tcm};
//! use linalg::Matrix;
//!
//! let net = generate_grid_city(&GridCityConfig::small_test());
//! let grid = SlotGrid::covering(0, 3600, Granularity::Min15);
//! // A flat 30 km/h field for the demo.
//! let tcm = Tcm::complete(Matrix::filled(grid.num_slots(), net.segment_count(), 30.0));
//! let field = TravelTimeField::new(&net, tcm, grid)?;
//! let trip = planner::fastest_route(&net, &field, NodeId(0), NodeId(24), 0).unwrap();
//! assert!(trip.travel_time_s > 0.0);
//! # Ok::<(), navigator::FieldError>(())
//! ```

pub mod field;
pub mod planner;

pub use field::{FieldError, TravelTimeField};
pub use planner::TimedRoute;
