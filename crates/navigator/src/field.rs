//! Time-dependent travel-time fields.

use linalg::Matrix;
use probes::{SlotGrid, Tcm};
use roadnet::{RoadNetwork, SegmentId};

/// Error constructing a [`TravelTimeField`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldError {
    /// The TCM's segment count does not match the network.
    SegmentMismatch {
        /// Columns in the TCM.
        tcm: usize,
        /// Segments in the network.
        network: usize,
    },
    /// The TCM's slot count does not match the grid.
    SlotMismatch {
        /// Rows in the TCM.
        tcm: usize,
        /// Slots in the grid.
        grid: usize,
    },
    /// The TCM is not complete — fields require an estimate for every
    /// cell (run matrix completion first).
    Incomplete {
        /// Fraction of observed entries found.
        integrity: f64,
    },
    /// A speed is non-positive or non-finite at the given cell.
    InvalidSpeed {
        /// Time slot of the offending cell.
        slot: usize,
        /// Segment column of the offending cell.
        segment: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::SegmentMismatch { tcm, network } => {
                write!(f, "TCM has {tcm} segments but the network has {network}")
            }
            FieldError::SlotMismatch { tcm, grid } => {
                write!(f, "TCM has {tcm} slots but the grid has {grid}")
            }
            FieldError::Incomplete { integrity } => {
                write!(f, "TCM is incomplete (integrity {integrity:.3}); complete it first")
            }
            FieldError::InvalidSpeed { slot, segment, value } => {
                write!(f, "invalid speed {value} at slot {slot}, segment {segment}")
            }
        }
    }
}

impl std::error::Error for FieldError {}

/// Minimum speed a field will report, km/h — keeps traversal times
/// finite even if an estimate undershoots.
pub const MIN_FIELD_SPEED_KMH: f64 = 1.0;

/// A complete, time-dependent speed field over a road network.
///
/// Wraps a *complete* TCM (every cell estimated) and its slot grid;
/// queries outside the grid clamp to the nearest slot.
#[derive(Debug, Clone)]
pub struct TravelTimeField {
    speeds: Matrix,
    grid: SlotGrid,
}

impl TravelTimeField {
    /// Builds a field from a complete TCM aligned with `net` (column `i`
    /// = segment id `i`) and `grid`.
    ///
    /// # Errors
    ///
    /// See [`FieldError`]; notably the TCM must be complete and all
    /// speeds finite and positive (estimates may be clamped with
    /// [`TravelTimeField::from_estimate`] instead).
    pub fn new(net: &RoadNetwork, tcm: Tcm, grid: SlotGrid) -> Result<Self, FieldError> {
        if tcm.num_segments() != net.segment_count() {
            return Err(FieldError::SegmentMismatch {
                tcm: tcm.num_segments(),
                network: net.segment_count(),
            });
        }
        if tcm.num_slots() != grid.num_slots() {
            return Err(FieldError::SlotMismatch { tcm: tcm.num_slots(), grid: grid.num_slots() });
        }
        if tcm.integrity() < 1.0 {
            return Err(FieldError::Incomplete { integrity: tcm.integrity() });
        }
        let speeds = tcm.values().clone();
        for (slot, segment, v) in speeds.iter() {
            if !v.is_finite() || v <= 0.0 {
                return Err(FieldError::InvalidSpeed { slot, segment, value: v });
            }
        }
        Ok(Self { speeds, grid })
    }

    /// Builds a field from a raw completion estimate, clamping each
    /// speed into `[MIN_FIELD_SPEED_KMH, 1.2 × the segment's free-flow
    /// speed]` — matrix completion does not know physics, so downstream
    /// consumers clamp.
    ///
    /// # Errors
    ///
    /// Shape mismatches and non-finite entries are still rejected.
    pub fn from_estimate(
        net: &RoadNetwork,
        estimate: &Matrix,
        grid: SlotGrid,
    ) -> Result<Self, FieldError> {
        if estimate.cols() != net.segment_count() {
            return Err(FieldError::SegmentMismatch {
                tcm: estimate.cols(),
                network: net.segment_count(),
            });
        }
        if estimate.rows() != grid.num_slots() {
            return Err(FieldError::SlotMismatch { tcm: estimate.rows(), grid: grid.num_slots() });
        }
        let mut speeds = Matrix::zeros(estimate.rows(), estimate.cols());
        for (slot, segment, v) in estimate.iter() {
            if !v.is_finite() {
                return Err(FieldError::InvalidSpeed { slot, segment, value: v });
            }
            let cap = net.segment(SegmentId(segment as u32)).free_flow_kmh * 1.2;
            speeds.set(slot, segment, v.clamp(MIN_FIELD_SPEED_KMH, cap));
        }
        Ok(Self { speeds, grid })
    }

    /// The slot grid the field is defined over.
    pub fn grid(&self) -> &SlotGrid {
        &self.grid
    }

    /// Speed (km/h) of `segment` at absolute time `t_s`; times outside
    /// the grid clamp to the nearest covered slot.
    pub fn speed_kmh(&self, segment: SegmentId, t_s: u64) -> f64 {
        let slot = self.grid.slot_of(t_s).unwrap_or(if t_s < self.grid.start_s() {
            0
        } else {
            self.grid.num_slots() - 1
        });
        self.speeds.get(slot, segment.index())
    }

    /// Time (seconds) to traverse `segment` departing its upstream end
    /// at `t_s`, under the paper's within-slot-uniform assumption.
    pub fn traversal_time_s(&self, net: &RoadNetwork, segment: SegmentId, t_s: u64) -> f64 {
        let speed_ms = self.speed_kmh(segment, t_s) / 3.6;
        net.segment(segment).length_m / speed_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probes::Granularity;
    use roadnet::generator::{generate_grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, SlotGrid) {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let grid = SlotGrid::covering(0, 2 * 3600, Granularity::Min15);
        (net, grid)
    }

    #[test]
    fn valid_field_answers_queries() {
        let (net, grid) = setup();
        let tcm = Tcm::complete(Matrix::filled(8, net.segment_count(), 36.0));
        let field = TravelTimeField::new(&net, tcm, grid).unwrap();
        assert_eq!(field.speed_kmh(SegmentId(0), 100), 36.0);
        // 200 m at 36 km/h (10 m/s) = 20 s.
        let t = field.traversal_time_s(&net, SegmentId(0), 100);
        assert!((t - 20.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_window_clamps() {
        let (net, grid) = setup();
        let mut m = Matrix::filled(8, net.segment_count(), 30.0);
        m.set_row(7, &vec![50.0; net.segment_count()]);
        let field = TravelTimeField::new(&net, Tcm::complete(m), grid).unwrap();
        assert_eq!(field.speed_kmh(SegmentId(0), 10 * 3600), 50.0); // past end
    }

    #[test]
    fn rejects_incomplete_and_mismatched() {
        let (net, grid) = setup();
        let n = net.segment_count();
        let wrong_cols = Tcm::complete(Matrix::filled(8, n + 1, 30.0));
        assert!(matches!(
            TravelTimeField::new(&net, wrong_cols, grid),
            Err(FieldError::SegmentMismatch { .. })
        ));
        let wrong_rows = Tcm::complete(Matrix::filled(9, n, 30.0));
        assert!(matches!(
            TravelTimeField::new(&net, wrong_rows, grid),
            Err(FieldError::SlotMismatch { .. })
        ));
        let mut mask = Matrix::filled(8, n, 1.0);
        mask.set(0, 0, 0.0);
        let incomplete = Tcm::complete(Matrix::filled(8, n, 30.0)).masked(&mask).unwrap();
        assert!(matches!(
            TravelTimeField::new(&net, incomplete, grid),
            Err(FieldError::Incomplete { .. })
        ));
    }

    #[test]
    fn rejects_bad_speeds() {
        let (net, grid) = setup();
        let mut m = Matrix::filled(8, net.segment_count(), 30.0);
        m.set(2, 3, 0.0);
        assert!(matches!(
            TravelTimeField::new(&net, Tcm::complete(m), grid),
            Err(FieldError::InvalidSpeed { slot: 2, segment: 3, .. })
        ));
    }

    #[test]
    fn from_estimate_clamps() {
        let (net, grid) = setup();
        let n = net.segment_count();
        let mut est = Matrix::filled(8, n, 30.0);
        est.set(0, 0, -10.0); // nonsense estimate
        est.set(0, 1, 500.0); // absurdly fast
        let field = TravelTimeField::from_estimate(&net, &est, grid).unwrap();
        assert_eq!(field.speed_kmh(SegmentId(0), 0), MIN_FIELD_SPEED_KMH);
        let cap = net.segment(SegmentId(1)).free_flow_kmh * 1.2;
        assert!((field.speed_kmh(SegmentId(1), 0) - cap).abs() < 1e-9);
        // NaN still rejected.
        est.set(0, 2, f64::NAN);
        assert!(TravelTimeField::from_estimate(&net, &est, grid).is_err());
    }
}
