//! Property tests of the time-dependent planner's contracts.

use linalg::Matrix;
use navigator::{planner, TravelTimeField};
use probes::{Granularity, SlotGrid, Tcm};
use proptest::prelude::*;
use roadnet::generator::{generate_grid_city, GridCityConfig};
use roadnet::NodeId;

fn setup(seed: u64) -> (roadnet::RoadNetwork, TravelTimeField) {
    let mut cfg = GridCityConfig::small_test();
    cfg.seed = seed;
    let net = generate_grid_city(&cfg);
    let grid = SlotGrid::covering(0, 24 * 3600, Granularity::Min60);
    // Time-varying speeds per segment: deterministic pseudo-random but
    // bounded, so the FIFO property holds within each slot.
    let speeds = Matrix::from_fn(grid.num_slots(), net.segment_count(), |t, s| {
        20.0 + ((t * 31 + s * 17 + seed as usize) % 30) as f64
    });
    let field = TravelTimeField::new(&net, Tcm::complete(speeds), grid).unwrap();
    (net, field)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A planned route's replayed travel time equals the planner's claim,
    /// and it never beats any alternative the planner could have chosen.
    #[test]
    fn planner_claims_are_replayable(seed in 0u64..1000, od in 0usize..600, depart_h in 0u64..24) {
        let (net, field) = setup(seed);
        let n = net.node_count();
        let from = NodeId((od % n) as u32);
        let to = NodeId(((od * 13 + 5) % n) as u32);
        let depart = depart_h * 3600;
        let route = planner::fastest_route(&net, &field, from, to, depart).unwrap();
        if from == to {
            prop_assert_eq!(route.travel_time_s, 0.0);
            return Ok(());
        }
        let replay = planner::route_travel_time(&net, &field, &route.segments, depart);
        prop_assert!((replay - route.travel_time_s).abs() < 1e-9);
        prop_assert!(route.travel_time_s > 0.0);
        prop_assert!(route.arrival_s() >= depart as f64);
    }

    /// Optimality spot-check: the planner's route is no slower than the
    /// static free-flow shortest path replayed under the field.
    #[test]
    fn beats_or_matches_static_route(seed in 0u64..1000, od in 0usize..600) {
        let (net, field) = setup(seed);
        let n = net.node_count();
        let from = NodeId((od % n) as u32);
        let to = NodeId(((od * 7 + 3) % n) as u32);
        prop_assume!(from != to);
        let depart = 8 * 3600;
        let dynamic = planner::fastest_route(&net, &field, from, to, depart).unwrap();
        let static_route = roadnet::routing::shortest_path(&net, from, to).unwrap();
        let static_replay =
            planner::route_travel_time(&net, &field, &static_route.segments, depart);
        prop_assert!(dynamic.travel_time_s <= static_replay + 1e-9,
            "dynamic {} > static {}", dynamic.travel_time_s, static_replay);
    }

    /// Regret of planning on the truth itself is always zero.
    #[test]
    fn self_regret_is_zero(seed in 0u64..1000, od in 0usize..600) {
        let (net, field) = setup(seed);
        let n = net.node_count();
        let from = NodeId((od % n) as u32);
        let to = NodeId(((od * 11 + 1) % n) as u32);
        prop_assume!(from != to);
        let r = planner::planning_regret(&net, &field, &field, from, to, 12 * 3600).unwrap();
        prop_assert!(r.abs() < 1e-9, "self-regret {}", r);
    }
}
