//! End-to-end properties of the chaos harness: determinism, thread
//! invariance, oracle health across a seed sweep, fault coverage, and
//! telemetry integration.

use chaos::{run, ChaosConfig, ChaosReport};
use traffic_cs::service::Backpressure;

fn run_cfg(seed: u64, ticks: usize, num_threads: usize) -> ChaosReport {
    let report =
        run(&ChaosConfig { seed, ticks, num_threads, check_counters: false, ..Default::default() })
            .expect("chaos run constructs");
    assert!(report.oracle_ok(), "oracle violations for seed {seed}: {:#?}", report.oracle_failures);
    report
}

fn fingerprint(r: &ChaosReport) -> (u64, u64, u64, u64, u64, String) {
    (
        r.lines_total,
        r.parse_rejected,
        r.estimate_hash,
        r.window_hash,
        r.fault_log_hash,
        r.summary_line(),
    )
}

#[test]
fn same_seed_same_everything() {
    let a = run_cfg(3, 24, 1);
    let b = run_cfg(3, 24, 1);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.fault_log, b.fault_log);
}

#[test]
fn report_is_invariant_across_thread_counts() {
    let one = run_cfg(7, 24, 1);
    let two = run_cfg(7, 24, 2);
    let four = run_cfg(7, 24, 4);
    assert_eq!(fingerprint(&one), fingerprint(&two));
    assert_eq!(fingerprint(&one), fingerprint(&four));
    assert_ne!(one.estimate_hash, 0, "a 24-tick run must produce an estimate");
}

#[test]
fn different_seeds_diverge() {
    let a = run_cfg(100, 16, 1);
    let b = run_cfg(101, 16, 1);
    assert_ne!(
        (a.fault_log_hash, a.window_hash),
        (b.fault_log_hash, b.window_hash),
        "distinct seeds should produce distinct runs"
    );
}

/// The library-level mini-sweep: every seed's oracle must hold, and
/// collectively the seeds must exercise every counter and both
/// backpressure policies — otherwise the harness is quietly testing
/// less than it claims.
#[test]
fn seed_sweep_is_green_and_covers_the_fault_space() {
    let reports: Vec<ChaosReport> = (1..=8).map(|seed| run_cfg(seed, 24, 1)).collect();
    let mut policies = std::collections::HashSet::new();
    let sum = |f: &dyn Fn(&ChaosReport) -> u64| reports.iter().map(f).sum::<u64>();
    for r in &reports {
        policies.insert(r.backpressure == Backpressure::DropNewest);
    }
    assert_eq!(policies.len(), 2, "sweep must cover both backpressure policies");
    assert!(sum(&|r| r.stats.admitted) > 0);
    assert!(sum(&|r| r.stats.rejected) > 0, "semantic line faults must reach the service");
    assert!(sum(&|r| r.stats.dropped_late) > 0, "late reports must land");
    assert!(sum(&|r| r.stats.duplicates) > 0, "duplicate bursts must land");
    assert!(sum(&|r| r.stats.queue_dropped) > 0, "queue spikes must overflow the queue");
    assert!(sum(&|r| r.stats.degraded) > 0, "zero-budget sabotage must degrade a solve");
    assert!(sum(&|r| r.parse_rejected) > 0, "structural line faults must fail parsing");
    assert!(sum(&|r| r.checkpoint_rejections) > 0, "checkpoint corruption must be rejected");
    assert!(sum(&|r| r.fault_log.len() as u64) > 0);
}

/// The incremental solve path (dirty-set updates + solve cache, the
/// shipped default) and a forced full-sweep-every-tick run must tell
/// the same story line for line: the final audit cold-restarts the
/// estimator and refreshes, so estimate/window hashes are solve-mode
/// invariant, and the solve/degraded counters are mode-independent by
/// construction (cache hits still count as solves). CI diffs exactly
/// these summary lines across a 16-seed sweep.
#[test]
fn full_sweep_only_runs_tell_the_same_story() {
    for seed in [2, 9] {
        let incremental = run_cfg(seed, 24, 1);
        let full = run(&ChaosConfig {
            seed,
            ticks: 24,
            num_threads: 1,
            full_sweep_only: true,
            ..Default::default()
        })
        .expect("chaos run constructs");
        assert!(full.oracle_ok(), "full-sweep oracle failed for seed {seed}");
        assert_eq!(
            incremental.summary_line(),
            full.summary_line(),
            "solve mode leaked into the chaos report for seed {seed}"
        );
    }
}

/// A sharded engine under the full fault barrage must still pass the
/// oracle: conservation and the dedup bound always hold, and the final
/// merged estimate must equal the stitched per-shard offline replay.
/// (Mirror-exact counter checks are a single-shard contract — per-shard
/// bounded queues split spikes — so the audit swaps those for the
/// stitched replay; see `sim::audit`.)
#[test]
fn sharded_runs_pass_the_oracle_at_any_thread_count() {
    let run_sharded = |num_threads: usize| {
        let report =
            run(&ChaosConfig { seed: 11, ticks: 16, num_threads, shards: 3, ..Default::default() })
                .expect("sharded chaos run constructs");
        assert!(
            report.oracle_ok(),
            "sharded oracle violations ({num_threads} threads): {:#?}",
            report.oracle_failures
        );
        report
    };
    let one = run_sharded(1);
    let two = run_sharded(2);
    assert_ne!(one.estimate_hash, 0, "a 16-tick sharded run must produce an estimate");
    assert_eq!(fingerprint(&one), fingerprint(&two), "shard workers leaked thread state");
}

/// The connection-level harness: mid-frame cuts, adversarial write
/// boundaries, and slow-loris stalls against a live daemon. The summary
/// line must be byte-identical across solver thread counts, every
/// admission counter the stream was built to exercise must fire, and
/// counter conservation must hold across the dropped connections.
#[test]
fn connection_faults_pass_the_oracle_and_are_thread_invariant() {
    use chaos::{run_net, NetChaosConfig};
    let run_once = |num_threads: usize| {
        let report = run_net(&NetChaosConfig { seed: 5, num_threads, ..Default::default() })
            .expect("net chaos run constructs");
        assert!(
            report.oracle_ok(),
            "net oracle violations ({num_threads} threads): {:#?}",
            report.oracle_failures
        );
        report
    };
    let one = run_once(1);
    let two = run_once(2);
    assert_eq!(one.summary_line(), two.summary_line(), "thread count leaked onto the wire");
    assert_eq!(one.daemon.protocol_errors, 4, "2 cut + 2 loris clients must each cost one error");
    assert!(one.delivered < one.sent, "cuts must strand some reports");
    assert!(one.stats.rejected > 0, "poison reports must cross the wire and be rejected");
    assert!(one.stats.dropped_late > 0, "pre-grid reports must be dropped late");
    assert!(one.stats.duplicates > 0, "duplicate reports must be deduplicated");
    assert_eq!(one.stats.queue_dropped, 0, "the net harness must never overflow a queue");
    assert_ne!(one.estimate_hash, 0, "the delivered stream must produce an estimate");
}

/// Fault injections surface as `chaos.fault` telemetry events. The
/// capture is filtered by this test's unique seed because telemetry
/// state is process-global and other tests in this binary may be
/// emitting concurrently.
#[test]
fn fault_injections_emit_telemetry_events() {
    use std::sync::Arc;
    use telemetry::{CaptureSink, Level, Value};

    const SEED: u64 = 987_654;
    let sink = Arc::new(CaptureSink::new());
    telemetry::add_sink(sink.clone());
    telemetry::set_level(Level::Debug);
    let report = run_cfg(SEED, 24, 1);
    telemetry::set_level(Level::Off);

    let records = sink.records();
    let mine = records
        .iter()
        .filter(|r| {
            r.name == "chaos.fault"
                && r.fields.iter().any(|(k, v)| k == "seed" && *v == Value::UInt(SEED))
        })
        .count();
    assert_eq!(
        mine,
        report.fault_log.len(),
        "every logged fault must emit exactly one chaos.fault event"
    );
}
