//! The differential oracle's model half: an independent re-implementation
//! of the streaming service's admission, backpressure, windowing, and
//! solve-scheduling semantics, built on plain `Vec`s and a modular ring
//! instead of the service's `VecDeque` machinery.
//!
//! The mirror is fed the *same* observation stream as the real
//! [`Service`] and predicts, exactly:
//!
//! * every [`ServeStats`] counter (admitted / rejected / dropped_late /
//!   duplicates / queue_dropped / solves / degraded),
//! * the final window contents **bit-for-bit** — it replays the same
//!   f64 additions, retractions, and `sum / count` divisions in the
//!   same order per cell, so even accumulated rounding matches.
//!
//! Because it shares no code with the service (it does not even link
//! `probes::StreamingTcm`), agreement is evidence of correct behaviour
//! rather than of a common bug.
//!
//! [`Service`]: traffic_cs::Service

use std::collections::{HashMap, VecDeque};
use traffic_cs::service::{Backpressure, Observation, ServeStats};

/// Independent model of one `Service`'s observable state.
#[derive(Debug, Clone)]
pub struct Mirror {
    start_s: u64,
    slot_len_s: u64,
    window_slots: usize,
    num_segments: usize,
    queue_capacity: usize,
    backpressure: Backpressure,
    /// Ingest queue model (same bound + policy as the service's).
    queue: VecDeque<Observation>,
    /// Absolute index of the newest covered slot.
    head_slot: usize,
    /// Simulated clock: max non-malformed timestamp seen.
    clock_s: u64,
    /// Ring of per-slot accumulators keyed by `abs_slot % window_slots`
    /// — arithmetically identical to the service's pop-front/push-back
    /// ring because each absolute slot owns exactly one accumulator
    /// from first touch to eviction.
    sums: Vec<Vec<f64>>,
    counts: Vec<Vec<f64>>,
    /// Dedup map: admitted key -> last admitted speed.
    seen: HashMap<(u64, u64, usize), f64>,
    stats: ServeStats,
    dirty: bool,
    /// Whether any solve has succeeded (predicts `latest().is_some()`).
    has_estimate: bool,
}

impl Mirror {
    /// Builds a mirror for a service with the given grid and queue
    /// geometry. Parameters correspond to `ServeConfig` fields.
    pub fn new(
        start_s: u64,
        slot_len_s: u64,
        window_slots: usize,
        num_segments: usize,
        queue_capacity: usize,
        backpressure: Backpressure,
    ) -> Self {
        Self {
            start_s,
            slot_len_s,
            window_slots,
            num_segments,
            queue_capacity,
            backpressure,
            queue: VecDeque::new(),
            head_slot: window_slots - 1,
            clock_s: 0,
            sums: vec![vec![0.0; num_segments]; window_slots],
            counts: vec![vec![0.0; num_segments]; window_slots],
            seen: HashMap::new(),
            stats: ServeStats::default(),
            dirty: false,
            has_estimate: false,
        }
    }

    /// Predicted counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Predicts `Service::latest().is_some()`.
    pub fn has_estimate(&self) -> bool {
        self.has_estimate
    }

    /// Oldest covered absolute slot.
    fn tail_slot(&self) -> usize {
        self.head_slot + 1 - self.window_slots
    }

    fn slot_of(&self, timestamp_s: u64) -> Option<usize> {
        timestamp_s.checked_sub(self.start_s).map(|d| (d / self.slot_len_s) as usize)
    }

    /// Mirrors `Service::push`: same bound, same policy, same counter.
    pub fn push(&mut self, obs: Observation) {
        if self.queue.len() >= self.queue_capacity {
            self.stats.queue_dropped += 1;
            match self.backpressure {
                Backpressure::DropNewest => return,
                Backpressure::DropOldest => {
                    self.queue.pop_front();
                }
            }
        }
        self.queue.push_back(obs);
    }

    /// Slides the window head to `slot`, zeroing every newly covered
    /// accumulator — the modular equivalent of the service's ring
    /// rotation (evicted and newly covered slots share storage).
    fn advance(&mut self, slot: usize) {
        let from = (self.head_slot + 1).max(slot.saturating_sub(self.window_slots - 1));
        for abs in from..=slot {
            let i = abs % self.window_slots;
            self.sums[i].iter_mut().for_each(|v| *v = 0.0);
            self.counts[i].iter_mut().for_each(|v| *v = 0.0);
        }
        self.head_slot = slot;
    }

    /// Mirrors `Service::admit` rule for rule, in the same order.
    fn admit(&mut self, obs: Observation) {
        if !obs.speed_kmh.is_finite() || obs.speed_kmh < 0.0 || obs.segment >= self.num_segments {
            self.stats.rejected += 1;
            return;
        }
        if obs.timestamp_s > self.clock_s {
            self.clock_s = obs.timestamp_s;
        }
        let slot = self.slot_of(obs.timestamp_s);
        let late = match slot {
            None => true,
            Some(s) => s < self.tail_slot(),
        };
        if late {
            self.stats.dropped_late += 1;
            return;
        }
        let slot = slot.expect("late check passed");
        let key = (obs.vehicle, obs.timestamp_s, obs.segment);
        if let Some(&old_speed) = self.seen.get(&key) {
            self.stats.duplicates += 1;
            // A seen key's slot is necessarily <= head (it was admitted
            // when head was no larger), so retraction never advances.
            let i = slot % self.window_slots;
            self.sums[i][obs.segment] -= old_speed;
            self.counts[i][obs.segment] -= 1.0;
            if self.counts[i][obs.segment] == 0.0 {
                self.sums[i][obs.segment] = 0.0;
            }
        }
        if slot > self.head_slot {
            self.advance(slot);
        }
        let i = slot % self.window_slots;
        self.sums[i][obs.segment] += obs.speed_kmh;
        self.counts[i][obs.segment] += 1.0;
        self.seen.insert(key, obs.speed_kmh);
        self.stats.admitted += 1;
        self.dirty = true;
    }

    fn prune_seen(&mut self) {
        let tail = self.tail_slot();
        let start = self.start_s;
        let slot_len = self.slot_len_s;
        self.seen.retain(|&(_, ts, _), _| match ts.checked_sub(start) {
            Some(d) => (d / slot_len) as usize >= tail,
            None => false,
        });
    }

    /// Cells currently holding at least one observation.
    pub fn observed_cells(&self) -> usize {
        self.counts.iter().flat_map(|row| row.iter()).filter(|&&c| c > 0.0).count()
    }

    /// Mirrors `Service::tick`: drain, prune, then predict the solve
    /// outcome. `zero_budget` marks a tick sabotaged with a zero
    /// wall-clock budget (a successful solve also counts as degraded).
    pub fn tick(&mut self, zero_budget: bool) {
        while let Some(obs) = self.queue.pop_front() {
            self.admit(obs);
        }
        self.prune_seen();
        if self.dirty {
            self.predict_solve(zero_budget);
        }
    }

    /// Mirrors `Service::refresh` (no sabotage active).
    pub fn refresh(&mut self) {
        self.dirty = true;
        self.predict_solve(false);
    }

    /// The solve contract: a non-empty dirty window always solves (the
    /// only solver error is "no observations"); an empty dirty window
    /// degrades and stays dirty so the next tick retries.
    fn predict_solve(&mut self, zero_budget: bool) {
        if self.observed_cells() > 0 {
            self.stats.solves += 1;
            self.dirty = false;
            self.has_estimate = true;
            if zero_budget {
                self.stats.degraded += 1;
            }
        } else {
            self.stats.degraded += 1;
        }
    }

    /// Materializes the predicted window as a [`probes::Tcm`], row 0 =
    /// oldest slot — for bit-for-bit comparison against
    /// `Service::window_snapshot` and for the offline replay solve.
    pub fn expected_tcm(&self) -> probes::Tcm {
        let m = self.window_slots;
        let n = self.num_segments;
        let mut values = linalg::Matrix::zeros(m, n);
        let mut indicator = linalg::Matrix::zeros(m, n);
        for r in 0..m {
            let i = (self.tail_slot() + r) % self.window_slots;
            for c in 0..n {
                let cnt = self.counts[i][c];
                if cnt > 0.0 {
                    values.set(r, c, self.sums[i][c] / cnt);
                    indicator.set(r, c, 1.0);
                }
            }
        }
        probes::Tcm::new(values, indicator).expect("indicator is 0/1 by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_cs::service::ServeConfig;
    use traffic_cs::Service;

    fn obs(vehicle: u64, ts: u64, segment: usize, speed: f64) -> Observation {
        Observation { vehicle, timestamp_s: ts, segment, speed_kmh: speed }
    }

    fn pair(policy: Backpressure, capacity: usize) -> (Service, Mirror) {
        let cfg = ServeConfig::builder()
            .start_s(600)
            .slot_len_s(60)
            .window_slots(4)
            .num_segments(3)
            .queue_capacity(capacity)
            .backpressure(policy)
            .build()
            .unwrap();
        let service = Service::new(cfg).unwrap();
        let mirror = Mirror::new(600, 60, 4, 3, capacity, policy);
        (service, mirror)
    }

    /// Every admission class plus dedup and eviction: the mirror must
    /// track the real service exactly — counters and window bits.
    #[test]
    fn mirror_tracks_service_through_mixed_stream() {
        let (mut service, mut mirror) = pair(Backpressure::DropNewest, 64);
        let stream = [
            obs(1, 610, 0, 30.0),          // admitted, slot 0
            obs(2, 610, 0, f64::NAN),      // rejected
            obs(3, 5, 1, 40.0),            // pre-grid late
            obs(1, 610, 0, 35.0),          // duplicate, last write wins
            obs(4, 600 + 7 * 60, 2, 50.0), // admitted, advances head
            obs(5, 615, 0, 20.0),          // now-evicted slot -> late
        ];
        for o in stream {
            assert!(service.push(o));
            mirror.push(o);
        }
        service.tick();
        mirror.tick(false);
        assert_eq!(service.stats(), mirror.stats());
        let snap = service.window_snapshot();
        let exp = mirror.expected_tcm();
        for r in 0..snap.num_slots() {
            for c in 0..snap.num_segments() {
                assert_eq!(
                    snap.get(r, c).map(f64::to_bits),
                    exp.get(r, c).map(f64::to_bits),
                    "cell ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn mirror_tracks_backpressure_both_policies() {
        for policy in [Backpressure::DropNewest, Backpressure::DropOldest] {
            let (mut service, mut mirror) = pair(policy, 2);
            for i in 0..5u64 {
                let o = obs(i, 620 + i, 0, 25.0 + i as f64);
                service.push(o);
                mirror.push(o);
            }
            service.tick();
            mirror.tick(false);
            assert_eq!(service.stats(), mirror.stats(), "{policy:?}");
            assert_eq!(mirror.stats().queue_dropped, 3);
        }
    }

    #[test]
    fn empty_window_refresh_predicts_degraded() {
        let (mut service, mut mirror) = pair(Backpressure::DropNewest, 8);
        service.refresh();
        mirror.refresh();
        assert_eq!(service.stats(), mirror.stats());
        assert_eq!(mirror.stats().degraded, 1);
        assert!(!mirror.has_estimate());
        assert!(service.latest().is_none());
    }
}
