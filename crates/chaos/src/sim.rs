//! The simulation driver: replays a synthetic probe stream through a
//! real [`Service`] tick by tick while the [`FaultPlan`] injects
//! corruption, and a [`Mirror`] independently predicts what the service
//! must do about it.
//!
//! Everything derives from the seed: the road network, the ground-truth
//! speeds, the probe stream, and the fault schedule. A failing run is
//! therefore fully reproducible from the seed alone — that is the
//! contract the CI sweep relies on.
//!
//! [`Service`]: traffic_cs::Service

use crate::codec;
use crate::oracle::Mirror;
use crate::plan::{FaultKind, FaultPlan, Sabotage};
use crate::Fnv;
use linalg::Matrix;
use probes::{Granularity, SlotGrid};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;
use telemetry::Level;
use traffic_cs::cs::complete_matrix_detailed;
use traffic_cs::service::{Backpressure, Observation, ServeConfig, ServeStats};
use traffic_cs::sharded::{ShardPlan, ShardedService};
use traffic_cs::{CsConfig, Error};
use traffic_sim::{sample_probe_stream, GroundTruthConfig, GroundTruthModel, ProbeStreamConfig};

/// Fixed simulation geometry. Small enough that a full 24-tick run with
/// a solve per tick completes in milliseconds; large enough that every
/// fault class has room to fire (the window must be able to evict slots
/// and the queue must be able to overflow).
pub(crate) const SEGMENTS: usize = 8;
pub(crate) const WINDOW_SLOTS: usize = 8;
pub(crate) const SLOT_LEN_S: u64 = 900;
pub(crate) const START_S: u64 = 3600;
const QUEUE_CAPACITY: usize = 24;

/// Parameters of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for everything: traffic, probes, and the fault plan.
    pub seed: u64,
    /// Number of service ticks (= time slots) to simulate.
    pub ticks: usize,
    /// Worker threads for the solver (`CsConfig::num_threads`); the
    /// report must be identical for every value.
    pub num_threads: usize,
    /// Cross-check the `serve.*` telemetry counters against the
    /// service's stats. Only valid when this run is the process's sole
    /// metrics producer (the CLI path); defaults to off so library
    /// tests can run concurrently.
    pub check_counters: bool,
    /// Causal-trace sampling modulus passed to the service (see
    /// [`ServeConfig::trace_sample`]); `0` (the default) disables
    /// tracing. Trace records go to the sinks and the flight recorder,
    /// never into the report hashes, so `summary_line` stays
    /// byte-stable.
    pub trace_sample: u64,
    /// Flight-recorder dump path for degraded ticks and oracle
    /// failures (see [`ServeConfig::flight_dump`]).
    pub flight_dump: Option<std::path::PathBuf>,
    /// Force a full warm sweep on every solve
    /// (`ServeConfig::full_sweep_every = 1`), disabling the incremental
    /// dirty-set path and the content-hash solve cache. The default
    /// (`false`) runs the service as shipped; CI runs the sweep both
    /// ways and diffs the summary lines — the final audit's
    /// cold-restart + refresh makes the reported hashes solve-mode
    /// invariant, so any divergence is an incremental-path bug.
    pub full_sweep_only: bool,
    /// Segment-range shard workers for the engine under test. `1` (the
    /// default) is a bitwise pass-through of the classic single
    /// service, so every historical summary line is unchanged; with
    /// more shards the admission counters stay mirror-exact while the
    /// offline replay stitches per-shard solves.
    pub shards: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            ticks: 24,
            num_threads: 0,
            check_counters: false,
            trace_sample: 0,
            flight_dump: None,
            full_sweep_only: false,
            shards: 1,
        }
    }
}

/// Everything one chaos run produced, sufficient both for a CI log line
/// and for diffing two runs bit-for-bit.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The run's seed.
    pub seed: u64,
    /// Backpressure policy the plan selected.
    pub backpressure: Backpressure,
    /// Ticks simulated.
    pub ticks: usize,
    /// Report lines generated (clean + injected).
    pub lines_total: u64,
    /// Lines that failed structural parsing and never reached the
    /// service.
    pub parse_rejected: u64,
    /// Observations pushed into the service (`lines_total -
    /// parse_rejected` — the oracle asserts this identity).
    pub pushed: u64,
    /// The service's own counters at the end of the run.
    pub stats: ServeStats,
    /// Corrupted checkpoints that restore correctly refused.
    pub checkpoint_rejections: u64,
    /// Human-readable `tick:description` log of every injected fault.
    pub fault_log: Vec<String>,
    /// FNV-1a over the final estimate's `f64` bits (0 when the service
    /// never produced an estimate).
    pub estimate_hash: u64,
    /// FNV-1a over the final window snapshot (values + indicator bits).
    pub window_hash: u64,
    /// FNV-1a over the fault log.
    pub fault_log_hash: u64,
    /// Differential-oracle violations. Empty means the run passed.
    pub oracle_failures: Vec<String>,
}

impl ChaosReport {
    /// `true` when every oracle check held.
    pub fn oracle_ok(&self) -> bool {
        self.oracle_failures.is_empty()
    }

    /// One-line summary, stable across thread counts — the CI sweep
    /// diffs these lines between `--threads` settings.
    pub fn summary_line(&self) -> String {
        let s = &self.stats;
        format!(
            "seed={} policy={} ticks={} lines={} parse_rejected={} admitted={} rejected={} \
             late={} dup={} queue_dropped={} solves={} degraded={} ckpt_rejected={} \
             faults={} est={:016x} win={:016x} log={:016x} oracle={}",
            self.seed,
            match self.backpressure {
                Backpressure::DropNewest => "drop-newest",
                Backpressure::DropOldest => "drop-oldest",
            },
            self.ticks,
            self.lines_total,
            self.parse_rejected,
            s.admitted,
            s.rejected,
            s.dropped_late,
            s.duplicates,
            s.queue_dropped,
            s.solves,
            s.degraded,
            self.checkpoint_rejections,
            self.fault_log.len(),
            self.estimate_hash,
            self.window_hash,
            self.fault_log_hash,
            if self.oracle_ok() { "ok" } else { "FAIL" },
        )
    }
}

/// Runs one seeded chaos simulation end to end.
///
/// # Errors
///
/// Only construction can fail (invalid derived `ServeConfig`, which
/// would be a harness bug); everything at runtime becomes counters,
/// report fields, or oracle failures.
pub fn run(cfg: &ChaosConfig) -> Result<ChaosReport, Error> {
    let ticks = cfg.ticks.max(1);
    let plan = FaultPlan::generate(cfg.seed, ticks);
    let cs = CsConfig::builder()
        .rank(2)
        .lambda(100.0)
        .iterations(30)
        .tol(1e-9)
        .seed(42)
        .num_threads(cfg.num_threads)
        .build()
        .map_err(Error::from)?;
    let serve_cfg = ServeConfig::builder()
        .start_s(START_S)
        .slot_len_s(SLOT_LEN_S)
        .window_slots(WINDOW_SLOTS)
        .num_segments(SEGMENTS)
        .cs(cs.clone())
        .queue_capacity(QUEUE_CAPACITY)
        .backpressure(plan.backpressure)
        .warm_sweep_cap(Some(6))
        .solve_budget(None)
        // 1 = full sweep every tick; 16 is the service's shipped cadence.
        .full_sweep_every(if cfg.full_sweep_only { 1 } else { 16 })
        .trace_sample(cfg.trace_sample)
        .flight_dump(cfg.flight_dump.clone())
        .shards(ShardPlan::with_count(cfg.shards.max(1)))
        .build()?;
    let mut service = ShardedService::new(serve_cfg.clone())?;
    let mut mirror =
        Mirror::new(START_S, SLOT_LEN_S, WINDOW_SLOTS, SEGMENTS, QUEUE_CAPACITY, plan.backpressure);

    let clean = clean_stream(cfg.seed, ticks);
    let counters_before = cfg.check_counters.then(snapshot_counters);

    let mut report = ChaosReport {
        seed: cfg.seed,
        backpressure: plan.backpressure,
        ticks,
        lines_total: 0,
        parse_rejected: 0,
        pushed: 0,
        stats: ServeStats::default(),
        checkpoint_rejections: 0,
        fault_log: Vec::new(),
        estimate_hash: 0,
        window_hash: 0,
        fault_log_hash: 0,
        oracle_failures: Vec::new(),
    };

    for (tick, clean_batch) in clean.iter().enumerate().take(ticks) {
        let mut lines: Vec<String> = clean_batch.clone();
        let mut reorder_salt = None;
        let mut zero_budget = false;
        let mut ckpt_faults = Vec::new();
        // Application order is fixed (corrupt -> late -> duplicate ->
        // spike -> reorder) regardless of plan order, so every fault
        // sees a deterministic batch.
        let tick_faults: Vec<FaultKind> =
            plan.faults.iter().filter(|f| f.tick == tick).map(|f| f.kind).collect();
        for kind in &tick_faults {
            if let FaultKind::CorruptLine { fault, salt } = kind {
                if lines.is_empty() {
                    continue;
                }
                let idx = (*salt % lines.len() as u64) as usize;
                lines[idx] = codec::corrupt_line(&lines[idx], *fault, SEGMENTS);
                log_fault(&mut report, tick, format!("corrupt-line:{} idx={idx}", fault.name()));
            }
        }
        for kind in &tick_faults {
            if let FaultKind::LateReport { pre_grid, salt } = kind {
                let line = late_line(tick, *pre_grid, *salt);
                log_fault(
                    &mut report,
                    tick,
                    format!("late-report ts={}", line.split(',').nth(1).unwrap_or("?")),
                );
                lines.push(line);
            }
        }
        for kind in &tick_faults {
            if let FaultKind::DuplicateBurst { copies, salt } = kind {
                if lines.is_empty() {
                    continue;
                }
                let idx = (*salt % lines.len() as u64) as usize;
                let line = lines[idx].clone();
                for _ in 0..*copies {
                    lines.push(line.clone());
                }
                log_fault(&mut report, tick, format!("dup-burst x{copies} idx={idx}"));
            }
        }
        for kind in &tick_faults {
            if let FaultKind::QueueSpike { extra } = kind {
                let count = QUEUE_CAPACITY + extra;
                for i in 0..count {
                    lines.push(spike_line(tick, i));
                }
                log_fault(&mut report, tick, format!("queue-spike +{count}"));
            }
        }
        for kind in &tick_faults {
            match kind {
                FaultKind::ReorderBurst { salt } => {
                    reorder_salt = Some(*salt);
                    log_fault(&mut report, tick, "reorder-burst".to_string());
                }
                FaultKind::SolverSabotage { mode } => {
                    match mode {
                        Sabotage::ZeroBudget => {
                            service.set_solve_budget(Some(Duration::ZERO));
                            zero_budget = true;
                        }
                        Sabotage::SweepStarve => service.set_warm_sweep_cap(Some(1)),
                    }
                    log_fault(&mut report, tick, format!("sabotage:{}", mode.name()));
                }
                FaultKind::CheckpointChaos { fault } => ckpt_faults.push(*fault),
                _ => {}
            }
        }
        if let Some(salt) = reorder_salt {
            let mut rng = rand::rngs::StdRng::seed_from_u64(salt);
            lines.shuffle(&mut rng);
        }

        for line in &lines {
            report.lines_total += 1;
            match codec::parse_line(line) {
                Ok((vehicle, timestamp_s, segment, speed_kmh)) => {
                    let obs = Observation { vehicle, timestamp_s, segment, speed_kmh };
                    report.pushed += 1;
                    service.push(obs);
                    mirror.push(obs);
                }
                Err(_) => report.parse_rejected += 1,
            }
        }
        service.tick();
        mirror.tick(zero_budget);
        if zero_budget {
            service.set_solve_budget(None);
        }

        for fault in ckpt_faults {
            log_fault(&mut report, tick, format!("checkpoint:{}", fault.name()));
            let text = service.checkpoint();
            let corrupted = codec::corrupt_checkpoint(&text, fault);
            let mut scratch = ShardedService::new(serve_cfg.clone())?;
            match scratch.restore(&corrupted) {
                Err(_) => report.checkpoint_rejections += 1,
                Ok(()) => report.oracle_failures.push(format!(
                    "tick {tick}: corrupted checkpoint ({}) restored without error",
                    fault.name()
                )),
            }
            let mut pristine = ShardedService::new(serve_cfg.clone())?;
            if pristine.restore(&text).is_err() {
                report
                    .oracle_failures
                    .push(format!("tick {tick}: pristine checkpoint failed to restore"));
            } else if pristine.checkpoint() != text {
                report
                    .oracle_failures
                    .push(format!("tick {tick}: checkpoint round-trip not byte-identical"));
            }
        }
    }

    // Final audit solve: a cold restart erases warm-start state (which
    // legitimately depends on solve history), so the service's last
    // answer must equal the offline pipeline run on the mirror's
    // predicted window — the replay half of the differential oracle.
    service.cold_restart()?;
    service.refresh();
    mirror.refresh();

    audit(&mut report, &service, &mirror, &cs);
    if let Some(before) = counters_before {
        audit_counters(&mut report, &before, &service.stats());
    }

    report.fault_log_hash = {
        let mut h = Fnv::new();
        for entry in &report.fault_log {
            h.write(entry.as_bytes());
            h.write(b"\n");
        }
        h.finish()
    };

    // A failed oracle is exactly what the flight recorder exists for:
    // dump the last-N records so the failure is diagnosable without a
    // rerun (the seed reproduces it, but the dump shows the lead-up).
    if !report.oracle_ok() {
        if let (Some(path), Some(recorder)) = (&cfg.flight_dump, telemetry::flight::recorder()) {
            let _ = recorder.dump_to_path(path, "chaos_oracle");
        }
    }
    Ok(report)
}

/// Convenience wrapper: default geometry, chosen seed and tick count.
///
/// # Errors
///
/// See [`run`].
pub fn run_seed(seed: u64, ticks: usize) -> Result<ChaosReport, Error> {
    run(&ChaosConfig { seed, ticks, ..ChaosConfig::default() })
}

fn log_fault(report: &mut ChaosReport, tick: usize, desc: String) {
    telemetry::event(
        Level::Debug,
        "chaos.fault",
        vec![
            ("seed".into(), report.seed.into()),
            ("tick".into(), (tick as u64).into()),
            ("fault".into(), desc.clone().into()),
        ],
    );
    report.fault_log.push(format!("{tick}:{desc}"));
}

/// The clean (pre-fault) probe stream, one batch of encoded lines per
/// tick, derived from the seeded ground-truth traffic model.
fn clean_stream(seed: u64, ticks: usize) -> Vec<Vec<String>> {
    let net =
        roadnet::generator::generate_grid_city(&roadnet::generator::GridCityConfig::small_test());
    let grid = SlotGrid::covering(0, ticks as u64 * SLOT_LEN_S, Granularity::Min15);
    let model = GroundTruthModel::generate(
        &net,
        grid,
        &GroundTruthConfig { seed: seed ^ 0x6eed, ..GroundTruthConfig::default() },
    );
    let n = model.speeds().cols();
    let truth = Matrix::from_fn(ticks, SEGMENTS, |t, c| model.speeds().get(t, c % n));
    let samples = sample_probe_stream(
        &truth,
        &ProbeStreamConfig {
            start_s: START_S,
            slot_len_s: SLOT_LEN_S,
            coverage: 0.85,
            probes_per_cell: 2,
            speed_jitter: 0.05,
            seed: seed ^ 0x5eed,
        },
    );
    let mut batches = vec![Vec::new(); ticks];
    for s in samples {
        let tick = ((s.timestamp_s - START_S) / SLOT_LEN_S) as usize;
        batches[tick].push(codec::encode_line(s.vehicle, s.timestamp_s, s.segment, s.speed_kmh));
    }
    batches
}

/// Synthesizes a report line that is guaranteed late at tick `tick`:
/// either before the grid start, or (once enough slots have been
/// evicted) aimed at a slot strictly below any reachable tail.
fn late_line(tick: usize, pre_grid: bool, salt: u64) -> String {
    let vehicle = 800_000 + tick as u64;
    let segment = (salt as usize) % SEGMENTS;
    let speed = 25.0 + (salt % 20) as f64;
    let ts = if pre_grid || tick < WINDOW_SLOTS + 1 {
        salt % START_S
    } else {
        let slot = (tick - WINDOW_SLOTS - 1) as u64;
        START_S + slot * SLOT_LEN_S + salt % SLOT_LEN_S
    };
    codec::encode_line(vehicle, ts, segment, speed)
}

/// The `i`-th filler report of a queue spike at tick `tick`: valid,
/// current-slot, all keys distinct from each other and from every
/// clean or late report.
fn spike_line(tick: usize, i: usize) -> String {
    let vehicle = 900_000 + tick as u64 * 1_000 + i as u64;
    let ts = START_S + tick as u64 * SLOT_LEN_S + (i as u64 % SLOT_LEN_S);
    codec::encode_line(vehicle, ts, i % SEGMENTS, 30.0 + (i % 7) as f64)
}

/// The differential checks: exact counter agreement, conservation,
/// bit-for-bit window parity, and offline replay parity.
///
/// The [`Mirror`] models the classic single-queue engine, so its
/// predictions are bit-exact only for single-shard plans. Multi-shard
/// plans give every shard its own bounded queue (a queue spike that
/// overflows one queue splits across N), so the mirror's counter and
/// window predictions legitimately diverge; what must still hold there
/// is conservation, the dedup bound, and the stitched offline-replay
/// parity against the service's own merged window.
fn audit(report: &mut ChaosReport, service: &ShardedService, mirror: &Mirror, cs: &CsConfig) {
    let sharded = service.shard_count() > 1;
    let got = service.stats();
    let want = mirror.stats();
    report.stats = got;
    if !sharded && got != want {
        report.oracle_failures.push(format!("stats diverged: service {got:?} vs mirror {want:?}"));
    }
    if report.lines_total != report.parse_rejected + report.pushed {
        report.oracle_failures.push(format!(
            "line conservation broken: {} total != {} parse_rejected + {} pushed",
            report.lines_total, report.parse_rejected, report.pushed
        ));
    }
    let accounted = got.queue_dropped + got.rejected + got.dropped_late + got.admitted;
    if report.pushed != accounted {
        report.oracle_failures.push(format!(
            "counter conservation broken: pushed {} != accounted {accounted} \
             (queue_dropped {} + rejected {} + dropped_late {} + admitted {})",
            report.pushed, got.queue_dropped, got.rejected, got.dropped_late, got.admitted
        ));
    }
    if got.duplicates > got.admitted {
        report.oracle_failures.push(format!(
            "duplicates {} exceed admitted {} — dedup must be a sub-count of admission",
            got.duplicates, got.admitted
        ));
    }

    let snap = service.window_snapshot();
    let expected = mirror.expected_tcm();
    let mut wh = Fnv::new();
    for r in 0..snap.num_slots() {
        for c in 0..snap.num_segments() {
            let got_cell = snap.get(r, c);
            let want_cell = expected.get(r, c);
            if !sharded && got_cell.map(f64::to_bits) != want_cell.map(f64::to_bits) {
                report.oracle_failures.push(format!(
                    "window cell ({r},{c}) diverged: service {got_cell:?} vs mirror {want_cell:?}"
                ));
            }
            wh.write_u64(got_cell.map(f64::to_bits).unwrap_or(0));
            wh.write_u64(u64::from(got_cell.is_some()));
        }
    }
    report.window_hash = wh.finish();

    // The replay reference window: the mirror's prediction for the
    // classic engine, the service's own merged snapshot for multi-shard
    // plans (whose admitted set depends on per-shard queues).
    let reference = if sharded { &snap } else { &expected };
    let predicted_estimate =
        if sharded { reference.observed_count() > 0 } else { mirror.has_estimate() };
    match (service.latest(), predicted_estimate) {
        (Some(live), true) => {
            let mut eh = Fnv::new();
            for v in live.estimate.as_slice() {
                eh.write_u64(v.to_bits());
            }
            report.estimate_hash = eh.finish();
            // Replay the admitted subset offline: the cold-restarted
            // engine must match `complete_matrix_detailed` on the
            // reference window bit for bit, at any thread count — per
            // shard, since the merged estimate stitches per-shard
            // solves (a single-shard plan is one "stitch" covering the
            // whole window).
            for shard in 0..service.shard_count() {
                let range = service.shard_range(shard);
                audit_shard_replay(report, reference, live, shard, range, cs);
            }
        }
        (None, false) => {}
        (live, predicted) => report.oracle_failures.push(format!(
            "estimate presence diverged: service {} vs predicted {}",
            live.is_some(),
            predicted
        )),
    }
}

/// Offline-replay parity for one shard's column block: solving the
/// reference window's slice must reproduce the corresponding columns of
/// the merged live estimate bit for bit. A slice with no observations
/// never solved, so its merged columns must be the zero fill.
fn audit_shard_replay(
    report: &mut ChaosReport,
    reference: &probes::Tcm,
    live: &traffic_cs::service::LiveEstimate,
    shard: usize,
    range: std::ops::Range<usize>,
    cs: &CsConfig,
) {
    let rows = reference.num_slots();
    if live.estimate.rows() != rows || live.estimate.cols() != reference.num_segments() {
        report.oracle_failures.push(format!(
            "estimate is {}x{}, reference window is {rows}x{}",
            live.estimate.rows(),
            live.estimate.cols(),
            reference.num_segments()
        ));
        return;
    }
    let mut values = Matrix::zeros(rows, range.len());
    let mut indicator = Matrix::zeros(rows, range.len());
    let mut observed = 0usize;
    for r in 0..rows {
        for (j, c) in range.clone().enumerate() {
            if let Some(v) = reference.get(r, c) {
                values.set(r, j, v);
                indicator.set(r, j, 1.0);
                observed += 1;
            }
        }
    }
    if observed == 0 {
        // Nothing to replay: the shard's current window is empty, and
        // its merged columns are either a zero fill (never solved) or
        // its last pre-eviction solve — both legitimate.
        return;
    }
    let slice = probes::Tcm::new(values, indicator).expect("matching dims by construction");
    match complete_matrix_detailed(&slice, cs) {
        Ok(offline) => {
            let same = offline.estimate.rows() == rows
                && (0..rows).all(|r| {
                    range.clone().enumerate().all(|(j, c)| {
                        offline.estimate.get(r, j).to_bits() == live.estimate.get(r, c).to_bits()
                    })
                });
            if !same {
                report.oracle_failures.push(format!(
                    "offline replay diverged from the merged estimate in shard {shard} \
                     (segments {range:?})"
                ));
            }
        }
        Err(e) => report
            .oracle_failures
            .push(format!("offline replay failed to solve shard {shard}: {e}")),
    }
}

/// Projection from [`ServeStats`] to one counter's expected value.
type StatProjection = fn(&ServeStats) -> u64;

const SERVE_COUNTERS: [(&str, StatProjection); 7] = [
    ("serve.admitted", |s| s.admitted),
    ("serve.rejected", |s| s.rejected),
    ("serve.dropped_late", |s| s.dropped_late),
    ("serve.duplicates", |s| s.duplicates),
    ("serve.queue_dropped", |s| s.queue_dropped),
    ("serve.solves", |s| s.solves),
    ("serve.degraded", |s| s.degraded),
];

fn snapshot_counters() -> Vec<u64> {
    SERVE_COUNTERS.iter().map(|(name, _)| telemetry::counter(name).get()).collect()
}

/// Counter-conservation half of the oracle: every injected fault shows
/// up in exactly one `serve.*` counter, so the counter deltas across
/// the run must equal the service's own stats field for field.
fn audit_counters(report: &mut ChaosReport, before: &[u64], stats: &ServeStats) {
    if !telemetry::metrics_enabled() {
        return;
    }
    for (i, (name, project)) in SERVE_COUNTERS.iter().enumerate() {
        let delta = telemetry::counter(name).get().saturating_sub(before[i]);
        let want = project(stats);
        if delta != want {
            report
                .oracle_failures
                .push(format!("telemetry counter {name} delta {delta} != stats value {want}"));
        }
    }
}
