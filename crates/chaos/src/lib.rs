//! Deterministic fault-injection simulator for the streaming traffic
//! estimation service, with a differential test harness.
//!
//! The paper's Section 6 sketches an online streaming deployment;
//! `traffic_cs::service` implements it with a hard "never panic,
//! always count" contract. This crate is the adversary that contract
//! is tested against. From a single seed it derives:
//!
//! 1. **A fault plan** ([`plan::FaultPlan`]) — a pre-resolved schedule
//!    of corrupted report lines, duplicate and reordered bursts, late
//!    reports into evicted slots, queue-pressure spikes (exercising
//!    both backpressure policies), solver sabotage through the runtime
//!    watchdog knobs, and checkpoint corruption.
//! 2. **A simulation run** ([`sim::run`]) — a synthetic probe stream
//!    from the `traffic-sim` ground-truth model replayed tick by tick
//!    through a real [`Service`], with the plan's faults injected into
//!    the byte stream, and every injection logged.
//! 3. **A differential oracle** ([`oracle::Mirror`]) — an independent
//!    re-implementation of the admission/backpressure/window semantics
//!    that predicts every counter exactly and the final window
//!    bit-for-bit, plus an offline replay: the service's final
//!    estimate must equal `complete_matrix_detailed` on the predicted
//!    window at any thread count.
//!
//! Nothing in the run consumes ambient entropy or wall-clock-dependent
//! control flow (the one wall-clock sabotage is asserted through its
//! *counters*, not its timing), so any failure reproduces from its
//! seed alone: `cs-traffic-cli chaos --seed N` replays it.
//!
//! [`Service`]: traffic_cs::Service

pub mod codec;
pub mod oracle;
pub mod plan;
pub mod sim;

pub use codec::{CheckpointFault, LineFault};
pub use oracle::Mirror;
pub use plan::{FaultKind, FaultPlan, PlannedFault, Sabotage};
pub use sim::{run, run_seed, ChaosConfig, ChaosReport};

/// Incremental FNV-1a (64-bit) — the harness's content hash for
/// estimates, windows, and fault logs. Chosen for being trivially
/// portable and dependency-free; collision resistance is irrelevant
/// here (the hashes compare *runs of the same seed*, not adversarial
/// inputs).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "empty input = offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv::new();
        h2.write(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }
}
