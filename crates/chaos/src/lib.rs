//! Deterministic fault-injection simulator for the streaming traffic
//! estimation service, with a differential test harness.
//!
//! The paper's Section 6 sketches an online streaming deployment;
//! `traffic_cs::service` implements it with a hard "never panic,
//! always count" contract. This crate is the adversary that contract
//! is tested against. From a single seed it derives:
//!
//! 1. **A fault plan** ([`plan::FaultPlan`]) — a pre-resolved schedule
//!    of corrupted report lines, duplicate and reordered bursts, late
//!    reports into evicted slots, queue-pressure spikes (exercising
//!    both backpressure policies), solver sabotage through the runtime
//!    watchdog knobs, and checkpoint corruption.
//! 2. **A simulation run** ([`sim::run`]) — a synthetic probe stream
//!    from the `traffic-sim` ground-truth model replayed tick by tick
//!    through a real [`Service`], with the plan's faults injected into
//!    the byte stream, and every injection logged.
//! 3. **A differential oracle** ([`oracle::Mirror`]) — an independent
//!    re-implementation of the admission/backpressure/window semantics
//!    that predicts every counter exactly and the final window
//!    bit-for-bit, plus an offline replay: the service's final
//!    estimate must equal `complete_matrix_detailed` on the predicted
//!    window at any thread count.
//!
//! Nothing in the run consumes ambient entropy or wall-clock-dependent
//! control flow (the one wall-clock sabotage is asserted through its
//! *counters*, not its timing), so any failure reproduces from its
//! seed alone: `cs-traffic-cli chaos --seed N` replays it.
//!
//! A second harness ([`net::run_net`]) points the same differential
//! method at the wire: faulty `cs-wire/v1` clients (mid-frame
//! disconnects, adversarial write boundaries, slow-loris stalls)
//! against a live sharded daemon, with a predicted-delivered replay as
//! the oracle — `cs-traffic-cli chaos-net` runs the sweep.
//!
//! [`Service`]: traffic_cs::Service

pub mod codec;
pub mod net;
pub mod oracle;
pub mod plan;
pub mod sim;

pub use codec::{CheckpointFault, LineFault};
pub use net::{run_net, ConnFault, NetChaosConfig, NetChaosReport};
pub use oracle::Mirror;
pub use plan::{FaultKind, FaultPlan, PlannedFault, Sabotage};
pub use sim::{run, run_seed, ChaosConfig, ChaosReport};

/// The harness's content hash for estimates, windows, and fault logs —
/// now shared with the service's trace IDs and the load generator's
/// stream hash, so it lives in [`telemetry::fnv`].
pub use telemetry::Fnv;
