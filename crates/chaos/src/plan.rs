//! The fault plan: a deterministic schedule of injections, fully
//! resolved from a seed *before* the simulation starts.
//!
//! Every random choice — which faults fire on which tick, which line a
//! corruption hits, the timestamps of late reports, shuffle orders —
//! is drawn during [`FaultPlan::generate`] and stored in the plan as
//! explicit parameters (`salt` fields). The simulator itself draws no
//! randomness, so runtime outcomes (how many lines a tick happens to
//! have, whether a solve degraded) can never perturb the schedule:
//! replaying a seed replays the byte-identical fault sequence.

use crate::codec::{CheckpointFault, LineFault};
use rand::{RngExt, SeedableRng};
use traffic_cs::service::Backpressure;

/// Solver-sabotage modes: runtime watchdog knobs twisted mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Set a zero wall-clock budget for one tick: any solve that runs
    /// succeeds but is flagged over budget (degraded + stale).
    ZeroBudget,
    /// Clamp the warm-start sweep cap to 1 from this tick on. Affects
    /// estimate quality, never counters — the oracle proves that.
    SweepStarve,
}

impl Sabotage {
    /// Short stable name used in fault logs (and their hashes).
    pub fn name(self) -> &'static str {
        match self {
            Sabotage::ZeroBudget => "zero-budget",
            Sabotage::SweepStarve => "sweep-starve",
        }
    }
}

/// One kind of injected fault. `salt` fields carry all pre-resolved
/// randomness a fault needs at application time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt one report line of the tick's batch.
    CorruptLine {
        /// The corruption to apply.
        fault: LineFault,
        /// Selects which line (`salt % batch_len`).
        salt: u64,
    },
    /// Re-deliver one line of the batch `copies` extra times.
    DuplicateBurst {
        /// Number of extra deliveries.
        copies: usize,
        /// Selects which line (`salt % batch_len`).
        salt: u64,
    },
    /// Shuffle the tick's batch (Fisher–Yates seeded by `salt`).
    ReorderBurst {
        /// Shuffle seed.
        salt: u64,
    },
    /// Append a report whose slot can no longer be admitted.
    LateReport {
        /// `true` aims before the grid start; `false` aims at an
        /// already-evicted slot (needs enough elapsed ticks, so the
        /// simulator falls back to pre-grid early in the run).
        pre_grid: bool,
        /// Timestamp/segment/speed entropy.
        salt: u64,
    },
    /// Append `queue_capacity + extra` valid reports so the ingest
    /// queue must overflow and the backpressure policy must act.
    QueueSpike {
        /// Overflow margin beyond the queue capacity.
        extra: usize,
    },
    /// Twist a solver watchdog knob before this tick's solve.
    SolverSabotage {
        /// Which knob.
        mode: Sabotage,
    },
    /// After the tick, corrupt a checkpoint of the live state and
    /// demand that restore rejects it (and that a pristine copy
    /// round-trips byte-identically).
    CheckpointChaos {
        /// The corruption to apply.
        fault: CheckpointFault,
    },
}

/// A fault bound to the tick it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Tick index (0-based) the fault applies to.
    pub tick: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// A complete, self-describing injection schedule for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Backpressure policy for the run (derived from seed parity so
    /// both policies get continuous coverage across a seed sweep).
    pub backpressure: Backpressure,
    /// Schedule, ordered by tick then by generation order within the
    /// tick (corrupt, duplicate, reorder, late, spike, sabotage,
    /// checkpoint).
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Derives the complete schedule for `ticks` ticks from `seed`.
    /// Same `(seed, ticks)` always yields the same plan.
    pub fn generate(seed: u64, ticks: usize) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00c0_ffee_c0ff_ee00);
        let backpressure = if seed.is_multiple_of(2) {
            Backpressure::DropNewest
        } else {
            Backpressure::DropOldest
        };
        let mut faults = Vec::new();
        for tick in 0..ticks {
            if rng.random_range(0.0..1.0) < 0.55 {
                let fault = match rng.random_range(0usize..6) {
                    0 => LineFault::Truncate,
                    1 => LineFault::Garbage,
                    2 => LineFault::NanSpeed,
                    3 => LineFault::NegativeSpeed,
                    4 => LineFault::InfiniteSpeed,
                    _ => LineFault::BadSegment,
                };
                let salt = rng.next_u64();
                faults.push(PlannedFault { tick, kind: FaultKind::CorruptLine { fault, salt } });
            }
            if rng.random_range(0.0..1.0) < 0.45 {
                let copies = rng.random_range(1usize..=3);
                let salt = rng.next_u64();
                faults
                    .push(PlannedFault { tick, kind: FaultKind::DuplicateBurst { copies, salt } });
            }
            if rng.random_range(0.0..1.0) < 0.5 {
                let salt = rng.next_u64();
                faults.push(PlannedFault { tick, kind: FaultKind::ReorderBurst { salt } });
            }
            if rng.random_range(0.0..1.0) < 0.45 {
                let pre_grid = rng.random_range(0.0..1.0) < 0.5;
                let salt = rng.next_u64();
                faults.push(PlannedFault { tick, kind: FaultKind::LateReport { pre_grid, salt } });
            }
            if rng.random_range(0.0..1.0) < 0.2 {
                let extra = rng.random_range(1usize..=8);
                faults.push(PlannedFault { tick, kind: FaultKind::QueueSpike { extra } });
            }
            if rng.random_range(0.0..1.0) < 0.2 {
                let mode = if rng.random_range(0.0..1.0) < 0.5 {
                    Sabotage::ZeroBudget
                } else {
                    Sabotage::SweepStarve
                };
                faults.push(PlannedFault { tick, kind: FaultKind::SolverSabotage { mode } });
            }
            if rng.random_range(0.0..1.0) < 0.25 {
                let fault = match rng.random_range(0usize..3) {
                    0 => CheckpointFault::HeaderFlip,
                    1 => CheckpointFault::Truncate,
                    _ => CheckpointFault::HexBreak,
                };
                faults.push(PlannedFault { tick, kind: FaultKind::CheckpointChaos { fault } });
            }
        }
        Self { seed, backpressure, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(FaultPlan::generate(9, 24), FaultPlan::generate(9, 24));
        assert_ne!(FaultPlan::generate(9, 24).faults, FaultPlan::generate(10, 24).faults);
    }

    #[test]
    fn seed_parity_selects_policy() {
        assert_eq!(FaultPlan::generate(4, 4).backpressure, Backpressure::DropNewest);
        assert_eq!(FaultPlan::generate(5, 4).backpressure, Backpressure::DropOldest);
    }

    #[test]
    fn long_plans_cover_every_fault_kind() {
        let plan = FaultPlan::generate(1, 400);
        let has = |pred: &dyn Fn(&FaultKind) -> bool| plan.faults.iter().any(|f| pred(&f.kind));
        assert!(has(&|k| matches!(k, FaultKind::CorruptLine { .. })));
        assert!(has(&|k| matches!(k, FaultKind::DuplicateBurst { .. })));
        assert!(has(&|k| matches!(k, FaultKind::ReorderBurst { .. })));
        assert!(has(&|k| matches!(k, FaultKind::LateReport { .. })));
        assert!(has(&|k| matches!(k, FaultKind::QueueSpike { .. })));
        assert!(has(&|k| matches!(k, FaultKind::SolverSabotage { mode: Sabotage::ZeroBudget })));
        assert!(has(&|k| matches!(k, FaultKind::SolverSabotage { mode: Sabotage::SweepStarve })));
        for f in [CheckpointFault::HeaderFlip, CheckpointFault::Truncate, CheckpointFault::HexBreak]
        {
            assert!(has(&|k| matches!(k, FaultKind::CheckpointChaos { fault } if *fault == f)));
        }
    }
}
