//! Connection-level chaos for the [`Daemon`]: the wire-transport
//! counterpart of [`crate::sim`].
//!
//! Where the simulator corrupts report *lines* inside one process, this
//! harness attacks the `cs-wire/v1` socket plane itself: clients that
//! disconnect mid-frame, dribble bytes across write boundaries, or stall
//! a frame past the slow-loris deadline. The differential oracle is the
//! same idea as the simulator's: every fault's effect is *predicted*
//! (which reports reach the engine, how many protocol errors are
//! charged), the predicted-delivered stream is replayed through an
//! in-process [`ShardedService`] with the identical config, and the
//! daemon's merged stats and estimate must match bit for bit — counter
//! conservation must hold across dropped connections.
//!
//! Determinism contract: timing decides only *when* a faulty connection
//! dies, never *what* was delivered before it died — complete frames are
//! always forwarded to the engine before a handler exits, and the engine
//! never ticks on its own (`tick_interval` is set above the run length),
//! so the admitted stream is a pure function of the seed. That is why
//! [`NetChaosReport::summary_line`] is byte-identical across solver
//! thread counts, which CI diffs exactly like the simulator sweep.
//!
//! [`Daemon`]: traffic_cs::daemon::Daemon

use crate::sim::{SEGMENTS, SLOT_LEN_S, START_S, WINDOW_SLOTS};
use crate::Fnv;
use proto::client::Client;
use proto::frame::frame_bytes;
use proto::msg::{Request, Response, WireEstimate, WireReport, WireStats};
use proto::net::BindAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::time::{Duration, Instant};
use traffic_cs::daemon::{Daemon, DaemonConfig, DaemonStats};
use traffic_cs::service::{Observation, ServeConfig, ServeStats};
use traffic_cs::sharded::{ShardPlan, ShardedService};
use traffic_cs::{CsConfig, Error};

/// How one ingest connection misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Well-behaved client: every frame written whole, clean close at a
    /// frame boundary.
    Clean,
    /// Every byte arrives, but the write boundaries are adversarial:
    /// frames are dribbled out in 1–7-byte chunks so headers and
    /// payloads straddle reads.
    PartialWrites,
    /// The connection dies mid-frame: a prefix of a frame is written and
    /// the socket closes. Everything before the cut must be admitted,
    /// the ragged tail must cost exactly one protocol error.
    MidFrameCut,
    /// Slow loris: a frame's first byte arrives, then the client stalls
    /// past the daemon's frame deadline. The daemon must cut it off and
    /// charge one protocol error.
    SlowLoris,
}

/// All fault kinds, in the order clients cycle through them.
pub const CONN_FAULTS: [ConnFault; 4] =
    [ConnFault::Clean, ConnFault::PartialWrites, ConnFault::MidFrameCut, ConnFault::SlowLoris];

impl ConnFault {
    /// Stable name used in fault logs and summary lines.
    pub fn name(self) -> &'static str {
        match self {
            ConnFault::Clean => "clean",
            ConnFault::PartialWrites => "partial-writes",
            ConnFault::MidFrameCut => "mid-frame-cut",
            ConnFault::SlowLoris => "slow-loris",
        }
    }
}

/// Parameters of one connection-chaos run.
#[derive(Debug, Clone)]
pub struct NetChaosConfig {
    /// Seed for the report stream and every fault decision.
    pub seed: u64,
    /// Ingest connections; client `i` gets `CONN_FAULTS[i % 4]`, so any
    /// multiple of 4 covers the whole fault space.
    pub clients: usize,
    /// Shard workers in the daemon's engine (and the replay reference).
    pub shards: usize,
    /// Solver threads (`CsConfig::num_threads`); the summary line must
    /// be identical for every value.
    pub num_threads: usize,
    /// The daemon's slow-loris frame deadline.
    pub frame_deadline_ms: u64,
    /// How long a [`ConnFault::SlowLoris`] client stalls mid-frame; must
    /// comfortably exceed the deadline.
    pub loris_stall_ms: u64,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            clients: 8,
            shards: 2,
            num_threads: 0,
            frame_deadline_ms: 300,
            loris_stall_ms: 1200,
        }
    }
}

/// Everything one connection-chaos run produced.
#[derive(Debug, Clone)]
pub struct NetChaosReport {
    /// The run's seed.
    pub seed: u64,
    /// Ingest connections attempted.
    pub clients: usize,
    /// Shard workers in the engine under test.
    pub shards: usize,
    /// Reports encoded into frames across all clients.
    pub sent: u64,
    /// Reports predicted (and required) to reach the engine: every
    /// report whose frame was written whole.
    pub delivered: u64,
    /// Protocol errors predicted (and required): one per cut or stalled
    /// connection.
    pub predicted_errors: u64,
    /// The daemon's merged admission counters at the sync barrier.
    pub stats: ServeStats,
    /// The daemon's transport-plane counters after shutdown.
    pub daemon: DaemonStats,
    /// Human-readable `client:fault` log of every connection's schedule.
    pub fault_log: Vec<String>,
    /// FNV-1a over the merged estimate's `f64` bits (0 when no
    /// estimate was produced).
    pub estimate_hash: u64,
    /// Differential-oracle violations. Empty means the run passed.
    pub oracle_failures: Vec<String>,
}

impl NetChaosReport {
    /// `true` when every oracle check held.
    pub fn oracle_ok(&self) -> bool {
        self.oracle_failures.is_empty()
    }

    /// One-line summary, stable across solver thread counts — the CI
    /// sweep diffs these lines between `--threads` settings. Transport
    /// counters that depend on poll timing (total frames) are
    /// deliberately excluded.
    pub fn summary_line(&self) -> String {
        let s = &self.stats;
        format!(
            "seed={} clients={} shards={} sent={} delivered={} proto_errors={} conns={} \
             admitted={} rejected={} late={} dup={} queue_dropped={} solves={} degraded={} \
             est={:016x} oracle={}",
            self.seed,
            self.clients,
            self.shards,
            self.sent,
            self.delivered,
            self.daemon.protocol_errors,
            self.daemon.connections,
            s.admitted,
            s.rejected,
            s.dropped_late,
            s.duplicates,
            s.queue_dropped,
            s.solves,
            s.degraded,
            self.estimate_hash,
            if self.oracle_ok() { "ok" } else { "FAIL" },
        )
    }
}

/// One client's deterministic schedule: its reports, its fault, and the
/// prediction of what survives.
struct ClientPlan {
    fault: ConnFault,
    reports: Vec<WireReport>,
    /// Reports whose frames are written whole (everything for
    /// well-behaved faults, the pre-cut prefix otherwise).
    delivered: usize,
    /// For `MidFrameCut`: how many bytes of the first undelivered frame
    /// to write before closing (≥ 1 so the cut is never mistaken for a
    /// clean close).
    cut_bytes: usize,
}

/// Derives every client's reports and fault schedule from the seed.
///
/// The stream mixes clean reports with the same adversarial classes the
/// line-level simulator uses — NaN speeds and out-of-range segments
/// (rejected), pre-grid timestamps (dropped late), and exact duplicates
/// — so the conservation check exercises every admission counter while
/// connections are being dropped around it.
fn plan_clients(cfg: &NetChaosConfig) -> Vec<ClientPlan> {
    let mut plans = Vec::with_capacity(cfg.clients);
    for client in 0..cfg.clients {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x00c1_1e47 + client as u64 * 0x9e37));
        let fault = CONN_FAULTS[client % CONN_FAULTS.len()];
        let count = rng.random_range(16usize..=24);
        let mut reports: Vec<WireReport> = Vec::with_capacity(count);
        for i in 0..count {
            let vehicle = 10_000 * (client as u64 + 1) + i as u64;
            let slot = rng.random_range(0u64..WINDOW_SLOTS as u64);
            let ts = START_S + slot * SLOT_LEN_S + rng.random_range(0..SLOT_LEN_S);
            let segment = rng.random_range(0u64..SEGMENTS as u64);
            let speed = rng.random_range(15.0..70.0);
            let report = match i % 8 {
                // An exact duplicate of the previous report: admitted,
                // counted in `duplicates`.
                3 if !reports.is_empty() => reports[reports.len() - 1],
                // NaN speed: reaches the engine, rejected on admission.
                5 => WireReport::new(vehicle, ts, segment, f64::NAN),
                // Out-of-range segment: routed to the last shard,
                // rejected there.
                6 => WireReport::new(vehicle, ts, SEGMENTS as u64 + segment, speed),
                // Pre-grid timestamp: dropped as late.
                7 => WireReport::new(vehicle, rng.random_range(0..START_S), segment, speed),
                _ => WireReport::new(vehicle, ts, segment, speed),
            };
            reports.push(report);
        }
        let (delivered, cut_bytes) = match fault {
            ConnFault::Clean | ConnFault::PartialWrites => (reports.len(), 0),
            // Deliver at least one frame and always leave one to cut.
            ConnFault::MidFrameCut => (rng.random_range(1..reports.len()), 0),
            ConnFault::SlowLoris => (rng.random_range(1..reports.len()), 1),
        };
        let cut_bytes = if fault == ConnFault::MidFrameCut {
            // Somewhere strictly inside the next frame: may split the
            // 4-byte header itself or the payload behind it.
            let len = frame_bytes(&Request::Report(reports[delivered]).encode()).len();
            rng.random_range(1..len)
        } else {
            cut_bytes
        };
        plans.push(ClientPlan { fault, reports, delivered, cut_bytes });
    }
    plans
}

/// Runs one client's write schedule against the daemon. Only complete
/// frames are counted on; everything after a cut is best-effort noise,
/// so write errors past that point are deliberately ignored.
fn run_client(addr: &BindAddr, plan: &ClientPlan, rng: &mut StdRng, stall: Duration) {
    let Ok(mut client) = Client::connect(addr) else { return };
    let frames: Vec<Vec<u8>> =
        plan.reports.iter().map(|r| frame_bytes(&Request::Report(*r).encode())).collect();
    let conn = client.conn_mut();
    match plan.fault {
        ConnFault::Clean => {
            for frame in &frames {
                if conn.write_all(frame).is_err() {
                    break;
                }
            }
        }
        ConnFault::PartialWrites => {
            let bytes: Vec<u8> = frames.concat();
            let mut off = 0;
            let mut chunk_i = 0usize;
            while off < bytes.len() {
                let chunk = rng.random_range(1usize..=7).min(bytes.len() - off);
                if conn.write_all(&bytes[off..off + chunk]).is_err() {
                    break;
                }
                let _ = conn.flush();
                off += chunk;
                // Periodically yield so chunks actually cross the
                // socket as separate reads instead of coalescing.
                chunk_i += 1;
                if chunk_i.is_multiple_of(16) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        ConnFault::MidFrameCut => {
            for frame in &frames[..plan.delivered] {
                if conn.write_all(frame).is_err() {
                    break;
                }
            }
            let _ = conn.write_all(&frames[plan.delivered][..plan.cut_bytes]);
            let _ = conn.flush();
        }
        ConnFault::SlowLoris => {
            for frame in &frames[..plan.delivered] {
                if conn.write_all(frame).is_err() {
                    break;
                }
            }
            let _ = conn.write_all(&frames[plan.delivered][..1]);
            let _ = conn.flush();
            std::thread::sleep(stall);
        }
    }
    client.close();
}

/// Blocks until the engine has absorbed `expect` reports into its
/// queues, using the control connection's health probe. The engine
/// never ticks on its own here, so `queue_len` grows monotonically to
/// exactly the delivered count — this is the deterministic barrier that
/// serializes clients without trusting timing.
fn await_queue(control: &mut Client, expect: u64, failures: &mut Vec<String>) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match control.request(&Request::QueryHealth) {
            Ok(Response::Health { queue_len, .. }) => {
                if queue_len == expect {
                    return;
                }
                if queue_len > expect {
                    failures.push(format!(
                        "queue overshot the barrier: {queue_len} queued, predicted {expect} — \
                         a cut frame's reports leaked through"
                    ));
                    return;
                }
            }
            Ok(other) => {
                failures.push(format!("health probe answered {other:?}"));
                return;
            }
            Err(e) => {
                failures.push(format!("health probe failed: {e}"));
                return;
            }
        }
        if Instant::now() >= deadline {
            failures.push(format!("barrier timed out waiting for queue_len == {expect}"));
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn wire_to_serve(w: &WireStats) -> ServeStats {
    ServeStats {
        admitted: w.admitted,
        rejected: w.rejected,
        dropped_late: w.dropped_late,
        duplicates: w.duplicates,
        queue_dropped: w.queue_dropped,
        solves: w.solves,
        degraded: w.degraded,
    }
}

/// Compares the daemon's merged wire estimate against the in-process
/// replay's live view, bit for bit.
fn audit_estimate(
    wire: Option<&WireEstimate>,
    reference: &ShardedService,
    failures: &mut Vec<String>,
) -> u64 {
    match (wire, reference.latest()) {
        (Some(w), Some(live)) => {
            let mut h = Fnv::new();
            for bits in &w.values_bits {
                h.write_u64(*bits);
            }
            let hash = h.finish();
            let (rows, cols) = (live.estimate.rows(), live.estimate.cols());
            if (w.rows as usize, w.cols as usize) != (rows, cols) {
                failures.push(format!(
                    "estimate shape diverged: wire {}x{} vs replay {rows}x{cols}",
                    w.rows, w.cols
                ));
                return hash;
            }
            let same = (0..rows).all(|r| {
                (0..cols).all(|c| w.values_bits[r * cols + c] == live.estimate.get(r, c).to_bits())
            });
            if !same {
                failures
                    .push("estimate values diverged between the socket path and the replay".into());
            }
            if w.head_slot != live.head_slot as u64 || w.solved_at_s != live.solved_at_s {
                failures.push(format!(
                    "estimate metadata diverged: wire head {} @ {}s vs replay head {} @ {}s",
                    w.head_slot, w.solved_at_s, live.head_slot, live.solved_at_s
                ));
            }
            hash
        }
        (None, None) => 0,
        (wire, live) => {
            failures.push(format!(
                "estimate presence diverged: wire {} vs replay {}",
                wire.is_some(),
                live.is_some()
            ));
            0
        }
    }
}

/// Runs one seeded connection-chaos run end to end: boot a daemon on an
/// ephemeral loopback port, drive every planned client against it (one
/// at a time, barrier-serialized), sync, audit, shut down.
///
/// # Errors
///
/// Only harness construction can fail (invalid derived config, a failed
/// bind, the daemon thread dying); every protocol-plane outcome becomes
/// counters or oracle failures in the report.
pub fn run_net(cfg: &NetChaosConfig) -> Result<NetChaosReport, Error> {
    let plans = plan_clients(cfg);
    let total_sent: usize = plans.iter().map(|p| p.reports.len()).sum();
    let cs = CsConfig::builder()
        .rank(2)
        .lambda(100.0)
        .iterations(30)
        .tol(1e-9)
        .seed(42)
        .num_threads(cfg.num_threads)
        .build()
        .map_err(Error::from)?;
    let serve_cfg = ServeConfig::builder()
        .start_s(START_S)
        .slot_len_s(SLOT_LEN_S)
        .window_slots(WINDOW_SLOTS)
        .num_segments(SEGMENTS)
        .cs(cs)
        // The whole run is one barrier tick; the queues must hold every
        // delivered report so admission outcomes are seed-pure (the
        // line-level simulator owns queue-overflow chaos).
        .queue_capacity(total_sent.max(1))
        .shards(ShardPlan::with_count(cfg.shards.max(1)))
        .build()?;

    let bind = BindAddr::parse("tcp:127.0.0.1:0").expect("literal bind address parses");
    let mut daemon_cfg = DaemonConfig::new(bind, serve_cfg.clone());
    // The engine must never tick between barriers, or admission would
    // depend on poll timing.
    daemon_cfg.tick_interval = Duration::from_secs(3600);
    daemon_cfg.frame_deadline = Duration::from_millis(cfg.frame_deadline_ms);
    let handle = Daemon::bind(daemon_cfg)?.spawn().map_err(|source| {
        Error::from(traffic_cs::daemon::DaemonError::Io { what: "spawn", source })
    })?;
    let addr = handle.addr().clone();

    let mut report = NetChaosReport {
        seed: cfg.seed,
        clients: cfg.clients,
        shards: cfg.shards.max(1),
        sent: total_sent as u64,
        delivered: 0,
        predicted_errors: 0,
        stats: ServeStats::default(),
        daemon: DaemonStats::default(),
        fault_log: Vec::new(),
        estimate_hash: 0,
        oracle_failures: Vec::new(),
    };

    // The control connection outlives every faulty client: it provides
    // the health barrier, the final sync, and the queries.
    let mut control = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            handle.stop();
            let _ = handle.join();
            return Err(Error::from(traffic_cs::daemon::DaemonError::Io {
                what: "control connect",
                source: std::io::Error::other(e.to_string()),
            }));
        }
    };

    let mut write_rng = StdRng::seed_from_u64(cfg.seed ^ 0x3a77);
    let stall = Duration::from_millis(cfg.loris_stall_ms);
    for (i, plan) in plans.iter().enumerate() {
        report.fault_log.push(format!(
            "client {i}: {} sent={} delivered={}",
            plan.fault.name(),
            plan.reports.len(),
            plan.delivered
        ));
        run_client(&addr, plan, &mut write_rng, stall);
        report.delivered += plan.delivered as u64;
        if matches!(plan.fault, ConnFault::MidFrameCut | ConnFault::SlowLoris) {
            report.predicted_errors += 1;
        }
        await_queue(&mut control, report.delivered, &mut report.oracle_failures);
        if !report.oracle_ok() {
            break;
        }
    }

    // Barrier tick, then read the merged view through the wire.
    let mut wire_merged = None;
    let mut wire_shards = Vec::new();
    let mut wire_estimate = None;
    if report.oracle_ok() {
        match control.request(&Request::Sync) {
            Ok(Response::Synced { .. }) => {}
            other => report.oracle_failures.push(format!("sync barrier answered {other:?}")),
        }
        match control.request(&Request::QueryStats) {
            Ok(Response::Stats { merged, shards }) => {
                wire_merged = Some(merged);
                wire_shards = shards;
            }
            other => report.oracle_failures.push(format!("stats query answered {other:?}")),
        }
        match control.request(&Request::QueryEstimate) {
            Ok(Response::Estimate(est)) => wire_estimate = est,
            other => report.oracle_failures.push(format!("estimate query answered {other:?}")),
        }
        match control.request(&Request::Shutdown) {
            Ok(Response::Bye) => {}
            other => report.oracle_failures.push(format!("shutdown answered {other:?}")),
        }
    } else {
        handle.stop();
    }
    control.close();
    match handle.join() {
        Ok(stats) => report.daemon = stats,
        Err(e) => report.oracle_failures.push(format!("daemon exited with an error: {e}")),
    }

    // The differential replay: push the predicted-delivered stream
    // through an identical in-process engine, tick once, compare.
    let mut reference = ShardedService::new(serve_cfg)?;
    for plan in &plans {
        for r in &plan.reports[..plan.delivered] {
            reference.push(Observation {
                vehicle: r.vehicle,
                timestamp_s: r.timestamp_s,
                segment: usize::try_from(r.segment).unwrap_or(usize::MAX),
                speed_kmh: r.speed_kmh(),
            });
        }
    }
    reference.tick();

    if let Some(merged) = &wire_merged {
        report.stats = wire_to_serve(merged);
        let want = reference.stats();
        if report.stats != want {
            report
                .oracle_failures
                .push(format!("stats diverged: wire {:?} vs replay {want:?}", report.stats));
        }
        let want_shards = reference.stats_per_shard();
        let got_shards: Vec<ServeStats> = wire_shards.iter().map(wire_to_serve).collect();
        if got_shards != want_shards {
            report.oracle_failures.push(format!(
                "per-shard stats diverged: wire {got_shards:?} vs replay {want_shards:?}"
            ));
        }
        let s = &report.stats;
        let accounted = s.admitted + s.rejected + s.dropped_late + s.queue_dropped;
        if report.delivered != accounted {
            report.oracle_failures.push(format!(
                "counter conservation broken across dropped connections: delivered {} != \
                 accounted {accounted} (admitted {} + rejected {} + dropped_late {} + \
                 queue_dropped {})",
                report.delivered, s.admitted, s.rejected, s.dropped_late, s.queue_dropped
            ));
        }
    }
    report.estimate_hash =
        audit_estimate(wire_estimate.as_ref(), &reference, &mut report.oracle_failures);

    let d = &report.daemon;
    if d.reports != report.delivered {
        report.oracle_failures.push(format!(
            "transport report count diverged: daemon saw {} vs predicted {}",
            d.reports, report.delivered
        ));
    }
    if d.protocol_errors != report.predicted_errors {
        report.oracle_failures.push(format!(
            "protocol-error count diverged: daemon charged {} vs predicted {}",
            d.protocol_errors, report.predicted_errors
        ));
    }
    let expected_conns = cfg.clients as u64 + 1;
    if d.connections != expected_conns {
        report.oracle_failures.push(format!(
            "connection count diverged: daemon accepted {} vs expected {expected_conns}",
            d.connections
        ));
    }
    Ok(report)
}
