//! Wire format for the chaos harness: a compact CSV probe-report line,
//! plus the textual corruptions the fault plan applies to it.
//!
//! The codec is deliberately *permissive* about semantics: `NaN`,
//! negative, and infinite speeds, and out-of-range segment ids, all
//! parse successfully. Semantic validation is the streaming service's
//! job (its admission rules reject them and count the rejection), and
//! the whole point of the harness is to deliver such reports to it.
//! Only *structurally* broken lines — wrong field count, unparseable
//! numbers — fail here, modelling a transport-level corruption that
//! never reaches the service.

/// Column header of the chaos probe-report format.
pub const OBS_HEADER: &str = "vehicle,timestamp_s,segment,speed_kmh";

/// Encodes one probe report. `{}` on `f64` prints the shortest string
/// that round-trips, so `parse_line(&encode_line(..))` is lossless —
/// including for `NaN` and infinities, which `f64`'s `FromStr` accepts.
pub fn encode_line(vehicle: u64, timestamp_s: u64, segment: usize, speed_kmh: f64) -> String {
    format!("{vehicle},{timestamp_s},{segment},{speed_kmh}")
}

/// Decodes one probe report line.
///
/// # Errors
///
/// A human-readable description of the structural problem (field count
/// or number syntax). Semantically invalid but well-formed reports are
/// `Ok` — the service's admission rules deal with those.
pub fn parse_line(line: &str) -> Result<(u64, u64, usize, f64), String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 4 {
        return Err(format!("expected 4 fields, got {}", fields.len()));
    }
    let vehicle = fields[0].trim().parse::<u64>().map_err(|e| format!("bad vehicle: {e}"))?;
    let timestamp_s = fields[1].trim().parse::<u64>().map_err(|e| format!("bad timestamp: {e}"))?;
    let segment = fields[2].trim().parse::<usize>().map_err(|e| format!("bad segment: {e}"))?;
    let speed_kmh = fields[3].trim().parse::<f64>().map_err(|e| format!("bad speed: {e}"))?;
    Ok((vehicle, timestamp_s, segment, speed_kmh))
}

/// The textual corruptions the plan can apply to a single report line.
///
/// The first two are structural (the line no longer parses); the rest
/// are semantic (the line parses, and the *service* must reject it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFault {
    /// Cut the line before its third field — too few fields to parse.
    Truncate,
    /// Replace the line with non-CSV noise.
    Garbage,
    /// Well-formed line whose speed is `NaN`.
    NanSpeed,
    /// Well-formed line whose speed is negative.
    NegativeSpeed,
    /// Well-formed line whose speed is `+inf`.
    InfiniteSpeed,
    /// Well-formed line naming a segment the service does not have.
    BadSegment,
}

impl LineFault {
    /// Short stable name used in fault logs (and their hashes).
    pub fn name(self) -> &'static str {
        match self {
            LineFault::Truncate => "truncate",
            LineFault::Garbage => "garbage",
            LineFault::NanSpeed => "nan-speed",
            LineFault::NegativeSpeed => "negative-speed",
            LineFault::InfiniteSpeed => "infinite-speed",
            LineFault::BadSegment => "bad-segment",
        }
    }
}

/// Applies `fault` to a well-formed report line. Falls back to
/// [`LineFault::Garbage`] when the input does not parse (cannot happen
/// when the harness corrupts only lines it encoded itself).
pub fn corrupt_line(line: &str, fault: LineFault, num_segments: usize) -> String {
    let Ok((vehicle, ts, segment, speed)) = parse_line(line) else {
        return "####garbage####".to_string();
    };
    match fault {
        LineFault::Truncate => {
            let cut = line.match_indices(',').nth(1).map(|(i, _)| i).unwrap_or(0);
            line[..cut].to_string()
        }
        LineFault::Garbage => "####garbage####".to_string(),
        LineFault::NanSpeed => encode_line(vehicle, ts, segment, f64::NAN),
        LineFault::NegativeSpeed => encode_line(vehicle, ts, segment, -speed.abs().max(1.0)),
        LineFault::InfiniteSpeed => encode_line(vehicle, ts, segment, f64::INFINITY),
        LineFault::BadSegment => encode_line(vehicle, ts, num_segments + 7, speed),
    }
}

/// Corruptions applied to a serialized service checkpoint. Every one of
/// these must make [`Service::restore`] fail — the differential oracle
/// asserts exactly that.
///
/// [`Service::restore`]: traffic_cs::Service::restore
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFault {
    /// Bump the format version in the header line.
    HeaderFlip,
    /// Cut the text at two thirds of its length (mid factor matrix for
    /// any real checkpoint).
    Truncate,
    /// Replace the leading characters of one factor hex word with
    /// non-hex characters (length preserved, so this exercises the
    /// digit validation, not the length check).
    HexBreak,
}

impl CheckpointFault {
    /// Short stable name used in fault logs (and their hashes).
    pub fn name(self) -> &'static str {
        match self {
            CheckpointFault::HeaderFlip => "header-flip",
            CheckpointFault::Truncate => "truncate",
            CheckpointFault::HexBreak => "hex-break",
        }
    }
}

/// Applies `fault` to checkpoint text. [`CheckpointFault::HexBreak`]
/// falls back to a header flip when the checkpoint has no factor rows
/// (`factors none`), so the result is always restore-rejectable.
pub fn corrupt_checkpoint(text: &str, fault: CheckpointFault) -> String {
    match fault {
        CheckpointFault::HeaderFlip => {
            text.replacen("cs-serve-checkpoint v1", "cs-serve-checkpoint v9", 1)
        }
        CheckpointFault::Truncate => text[..text.len() * 2 / 3].to_string(),
        CheckpointFault::HexBreak => {
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            let target = lines
                .iter()
                .rposition(|l| !l.is_empty() && l.split_whitespace().all(|w| w.len() == 16));
            match target {
                Some(i) => {
                    let row = &lines[i];
                    let first = row.split_whitespace().next().expect("non-empty row");
                    let broken = format!("zz{}", &first[2..]);
                    lines[i] = row.replacen(first, &broken, 1);
                    let mut out = lines.join("\n");
                    out.push('\n');
                    out
                }
                None => corrupt_checkpoint(text, CheckpointFault::HeaderFlip),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_including_non_finite() {
        for &speed in &[33.5, 0.0, f64::NAN, f64::INFINITY, -12.25] {
            let line = encode_line(7, 3600, 2, speed);
            let (v, t, s, sp) = parse_line(&line).unwrap();
            assert_eq!((v, t, s), (7, 3600, 2));
            assert_eq!(sp.to_bits(), speed.to_bits());
        }
    }

    #[test]
    fn structural_faults_fail_parse_semantic_faults_pass() {
        let clean = encode_line(1, 700, 0, 42.0);
        assert!(parse_line(&corrupt_line(&clean, LineFault::Truncate, 4)).is_err());
        assert!(parse_line(&corrupt_line(&clean, LineFault::Garbage, 4)).is_err());
        let (_, _, _, nan) = parse_line(&corrupt_line(&clean, LineFault::NanSpeed, 4)).unwrap();
        assert!(nan.is_nan());
        let (_, _, _, neg) =
            parse_line(&corrupt_line(&clean, LineFault::NegativeSpeed, 4)).unwrap();
        assert!(neg < 0.0);
        let (_, _, _, inf) =
            parse_line(&corrupt_line(&clean, LineFault::InfiniteSpeed, 4)).unwrap();
        assert!(inf.is_infinite());
        let (_, _, seg, _) = parse_line(&corrupt_line(&clean, LineFault::BadSegment, 4)).unwrap();
        assert!(seg >= 4);
    }

    #[test]
    fn checkpoint_corruptions_are_visible() {
        let text = "cs-serve-checkpoint v1\nclock 900\nhead_slot 3\nfactors 2 2\n\
                    3ff0000000000000 4000000000000000\n4008000000000000 4010000000000000\n";
        let flipped = corrupt_checkpoint(text, CheckpointFault::HeaderFlip);
        assert!(flipped.contains("v9") && !flipped.contains("v1\n"));
        let cut = corrupt_checkpoint(text, CheckpointFault::Truncate);
        assert!(cut.len() < text.len());
        let broken = corrupt_checkpoint(text, CheckpointFault::HexBreak);
        assert!(broken.contains("zz"));
        assert_eq!(broken.len(), text.len());
        // No factor rows -> HexBreak degrades to a header flip.
        let none = "cs-serve-checkpoint v1\nclock 0\nhead_slot 3\nfactors none\n";
        assert!(corrupt_checkpoint(none, CheckpointFault::HexBreak).contains("v9"));
    }
}
