//! Deterministic scoped worker pool.
//!
//! The completion engine's hot loops (per-row ridge solves in ALS,
//! chromosome fitness in the GA, fold evaluation in reference-set
//! selection) are embarrassingly parallel: `n` independent work items,
//! each producing a result for a known slot. This crate fans such loops
//! out over `std::thread::scope` workers while keeping the output
//! *bit-for-bit identical* to the sequential path:
//!
//! * every item `i` computes only from `i` (work stealing changes which
//!   worker runs an item, never the item's input or output slot);
//! * results land in slot `i` of the output, so assembly order is fixed;
//! * fallible loops report the error of the *smallest failing index*,
//!   which is schedule-independent because each index is claimed exactly
//!   once and a claimed failing index always runs.
//!
//! Thread-count resolution is uniform across the workspace: `1` means
//! sequential (no threads spawned), any other explicit value is used as
//! given, and `0` defers to the process-wide default set by
//! [`set_default_threads`] (falling back to the number of available
//! cores). CLI `--threads` flags set the process default once instead of
//! threading a parameter through every call site.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-worker tallies collected only when telemetry is on (see
/// [`FanoutTelemetry`]); zero-cost placeholders otherwise.
#[derive(Clone, Copy, Default)]
struct WorkerStats {
    claimed: u64,
    busy_ns: u128,
}

/// Instrumentation for one fan-out: a `workpool.fanout` span (resolved
/// worker count, items, per-worker claim counts, utilization) plus
/// process-global counters. Created only when debug-level telemetry or
/// metric collection is active, so the default path pays exactly one
/// relaxed atomic load per fan-out.
struct FanoutTelemetry {
    span: telemetry::Span,
    start: Instant,
}

impl FanoutTelemetry {
    fn begin(kind: &'static str, n: usize, workers: usize) -> Option<Self> {
        if !telemetry::enabled(telemetry::Level::Debug) && !telemetry::metrics_enabled() {
            return None;
        }
        let mut span = telemetry::span(telemetry::Level::Debug, "workpool.fanout");
        span.record("kind", kind);
        span.record("items", n);
        span.record("workers", workers);
        Some(Self { span, start: Instant::now() })
    }

    fn finish(mut self, stats: &[WorkerStats]) {
        let wall_ns = self.start.elapsed().as_nanos().max(1);
        let busy_ns: u128 = stats.iter().map(|s| s.busy_ns).sum();
        // Fraction of worker wall-clock spent inside work items: 1.0
        // means no worker ever starved waiting on the claim cursor.
        let utilization = busy_ns as f64 / (wall_ns as f64 * stats.len().max(1) as f64);
        if self.span.is_enabled() {
            let claimed: Vec<String> = stats.iter().map(|s| s.claimed.to_string()).collect();
            self.span.record("claimed_per_worker", claimed.join(","));
            self.span.record("utilization", utilization);
        }
        if telemetry::metrics_enabled() {
            telemetry::counter("workpool.fanouts").incr();
            let items: u64 = stats.iter().map(|s| s.claimed).sum();
            telemetry::counter("workpool.items").add(items);
            for (w, s) in stats.iter().enumerate() {
                telemetry::counter(&format!("workpool.worker.{w}.items_claimed")).add(s.claimed);
            }
            telemetry::gauge("workpool.utilization").set(utilization);
            telemetry::histogram("workpool.fanout_us").observe(wall_ns as f64 / 1e3);
        }
    }
}

/// Process-wide default used when a config asks for `0` threads.
/// `0` here means "unset": fall back to available parallelism.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default thread count consulted by
/// [`resolve_threads`] for requests of `0`. Passing `0` clears the
/// default (fall back to all available cores).
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Returns the process-wide default thread count (`0` = unset).
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// The `CS_THREADS` environment default, read once per process (`0` =
/// unset/unparseable). Sits between [`set_default_threads`] and the
/// available-cores fallback so a test matrix can sweep thread counts
/// over an unmodified binary: `CS_THREADS=8 cargo test`.
fn env_default_threads() -> usize {
    static ENV_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("CS_THREADS").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(0)
    })
}

/// Resolves a requested thread count to a concrete worker count:
/// explicit values pass through, `0` defers to [`set_default_threads`],
/// then to the `CS_THREADS` environment variable, and then to the number
/// of available cores. Always returns ≥ 1.
pub fn resolve_threads(requested: usize) -> usize {
    let n = match requested {
        0 => match default_threads() {
            0 => match env_default_threads() {
                0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
                e => e,
            },
            d => d,
        },
        n => n,
    };
    n.max(1)
}

/// Pointer wrapper so scoped workers can address disjoint slots of a
/// caller-owned slice. Safety rests on the claim protocol: each index is
/// handed to exactly one worker by an atomic cursor.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order: `out[i] == f(i)` regardless of the worker count or
/// scheduling, so parallel and sequential runs are interchangeable
/// wherever `f` itself is deterministic.
///
/// `threads` follows [`resolve_threads`] semantics; the effective count
/// is additionally capped at `n`. With one worker (or `n <= 1`) no
/// threads are spawned.
pub fn parallel_map_indexed<O, F>(n: usize, threads: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let tele = FanoutTelemetry::begin("map", n, workers);
    let track = tele.is_some();
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let base = SendPtr(out.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let base = &base;
    let cursor = &cursor;
    let mut stats = vec![WorkerStats::default(); workers];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut my = WorkerStats::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t = track.then(Instant::now);
                        let value = f(i);
                        if let Some(t) = t {
                            my.busy_ns += t.elapsed().as_nanos();
                            my.claimed += 1;
                        }
                        // SAFETY: `fetch_add` hands index `i` to exactly one
                        // worker, `i < n` is checked above, and `out` outlives
                        // the scope; the slot was initialized to `None` so the
                        // overwrite drops no live value.
                        unsafe { base.0.add(i).write(Some(value)) };
                    }
                    my
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(my) => stats[w] = my,
            }
        }
    });
    if let Some(tele) = tele {
        tele.finish(&stats);
    }
    out.into_iter().map(|slot| slot.expect("every index claimed by exactly one worker")).collect()
}

/// Runs `f(i, &mut items[i])` for every item across `threads` workers.
///
/// On failure, returns the error from the smallest failing index — a
/// schedule-independent choice (see module docs) that matches what the
/// sequential loop would report first. Items after a failure may be left
/// unprocessed; callers treat the output as poisoned on `Err`, exactly
/// as they would after an early-returning sequential loop.
pub fn try_parallel_for_each_mut<T, E, F>(items: &mut [T], threads: usize, f: F) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &mut T) -> Result<(), E> + Sync,
{
    try_parallel_for_each_mut_with(items, threads, || (), |i, item, ()| f(i, item))
}

/// Scratch-carrying variant of [`try_parallel_for_each_mut`]: every
/// worker calls `init()` exactly once and threads the resulting scratch
/// value through all the items it claims, so per-item state (solver
/// buffers, accumulators) is allocated once per worker per fan-out
/// instead of once per item. The sequential path (`workers <= 1`) builds
/// a single scratch and reuses it across all items.
///
/// All of [`try_parallel_for_each_mut`]'s guarantees carry over
/// unchanged: item `i` computes only from `i` (the scratch must not leak
/// information between items — callers reset it per item or overwrite it
/// wholesale), results land in fixed slots, and a failure reports the
/// error of the smallest failing index regardless of scheduling.
pub fn try_parallel_for_each_mut_with<T, S, E, I, F>(
    items: &mut [T],
    threads: usize,
    init: I,
    f: F,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut T, &mut S) -> Result<(), E> + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        let mut scratch = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, &mut scratch)?;
        }
        return Ok(());
    }

    let tele = FanoutTelemetry::begin("try_for_each", n, workers);
    let track = tele.is_some();
    let base = SendPtr(items.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let init = &init;
    let base = &base;
    let cursor = &cursor;
    let mut first_err: Option<(usize, E)> = None;
    let mut stats = vec![WorkerStats::default(); workers];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || -> (Option<(usize, E)>, WorkerStats) {
                    let mut my = WorkerStats::default();
                    let mut scratch = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return (None, my);
                        }
                        // SAFETY: index `i` is claimed by exactly one
                        // worker and `i < n`, so this is the only live
                        // `&mut` to `items[i]`.
                        let item = unsafe { &mut *base.0.add(i) };
                        let t = track.then(Instant::now);
                        let result = f(i, item, &mut scratch);
                        if let Some(t) = t {
                            my.busy_ns += t.elapsed().as_nanos();
                            my.claimed += 1;
                        }
                        if let Err(e) = result {
                            return (Some((i, e)), my);
                        }
                    }
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok((worker_err, my)) => {
                    stats[w] = my;
                    if let Some((i, e)) = worker_err {
                        if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            first_err = Some((i, e));
                        }
                    }
                }
            }
        }
    });
    if let Some(tele) = tele {
        tele.finish(&stats);
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let expected: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 8] {
            let got = parallel_map_indexed(257, threads, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_empty_and_single() {
        assert_eq!(parallel_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn for_each_mut_updates_every_item() {
        let mut items: Vec<i64> = (0..100).collect();
        let r: Result<(), ()> = try_parallel_for_each_mut(&mut items, 4, |i, item| {
            *item += i as i64;
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(items, (0..100).map(|i| 2 * i).collect::<Vec<i64>>());
    }

    #[test]
    fn for_each_mut_reports_smallest_failing_index() {
        for threads in [1, 2, 5] {
            let mut items = vec![0u8; 64];
            let r = try_parallel_for_each_mut(&mut items, threads, |i, _| {
                if i % 10 == 7 {
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(r, Err(7), "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_with_reuses_scratch_per_worker() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 3, 8] {
            let inits = AtomicUsize::new(0);
            let mut items: Vec<usize> = vec![0; 100];
            let r: Result<(), ()> = try_parallel_for_each_mut_with(
                &mut items,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |i, item, scratch| {
                    // Scratch persists across items on a worker; per-item
                    // determinism comes from overwriting it each claim.
                    scratch.clear();
                    scratch.extend(0..=i);
                    *item = scratch.iter().sum();
                    Ok(())
                },
            );
            assert!(r.is_ok());
            let expected: Vec<usize> = (0..100).map(|i| i * (i + 1) / 2).collect();
            assert_eq!(items, expected, "threads={threads}");
            let n_inits = inits.load(Ordering::Relaxed);
            assert!(
                n_inits <= threads.max(1) && n_inits >= 1,
                "threads={threads}: {n_inits} scratch inits"
            );
        }
    }

    #[test]
    fn for_each_mut_with_sequential_initializes_once() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let mut items = vec![0u8; 50];
        let r: Result<(), ()> = try_parallel_for_each_mut_with(
            &mut items,
            1,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _, _| Ok(()),
        );
        assert!(r.is_ok());
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn resolve_threads_semantics() {
        set_default_threads(0);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
        set_default_threads(3);
        assert_eq!(resolve_threads(0), 3, "explicit default beats CS_THREADS and cores");
        assert_eq!(resolve_threads(2), 2);
        set_default_threads(0);
        // CS_THREADS is read once per process, so with no explicit
        // default the resolution is stable for the process lifetime
        // (either the env value or the core count).
        let resolved = resolve_threads(0);
        assert_eq!(resolve_threads(0), resolved);
        if env_default_threads() != 0 {
            assert_eq!(resolved, env_default_threads());
        }
    }

    #[test]
    fn map_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(16, 2, |i| {
                if i == 9 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
