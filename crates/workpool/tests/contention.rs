//! Stress tests for the pool's error and panic guarantees under real
//! multi-thread contention — many workers, many repetitions, work items
//! with deliberately skewed durations so claim order varies run to run.

use std::sync::atomic::{AtomicUsize, Ordering};
use workpool::{parallel_map_indexed, try_parallel_for_each_mut, try_parallel_for_each_mut_with};

/// The smallest failing index must win no matter which worker reaches
/// which failure first. Later failures are made *faster* than earlier
/// ones so a naive "first error observed" implementation would report
/// the wrong index with high probability.
#[test]
fn smallest_failing_index_wins_under_contention() {
    const N: usize = 512;
    const RUNS: usize = 50;
    for run in 0..RUNS {
        // Failures at 31, 32, … — everything ≥ 31 fails; 31 must win.
        let mut items = vec![0u8; N];
        let r = try_parallel_for_each_mut(&mut items, 8, |i, _| {
            if i >= 31 {
                // Fail immediately: high indices race ahead.
                return Err(i);
            }
            // Successful low indices burn time, delaying the worker that
            // will eventually claim index 31.
            std::hint::black_box((0..500).map(|x| x as f64).sum::<f64>());
            Ok(())
        });
        assert_eq!(r, Err(31), "run {run}");
    }
}

/// Every index is claimed exactly once even when workers abort early on
/// errors: the indices processed by *some* worker plus the never-claimed
/// tail must partition `0..n` with no duplicates.
#[test]
fn each_index_claimed_at_most_once_despite_failures() {
    const N: usize = 256;
    for _ in 0..20 {
        let seen: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let mut items = vec![0u8; N];
        let _ = try_parallel_for_each_mut(&mut items, 6, |i, _| {
            seen[i].fetch_add(1, Ordering::Relaxed);
            if i % 40 == 13 {
                Err(i)
            } else {
                Ok(())
            }
        });
        for (i, s) in seen.iter().enumerate() {
            assert!(s.load(Ordering::Relaxed) <= 1, "index {i} ran twice");
        }
    }
}

/// A panicking work item must propagate out of the fan-out (the scope
/// joins every worker, so the panic re-raises on the caller thread)
/// rather than deadlocking or being swallowed.
#[test]
fn try_for_each_panic_propagates() {
    let result = std::panic::catch_unwind(|| {
        let mut items = vec![0u8; 64];
        let _ = try_parallel_for_each_mut(&mut items, 4, |i, _| -> Result<(), ()> {
            if i == 17 {
                panic!("worker panic at {i}");
            }
            Ok(())
        });
    });
    let payload = result.expect_err("panic must propagate to the caller");
    let msg = payload.downcast_ref::<String>().expect("panic carries its message");
    assert!(msg.contains("worker panic at 17"), "unexpected payload: {msg}");
}

/// Same guarantee for the infallible map: a panic inside `f` surfaces on
/// the caller, and subsequent fan-outs on the same thread still work
/// (no poisoned global state).
#[test]
fn map_panic_leaves_pool_usable() {
    let result = std::panic::catch_unwind(|| {
        parallel_map_indexed(32, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        })
    });
    assert!(result.is_err());
    let ok = parallel_map_indexed(32, 4, |i| i * 2);
    assert_eq!(ok, (0..32).map(|i| i * 2).collect::<Vec<_>>());
}

/// The scratch-carrying variant must uphold the same smallest-index
/// error guarantee: per-worker scratch changes which buffer an item
/// writes through, never which error wins.
#[test]
fn scratch_variant_smallest_failing_index_wins_under_contention() {
    const N: usize = 512;
    const RUNS: usize = 50;
    for run in 0..RUNS {
        let mut items = vec![0u8; N];
        let r = try_parallel_for_each_mut_with(
            &mut items,
            8,
            || vec![0.0f64; 64],
            |i, _, scratch| {
                if i >= 31 {
                    return Err(i);
                }
                scratch.iter_mut().for_each(|v| *v += i as f64);
                std::hint::black_box(scratch.iter().sum::<f64>());
                Ok(())
            },
        );
        assert_eq!(r, Err(31), "run {run}");
    }
}

/// Fixed-slot writes with a reused scratch: every item's output depends
/// only on its index even though workers recycle their buffers across
/// claims in scheduler-dependent orders.
#[test]
fn scratch_variant_output_is_schedule_independent() {
    const N: usize = 300;
    let expected: Vec<f64> = (0..N).map(|i| (0..i).map(|k| k as f64).sum()).collect();
    for threads in [2, 3, 8, 16] {
        for _ in 0..10 {
            let mut items = vec![0.0f64; N];
            let r: Result<(), ()> = try_parallel_for_each_mut_with(
                &mut items,
                threads,
                || vec![0.0f64; N],
                |i, item, scratch| {
                    // Deliberately dirty the whole scratch, then rebuild
                    // the part this item reads — stale state from the
                    // worker's previous claims must not leak through.
                    scratch.iter_mut().for_each(|v| *v += 1.0);
                    for (k, slot) in scratch.iter_mut().enumerate().take(i) {
                        *slot = k as f64;
                    }
                    *item = scratch[..i].iter().sum();
                    Ok(())
                },
            );
            assert!(r.is_ok());
            assert_eq!(items, expected, "threads={threads}");
        }
    }
}

/// Error selection agrees with the sequential path for every worker
/// count, repeated to let the scheduler vary interleavings.
#[test]
fn error_choice_matches_sequential_for_every_thread_count() {
    const N: usize = 128;
    let fails = |i: usize| i % 17 == 3 || i % 29 == 11;
    let expected = (0..N).find(|&i| fails(i)).map(Err::<(), usize>).unwrap();
    for threads in [2, 3, 4, 8, 16] {
        for _ in 0..10 {
            let mut items = vec![0u8; N];
            let r = try_parallel_for_each_mut(&mut items, threads, |i, _| {
                if fails(i) {
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(r, expected, "threads={threads}");
        }
    }
}
