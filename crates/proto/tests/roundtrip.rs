//! Property suite for the `cs-wire/v1` codec.
//!
//! Two obligations, per the protocol contract:
//!
//! 1. **Canonical round-trip** — an arbitrary well-formed message
//!    encodes to bytes that decode back to an equal message, and
//!    re-encoding those decoded messages reproduces the bytes
//!    identically. (Floats travel as bit patterns, so NaN payloads are
//!    covered, not special-cased.)
//! 2. **Totality** — truncating or corrupting any encoded frame yields
//!    a typed [`DecodeError`], never a panic. The decoders run over
//!    fully arbitrary byte soup too.

use proptest::collection::vec;
use proptest::prelude::*;

use proto::{DecodeError, ErrorCode, Request, Response, WireEstimate, WireReport, WireStats};

const FULL_U64: std::ops::RangeInclusive<u64> = 0..=u64::MAX;

fn report_strategy() -> impl Strategy<Value = WireReport> {
    (FULL_U64, FULL_U64, FULL_U64, FULL_U64).prop_map(
        |(vehicle, timestamp_s, segment, speed_bits)| WireReport {
            vehicle,
            timestamp_s,
            segment,
            speed_bits,
        },
    )
}

fn stats_strategy() -> impl Strategy<Value = WireStats> {
    (FULL_U64, FULL_U64, FULL_U64, FULL_U64, FULL_U64, FULL_U64, FULL_U64).prop_map(
        |(admitted, rejected, dropped_late, duplicates, queue_dropped, solves, degraded)| {
            WireStats {
                admitted,
                rejected,
                dropped_late,
                duplicates,
                queue_dropped,
                solves,
                degraded,
            }
        },
    )
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (0usize..8, report_strategy(), vec(report_strategy(), 0..5), 0u16..=u16::MAX).prop_map(
        |(pick, one, batch, version)| match pick {
            0 => Request::Hello { version },
            1 => Request::Report(one),
            2 => Request::ReportBatch(batch),
            3 => Request::QueryEstimate,
            4 => Request::QueryStats,
            5 => Request::QueryHealth,
            6 => Request::Sync,
            _ => Request::Shutdown,
        },
    )
}

fn estimate_strategy() -> impl Strategy<Value = WireEstimate> {
    (FULL_U64, FULL_U64, 0u8..=1, FULL_U64, FULL_U64, 1u32..5, 1u32..5).prop_flat_map(
        |(head_slot, solved_at_s, stale, sweeps, objective_bits, rows, cols)| {
            vec(FULL_U64, (rows * cols) as usize).prop_map(move |values_bits| WireEstimate {
                head_slot,
                solved_at_s,
                stale: stale == 1,
                sweeps,
                objective_bits,
                rows,
                cols,
                values_bits,
            })
        },
    )
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        0usize..8,
        estimate_strategy(),
        stats_strategy(),
        vec(stats_strategy(), 0..5),
        0u16..=u16::MAX,
        "[a-z ]{0,24}",
        0usize..5,
        (FULL_U64, FULL_U64, FULL_U64),
    )
        .prop_map(|(pick, est, merged, shards, version, message, code_pick, trip)| {
            let codes = [
                ErrorCode::ExpectedHello,
                ErrorCode::UnsupportedVersion,
                ErrorCode::BadRequest,
                ErrorCode::NotReady,
                ErrorCode::Internal,
            ];
            let (a, b, c) = trip;
            match pick {
                0 => Response::Hello { version },
                1 => Response::Error { code: codes[code_pick], message },
                2 => Response::Estimate(None),
                3 => Response::Estimate(Some(est)),
                4 => Response::Stats { merged, shards },
                5 => Response::Health {
                    ok: a % 2 == 0,
                    shards: (a >> 32) as u32,
                    segments: b,
                    queue_len: c,
                    clock_s: a ^ b,
                },
                6 => Response::Synced { pushed: a, tick_us: b, solve_us: c, stats: merged },
                _ => Response::Bye,
            }
        })
}

proptest! {
    #[test]
    fn request_round_trip_is_byte_identical(req in request_strategy()) {
        let bytes = req.encode();
        let decoded = Request::decode(&bytes).expect("well-formed request must decode");
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn response_round_trip_is_byte_identical(resp in response_strategy()) {
        let bytes = resp.encode();
        let decoded = Response::decode(&bytes).expect("well-formed response must decode");
        prop_assert_eq!(&decoded, &resp);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn truncated_requests_fail_typed(req in request_strategy(), frac in 0.0f64..1.0) {
        let bytes = req.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        match Request::decode(&bytes[..cut]) {
            // Every strict prefix must fail: the codec has no optional
            // trailing fields.
            Err(
                DecodeError::Empty
                | DecodeError::Truncated { .. }
                | DecodeError::UnknownTag(_)
            ) => {}
            Ok(msg) => return Err(TestCaseError::Fail(format!(
                "prefix of {cut}/{} bytes decoded as {msg:?}", bytes.len()
            ))),
            Err(other) => return Err(TestCaseError::Fail(format!(
                "unexpected error class for truncation: {other:?}"
            ))),
        }
    }

    #[test]
    fn corrupted_responses_never_panic(
        resp in response_strategy(),
        flip_at in 0usize..4096,
        flip_mask in 1u8..=u8::MAX,
        extra in vec(0u8..=u8::MAX, 0..9),
    ) {
        let mut bytes = resp.encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_mask;
        bytes.extend_from_slice(&extra);
        // Any outcome is fine except a panic; if it decodes, the result
        // must still re-encode canonically (no aliased encodings that
        // round-trip to different bytes and a decode success).
        if let Ok(decoded) = Response::decode(&bytes) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(soup in vec(0u8..=u8::MAX, 0..64)) {
        let _ = Request::decode(&soup);
        let _ = Response::decode(&soup);
    }
}
