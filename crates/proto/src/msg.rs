//! Typed `cs-wire/v1` messages and their canonical binary encoding.
//!
//! Every message has exactly one valid byte representation: a one-byte
//! tag followed by fixed-width little-endian fields (lengths are `u32`,
//! scalars `u64`, floats are IEEE-754 bit patterns carried as `u64` so
//! NaN payloads survive the wire bit-for-bit). Canonical encoding is
//! what makes the round-trip property testable — `decode(encode(m)) ==
//! m` *and* `encode(decode(b)) == b` — and what lets the chaos harness
//! hash byte streams instead of structures.
//!
//! Decoding never panics. Every malformed input maps to a
//! [`DecodeError`] variant: short buffers are [`DecodeError::Truncated`],
//! long ones [`DecodeError::Trailing`], unknown tags
//! [`DecodeError::UnknownTag`], and semantic violations (a batch count
//! that disagrees with the payload, a non-boolean flag byte)
//! [`DecodeError::BadValue`].

use std::fmt;

/// Human-readable protocol identifier, spoken in docs and error text.
pub const PROTOCOL: &str = "cs-wire/v1";

/// Numeric protocol version carried by the `Hello` handshake.
pub const VERSION: u16 = 1;

/// One probe report on the wire. Speeds travel as raw IEEE-754 bits so
/// the codec is total: every `u64` is encodable, NaN included, and
/// equality is bit equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireReport {
    /// Anonymized vehicle identifier.
    pub vehicle: u64,
    /// Report timestamp, seconds.
    pub timestamp_s: u64,
    /// Global road-segment column index.
    pub segment: u64,
    /// `f64::to_bits` of the speed in km/h.
    pub speed_bits: u64,
}

impl WireReport {
    /// Builds a report from a plain speed.
    pub fn new(vehicle: u64, timestamp_s: u64, segment: u64, speed_kmh: f64) -> Self {
        Self { vehicle, timestamp_s, segment, speed_bits: speed_kmh.to_bits() }
    }

    /// The speed as an `f64`.
    pub fn speed_kmh(&self) -> f64 {
        f64::from_bits(self.speed_bits)
    }
}

/// Admission counters as served over the wire (mirrors the service's
/// `ServeStats` field for field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Reports admitted into the window.
    pub admitted: u64,
    /// Malformed reports rejected.
    pub rejected: u64,
    /// Reports that arrived after their slot was evicted.
    pub dropped_late: u64,
    /// Exact re-deliveries (last write wins; also admitted).
    pub duplicates: u64,
    /// Reports refused by queue backpressure.
    pub queue_dropped: u64,
    /// Successful solves.
    pub solves: u64,
    /// Degraded ticks (solve failure or watchdog overrun).
    pub degraded: u64,
}

/// A merged live estimate on the wire: the window matrix as raw `f64`
/// bit patterns in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEstimate {
    /// Absolute slot index of the newest window row.
    pub head_slot: u64,
    /// Stream clock when the estimate was produced.
    pub solved_at_s: u64,
    /// Watchdog staleness / partial-merge flag.
    pub stale: bool,
    /// ALS sweeps the (slowest) solve ran.
    pub sweeps: u64,
    /// `f64::to_bits` of the summed solve objective.
    pub objective_bits: u64,
    /// Window rows (slots).
    pub rows: u32,
    /// Window columns (segments).
    pub cols: u32,
    /// `rows * cols` cell values, row-major, as `f64::to_bits`.
    pub values_bits: Vec<u64>,
}

/// Wire error category, carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// First frame was not a `Hello`.
    ExpectedHello,
    /// The peer speaks a different `cs-wire` version.
    UnsupportedVersion,
    /// The request decoded but cannot be served (bad field values).
    BadRequest,
    /// The server has no estimate yet (distinct from an empty one).
    NotReady,
    /// Internal server failure.
    Internal,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::ExpectedHello => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::NotReady => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u16(v: u16) -> Result<Self, DecodeError> {
        Ok(match v {
            1 => ErrorCode::ExpectedHello,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::NotReady,
            5 => ErrorCode::Internal,
            _ => return Err(DecodeError::BadValue("unknown error code")),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::ExpectedHello => "expected-hello",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NotReady => "not-ready",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version handshake; must be the first frame on every connection.
    Hello {
        /// The client's `cs-wire` version (see [`VERSION`]).
        version: u16,
    },
    /// One probe report (ingest plane, pipelined — no response).
    Report(WireReport),
    /// A batch of probe reports (ingest plane, pipelined — no response).
    ReportBatch(Vec<WireReport>),
    /// Read the merged live estimate (query plane).
    QueryEstimate,
    /// Read merged + per-shard admission counters (query plane).
    QueryStats,
    /// Liveness / readiness probe (query plane).
    QueryHealth,
    /// Barrier: drain and solve everything pushed so far, then report.
    Sync,
    /// Graceful shutdown; the server checkpoints (when configured),
    /// replies [`Response::Bye`], and exits.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake acknowledgement carrying the server's version.
    Hello {
        /// The server's `cs-wire` version.
        version: u16,
    },
    /// Typed failure; the connection stays usable unless the error was
    /// a handshake or framing violation.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The merged live estimate, or `None` before the first solve.
    Estimate(Option<WireEstimate>),
    /// Merged counters plus one entry per shard.
    Stats {
        /// Sum over shards (plus router-level rejections).
        merged: WireStats,
        /// Per-shard counters, in shard order.
        shards: Vec<WireStats>,
    },
    /// Health summary.
    Health {
        /// Whether the engine thread is accepting work.
        ok: bool,
        /// Number of shard workers.
        shards: u32,
        /// Total segment columns served.
        segments: u64,
        /// Reports queued across all shards right now.
        queue_len: u64,
        /// The stream clock, seconds.
        clock_s: u64,
    },
    /// Reply to [`Request::Sync`]: everything pushed before the sync is
    /// now reflected in the counters and the estimate.
    Synced {
        /// Reports this connection pushed since its last sync.
        pushed: u64,
        /// Wall micros of the forced tick.
        tick_us: u64,
        /// Wall micros of the solve inside that tick.
        solve_us: u64,
        /// Merged counters after the tick.
        stats: WireStats,
    },
    /// Shutdown acknowledgement; the server closes after sending it.
    Bye,
}

/// Typed decode failure. Every variant is a normal value — decoding
/// never panics, whatever the input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Zero-length payload (no tag byte).
    Empty,
    /// The tag byte names no known message.
    UnknownTag(u8),
    /// The payload ended before a field did.
    Truncated {
        /// Bytes the field needed.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// Bytes were left over after the last field.
    Trailing {
        /// Count of unconsumed bytes.
        extra: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A field decoded but violates the message's invariants.
    BadValue(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty payload"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            DecodeError::Truncated { need, have } => {
                write!(f, "payload truncated: field needs {need} bytes, {have} remain")
            }
            DecodeError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadValue(what) => write!(f, "invalid field value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Message tags. Requests live below 0x80, responses above — a peer that
// confuses the two planes gets `UnknownTag`, not a misparse.
const TAG_HELLO: u8 = 0x01;
const TAG_REPORT: u8 = 0x02;
const TAG_REPORT_BATCH: u8 = 0x03;
const TAG_QUERY_ESTIMATE: u8 = 0x10;
const TAG_QUERY_STATS: u8 = 0x11;
const TAG_QUERY_HEALTH: u8 = 0x12;
const TAG_SYNC: u8 = 0x13;
const TAG_SHUTDOWN: u8 = 0x14;

const TAG_R_HELLO: u8 = 0x81;
const TAG_R_ERROR: u8 = 0x82;
const TAG_R_ESTIMATE: u8 = 0x83;
const TAG_R_STATS: u8 = 0x84;
const TAG_R_HEALTH: u8 = 0x85;
const TAG_R_SYNCED: u8 = 0x86;
const TAG_R_BYE: u8 = 0x87;

/// Little-endian field writer over a growable buffer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn with_tag(tag: u8) -> Self {
        Self { buf: vec![tag] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn report(&mut self, r: &WireReport) {
        self.u64(r.vehicle);
        self.u64(r.timestamp_s);
        self.u64(r.segment);
        self.u64(r.speed_bits);
    }

    fn stats(&mut self, s: &WireStats) {
        self.u64(s.admitted);
        self.u64(s.rejected);
        self.u64(s.dropped_late);
        self.u64(s.duplicates);
        self.u64(s.queue_dropped);
        self.u64(s.solves);
        self.u64(s.degraded);
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian field reader with typed exhaustion errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(DecodeError::Truncated { need: n, have });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::BadValue("flag byte must be 0 or 1")),
        }
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    fn report(&mut self) -> Result<WireReport, DecodeError> {
        Ok(WireReport {
            vehicle: self.u64()?,
            timestamp_s: self.u64()?,
            segment: self.u64()?,
            speed_bits: self.u64()?,
        })
    }

    fn stats(&mut self) -> Result<WireStats, DecodeError> {
        Ok(WireStats {
            admitted: self.u64()?,
            rejected: self.u64()?,
            dropped_late: self.u64()?,
            duplicates: self.u64()?,
            queue_dropped: self.u64()?,
            solves: self.u64()?,
            degraded: self.u64()?,
        })
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Guards a length prefix before any allocation: the remaining
    /// payload must plausibly hold `count` items of `item_len` bytes.
    fn check_len(&self, count: usize, item_len: usize) -> Result<(), DecodeError> {
        let have = self.buf.len() - self.pos;
        let need = count.saturating_mul(item_len);
        if have < need {
            return Err(DecodeError::Truncated { need, have });
        }
        Ok(())
    }

    fn finish(self) -> Result<(), DecodeError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(DecodeError::Trailing { extra });
        }
        Ok(())
    }
}

impl Request {
    /// Canonical encoding of this request (one frame payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { version } => {
                let mut w = Writer::with_tag(TAG_HELLO);
                w.u16(*version);
                w.buf
            }
            Request::Report(r) => {
                let mut w = Writer::with_tag(TAG_REPORT);
                w.report(r);
                w.buf
            }
            Request::ReportBatch(reports) => {
                let mut w = Writer::with_tag(TAG_REPORT_BATCH);
                w.u32(reports.len() as u32);
                for r in reports {
                    w.report(r);
                }
                w.buf
            }
            Request::QueryEstimate => vec![TAG_QUERY_ESTIMATE],
            Request::QueryStats => vec![TAG_QUERY_STATS],
            Request::QueryHealth => vec![TAG_QUERY_HEALTH],
            Request::Sync => vec![TAG_SYNC],
            Request::Shutdown => vec![TAG_SHUTDOWN],
        }
    }

    /// Decodes one request payload; total over arbitrary bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| DecodeError::Empty)?;
        let msg = match tag {
            TAG_HELLO => Request::Hello { version: r.u16()? },
            TAG_REPORT => Request::Report(r.report()?),
            TAG_REPORT_BATCH => {
                let count = r.u32()? as usize;
                r.check_len(count, 32)?;
                let mut reports = Vec::with_capacity(count);
                for _ in 0..count {
                    reports.push(r.report()?);
                }
                Request::ReportBatch(reports)
            }
            TAG_QUERY_ESTIMATE => Request::QueryEstimate,
            TAG_QUERY_STATS => Request::QueryStats,
            TAG_QUERY_HEALTH => Request::QueryHealth,
            TAG_SYNC => Request::Sync,
            TAG_SHUTDOWN => Request::Shutdown,
            other => return Err(DecodeError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl Response {
    /// Canonical encoding of this response (one frame payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Hello { version } => {
                let mut w = Writer::with_tag(TAG_R_HELLO);
                w.u16(*version);
                w.buf
            }
            Response::Error { code, message } => {
                let mut w = Writer::with_tag(TAG_R_ERROR);
                w.u16(code.to_u16());
                w.str(message);
                w.buf
            }
            Response::Estimate(est) => {
                let mut w = Writer::with_tag(TAG_R_ESTIMATE);
                match est {
                    None => w.u8(0),
                    Some(e) => {
                        w.u8(1);
                        w.u64(e.head_slot);
                        w.u64(e.solved_at_s);
                        w.bool(e.stale);
                        w.u64(e.sweeps);
                        w.u64(e.objective_bits);
                        w.u32(e.rows);
                        w.u32(e.cols);
                        for &bits in &e.values_bits {
                            w.u64(bits);
                        }
                    }
                }
                w.buf
            }
            Response::Stats { merged, shards } => {
                let mut w = Writer::with_tag(TAG_R_STATS);
                w.stats(merged);
                w.u32(shards.len() as u32);
                for s in shards {
                    w.stats(s);
                }
                w.buf
            }
            Response::Health { ok, shards, segments, queue_len, clock_s } => {
                let mut w = Writer::with_tag(TAG_R_HEALTH);
                w.bool(*ok);
                w.u32(*shards);
                w.u64(*segments);
                w.u64(*queue_len);
                w.u64(*clock_s);
                w.buf
            }
            Response::Synced { pushed, tick_us, solve_us, stats } => {
                let mut w = Writer::with_tag(TAG_R_SYNCED);
                w.u64(*pushed);
                w.u64(*tick_us);
                w.u64(*solve_us);
                w.stats(stats);
                w.buf
            }
            Response::Bye => vec![TAG_R_BYE],
        }
    }

    /// Decodes one response payload; total over arbitrary bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(|_| DecodeError::Empty)?;
        let msg = match tag {
            TAG_R_HELLO => Response::Hello { version: r.u16()? },
            TAG_R_ERROR => {
                let code = ErrorCode::from_u16(r.u16()?)?;
                let message = r.str()?;
                Response::Error { code, message }
            }
            TAG_R_ESTIMATE => match r.u8()? {
                0 => Response::Estimate(None),
                1 => {
                    let head_slot = r.u64()?;
                    let solved_at_s = r.u64()?;
                    let stale = r.bool()?;
                    let sweeps = r.u64()?;
                    let objective_bits = r.u64()?;
                    let rows = r.u32()?;
                    let cols = r.u32()?;
                    let count = (rows as usize).saturating_mul(cols as usize);
                    r.check_len(count, 8)?;
                    let mut values_bits = Vec::with_capacity(count);
                    for _ in 0..count {
                        values_bits.push(r.u64()?);
                    }
                    Response::Estimate(Some(WireEstimate {
                        head_slot,
                        solved_at_s,
                        stale,
                        sweeps,
                        objective_bits,
                        rows,
                        cols,
                        values_bits,
                    }))
                }
                _ => return Err(DecodeError::BadValue("estimate presence byte must be 0 or 1")),
            },
            TAG_R_STATS => {
                let merged = r.stats()?;
                let count = r.u32()? as usize;
                r.check_len(count, 56)?;
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(r.stats()?);
                }
                Response::Stats { merged, shards }
            }
            TAG_R_HEALTH => Response::Health {
                ok: r.bool()?,
                shards: r.u32()?,
                segments: r.u64()?,
                queue_len: r.u64()?,
                clock_s: r.u64()?,
            },
            TAG_R_SYNCED => Response::Synced {
                pushed: r.u64()?,
                tick_us: r.u64()?,
                solve_us: r.u64()?,
                stats: r.stats()?,
            },
            TAG_R_BYE => Response::Bye,
            other => return Err(DecodeError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let msgs = vec![
            Request::Hello { version: VERSION },
            Request::Report(WireReport::new(7, 3600, 4, 52.5)),
            Request::ReportBatch(vec![
                WireReport::new(1, 10, 0, 1.0),
                WireReport::new(2, 20, 3, f64::NAN),
            ]),
            Request::QueryEstimate,
            Request::QueryStats,
            Request::QueryHealth,
            Request::Sync,
            Request::Shutdown,
        ];
        for msg in msgs {
            let bytes = msg.encode();
            let back = Request::decode(&bytes).unwrap();
            assert_eq!(back, msg);
            assert_eq!(back.encode(), bytes, "canonical encoding for {msg:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let stats = WireStats { admitted: 5, rejected: 1, ..WireStats::default() };
        let msgs = vec![
            Response::Hello { version: VERSION },
            Response::Error { code: ErrorCode::BadRequest, message: "nope".into() },
            Response::Estimate(None),
            Response::Estimate(Some(WireEstimate {
                head_slot: 9,
                solved_at_s: 8100,
                stale: true,
                sweeps: 4,
                objective_bits: 1.25f64.to_bits(),
                rows: 2,
                cols: 3,
                values_bits: vec![0, 1, 2, 3, 4, 5],
            })),
            Response::Stats { merged: stats, shards: vec![stats, WireStats::default()] },
            Response::Health { ok: true, shards: 4, segments: 64, queue_len: 0, clock_s: 7200 },
            Response::Synced { pushed: 12, tick_us: 800, solve_us: 640, stats },
            Response::Bye,
        ];
        for msg in msgs {
            let bytes = msg.encode();
            let back = Response::decode(&bytes).unwrap();
            assert_eq!(back, msg);
            assert_eq!(back.encode(), bytes, "canonical encoding for {msg:?}");
        }
    }

    #[test]
    fn empty_and_unknown_tags_are_typed() {
        assert_eq!(Request::decode(&[]), Err(DecodeError::Empty));
        assert_eq!(Request::decode(&[0x7f]), Err(DecodeError::UnknownTag(0x7f)));
        // A response tag fed to the request decoder is unknown, not UB.
        assert_eq!(Request::decode(&[TAG_R_BYE]), Err(DecodeError::UnknownTag(TAG_R_BYE)));
        assert_eq!(Response::decode(&[TAG_SYNC]), Err(DecodeError::UnknownTag(TAG_SYNC)));
    }

    #[test]
    fn batch_count_must_match_payload() {
        // Claim 1000 reports but supply one: Truncated before allocation.
        let mut bytes = vec![TAG_REPORT_BATCH];
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        match Request::decode(&bytes) {
            Err(DecodeError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Sync.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(DecodeError::Trailing { extra: 1 }));
    }
}
