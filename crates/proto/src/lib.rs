//! `proto` — the `cs-wire/v1` wire protocol.
//!
//! The one public surface every network participant shares: the serve
//! daemon, the CLI clients, the socket-transport load generator, and
//! the chaos connection-fault injectors all speak exactly these types.
//!
//! The protocol is deliberately primitive — hand-rolled, zero
//! dependencies, `std::net` only:
//!
//! * **Framing** ([`frame`]): every message travels as a 4-byte
//!   little-endian payload length followed by the payload. Truncation,
//!   oversize, and mid-frame EOF are typed [`FrameError`]s.
//! * **Messages** ([`msg`]): typed [`Request`]/[`Response`] enums with a
//!   canonical binary encoding (one byte of tag, little-endian fields,
//!   floats as IEEE-754 bit patterns). Decoding is total: arbitrary
//!   bytes yield a [`DecodeError`], never a panic.
//! * **Versioning**: the first frame on every connection is
//!   `Request::Hello { version }`; the server answers with its own
//!   version and refuses mismatches with a typed wire error. The
//!   protocol string is [`PROTOCOL`] (`cs-wire/v1`).
//! * **Transport** ([`net`]): `tcp:HOST:PORT` and `unix:/path` behind
//!   one [`Conn`] type; [`client`] is the small blocking client built
//!   on it.
//!
//! Ingest is pipelined: `Report`/`ReportBatch` frames get no response,
//! and a `Sync` barrier forces a tick and returns the counters, so a
//! client can always establish exactly which of its reports are
//! reflected in the estimate — the property the chaos connection-fault
//! oracle checks across dropped connections.

pub mod client;
pub mod frame;
pub mod msg;
pub mod net;

pub use client::{Client, ClientError};
pub use frame::{frame_bytes, read_frame, write_frame, FrameError, HEADER_LEN, MAX_FRAME_LEN};
pub use msg::{
    DecodeError, ErrorCode, Request, Response, WireEstimate, WireReport, WireStats, PROTOCOL,
    VERSION,
};
pub use net::{BindAddr, Conn, Listener};
