//! Length-prefixed framing for `cs-wire/v1`.
//!
//! A frame is a 4-byte little-endian payload length followed by exactly
//! that many payload bytes. The length counts the payload only, never
//! the header. An empty payload (`len == 0`) is a valid frame — the
//! message codec rejects it later as [`DecodeError::Empty`] — so the
//! framing layer stays a pure transport concern.
//!
//! Reads distinguish three terminal outcomes:
//!
//! * `Ok(Some(payload))` — one complete frame.
//! * `Ok(None)` — clean EOF *between* frames (the peer closed politely).
//! * `Err(FrameError::Truncated)` — EOF in the middle of a header or
//!   payload: the peer vanished mid-frame. Chaos injects exactly this.
//!
//! [`DecodeError::Empty`]: crate::msg::DecodeError::Empty

use std::fmt;
use std::io::{self, Read, Write};

/// Width of the frame header: a `u32` little-endian payload length.
pub const HEADER_LEN: usize = 4;

/// Default ceiling on a single frame's payload. Large enough for a
/// full-metro estimate response (a 102,400-segment, 24-slot window is
/// ~19.7 MB of `f64`s), small enough that a corrupted length prefix
/// cannot convince the server to buffer gigabytes.
pub const MAX_FRAME_LEN: usize = 32 * 1024 * 1024;

/// Transport-layer failure while reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket or pipe failed.
    Io(io::Error),
    /// The peer advertised a payload longer than the reader's ceiling.
    TooLarge {
        /// Advertised payload length.
        len: usize,
        /// The reader's configured maximum.
        max: usize,
    },
    /// EOF arrived mid-header or mid-payload.
    Truncated {
        /// Bytes the frame still needed.
        need: usize,
        /// Bytes actually read before EOF.
        have: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte ceiling")
            }
            FrameError::Truncated { need, have } => {
                write!(f, "connection closed mid-frame: got {have} of {need} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| FrameError::TooLarge { len: payload.len(), max: u32::MAX as usize })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Encodes one frame into a buffer without touching a socket — the
/// building block chaos uses to slice frames into faulty write
/// schedules.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before a
/// clean EOF cut the read short.
fn read_exact_counted<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, io::Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads one frame. `Ok(None)` means the peer closed cleanly at a frame
/// boundary; mid-frame EOF is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_counted(r, &mut header)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => return Err(FrameError::Truncated { need: HEADER_LEN, have: n }),
        _ => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    let got = read_exact_counted(r, &mut payload)?;
    if got < len {
        return Err(FrameError::Truncated { need: len, have: got });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn truncation_is_typed_not_a_hang() {
        let full = frame_bytes(b"payload");
        for cut in 1..full.len() {
            let mut r = &full[..cut];
            match read_frame(&mut r, MAX_FRAME_LEN) {
                Err(FrameError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut r = &buf[..];
        match read_frame(&mut r, 1024) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
