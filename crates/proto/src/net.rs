//! Transport glue: one address syntax and one connection type covering
//! TCP and Unix-domain sockets, so the daemon, the clients, and the
//! fault injectors are all written once against [`Conn`].
//!
//! Addresses are spelled `tcp:HOST:PORT` or `unix:/path/to.sock`. A TCP
//! port of `0` binds ephemerally; [`Listener::bound_addr`] reports the
//! real port so tests never race over fixed ports.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parsed `tcp:` or `unix:` endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// `tcp:HOST:PORT` — a TCP socket address (resolved at bind time).
    Tcp(String),
    /// `unix:PATH` — a Unix-domain socket path.
    Unix(PathBuf),
}

impl BindAddr {
    /// Parses the `tcp:`/`unix:` spelling. Errors carry the reason.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err("tcp address is empty (want tcp:HOST:PORT)".to_string());
            }
            Ok(BindAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err("unix socket path is empty (want unix:/path.sock)".to_string());
            }
            Ok(BindAddr::Unix(PathBuf::from(rest)))
        } else {
            Err(format!("address '{s}' must start with 'tcp:' or 'unix:'"))
        }
    }
}

impl fmt::Display for BindAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            BindAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound server socket of either family.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds the address. For `unix:`, a stale socket file left by a
    /// crashed daemon is removed first — the bind, not the file, is the
    /// source of truth for liveness.
    pub fn bind(addr: &BindAddr) -> io::Result<Self> {
        match addr {
            BindAddr::Tcp(spec) => Ok(Listener::Tcp(TcpListener::bind(spec.as_str())?)),
            #[cfg(unix)]
            BindAddr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            #[cfg(not(unix))]
            BindAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// The address clients should dial — for ephemeral TCP binds this
    /// carries the kernel-assigned port.
    pub fn bound_addr(&self) -> io::Result<BindAddr> {
        match self {
            Listener::Tcp(l) => Ok(BindAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path =
                    addr.as_pathname().ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(BindAddr::Unix(path.to_path_buf()))
            }
        }
    }

    /// Mirrors `set_nonblocking` on the inner listener.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One established connection of either family.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Dials the address.
    pub fn connect(addr: &BindAddr) -> io::Result<Self> {
        match addr {
            BindAddr::Tcp(spec) => {
                let stream = TcpStream::connect(spec.as_str())?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            BindAddr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            BindAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// Mirrors `set_read_timeout` on the inner stream.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Shuts down both halves; errors are deliberately swallowed (the
    /// peer may already be gone, which is the point).
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_addresses() {
        let tcp = BindAddr::parse("tcp:127.0.0.1:0").unwrap();
        assert_eq!(tcp, BindAddr::Tcp("127.0.0.1:0".to_string()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:0");
        let unix = BindAddr::parse("unix:/tmp/x.sock").unwrap();
        assert_eq!(unix.to_string(), "unix:/tmp/x.sock");
        assert!(BindAddr::parse("http://nope").is_err());
        assert!(BindAddr::parse("tcp:").is_err());
        assert!(BindAddr::parse("unix:").is_err());
    }

    #[test]
    fn tcp_ephemeral_bind_reports_real_port() {
        let listener = Listener::bind(&BindAddr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        match listener.bound_addr().unwrap() {
            BindAddr::Tcp(addr) => assert!(!addr.ends_with(":0"), "got {addr}"),
            other => panic!("expected tcp addr, got {other}"),
        }
    }
}
