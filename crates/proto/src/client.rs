//! A small blocking `cs-wire/v1` client: handshake, pipelined report
//! pushes, and request/response queries over one [`Conn`].
//!
//! The replayer's socket transport, the load generator, the CI smoke
//! clients, and the chaos fault injectors all sit on this type — chaos
//! additionally reaches the raw connection via [`Client::conn_mut`] to
//! write deliberately broken byte schedules.

use std::fmt;
use std::io;
use std::time::Duration;

use crate::frame::{self, FrameError, MAX_FRAME_LEN};
use crate::msg::{DecodeError, Request, Response, VERSION};
use crate::net::{BindAddr, Conn};

/// Client-side failure talking to a daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing violation (truncated or oversized frame).
    Frame(FrameError),
    /// The server's bytes did not decode as a response.
    Decode(DecodeError),
    /// The server closed where a response frame was required.
    Closed,
    /// The server answered, but with the wrong message (bad handshake,
    /// wire error response where data was expected).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Decode(e) => write!(f, "client decode error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection mid-exchange"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A connected, handshaken `cs-wire/v1` client.
pub struct Client {
    conn: Conn,
    max_frame: usize,
}

impl Client {
    /// Dials `addr` and performs the `Hello` handshake.
    pub fn connect(addr: &BindAddr) -> Result<Self, ClientError> {
        let conn = Conn::connect(addr)?;
        let mut client = Client { conn, max_frame: MAX_FRAME_LEN };
        client.send(&Request::Hello { version: VERSION })?;
        match client.recv()? {
            Response::Hello { version: v } if v == VERSION => Ok(client),
            Response::Hello { version: v } => {
                Err(ClientError::Protocol(format!("server speaks cs-wire v{v}, client v{VERSION}")))
            }
            Response::Error { code, message } => {
                Err(ClientError::Protocol(format!("handshake refused ({code}): {message}")))
            }
            other => Err(ClientError::Protocol(format!("expected Hello, got {other:?}"))),
        }
    }

    /// Dials without handshaking — for tests and fault injectors that
    /// need to misbehave on purpose.
    pub fn connect_raw(addr: &BindAddr) -> Result<Self, ClientError> {
        let conn = Conn::connect(addr)?;
        Ok(Client { conn, max_frame: MAX_FRAME_LEN })
    }

    /// Read timeout for responses (`None` blocks forever).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(dur)
    }

    /// Raw access to the connection, for writing broken frames.
    pub fn conn_mut(&mut self) -> &mut Conn {
        &mut self.conn
    }

    /// Sends one request frame without waiting for anything.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        frame::write_frame(&mut self.conn, &req.encode())?;
        Ok(())
    }

    /// Receives one response frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match frame::read_frame(&mut self.conn, self.max_frame)? {
            None => Err(ClientError::Closed),
            Some(payload) => Ok(Response::decode(&payload)?),
        }
    }

    /// Sends a request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Closes both directions.
    pub fn close(self) {
        self.conn.shutdown();
    }
}
