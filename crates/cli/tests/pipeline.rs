//! Integration test: the full CLI pipeline over real files in a temp
//! directory — simulate → build-tcm → estimate → evaluate.

use cs_traffic_cli::{cmd_analyze, cmd_build_tcm, cmd_estimate, cmd_evaluate, cmd_simulate};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cs_traffic_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_through_files() {
    let dir = temp_dir("full");

    // 1. Simulate a small scenario (6 h, 40 taxis).
    cmd_simulate("small", Some(40), Some(6), "30", &dir).unwrap();
    for f in ["network.csv", "truth.csv", "reports.csv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // 2. Build the measurement TCM from the report CSV.
    let tcm_path = dir.join("tcm.csv");
    cmd_build_tcm(&dir.join("network.csv"), &dir.join("reports.csv"), "30", 6, &tcm_path).unwrap();
    assert!(tcm_path.exists());

    // 3. Estimate with the compressive-sensing method.
    let est_path = dir.join("estimate.csv");
    cmd_estimate(&tcm_path, "cs", Some(2), Some(0.5), &est_path).unwrap();

    // 4. Evaluate against the simulated ground truth.
    let nmae = cmd_evaluate(&dir.join("truth.csv"), &est_path, &tcm_path).unwrap();
    assert!(nmae > 0.0 && nmae < 0.5, "pipeline NMAE {nmae}");

    // 5. Analyze both matrices (sparse and complete paths).
    let mut out = Vec::new();
    cmd_analyze(&tcm_path, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("integrity"));
    let mut out = Vec::new();
    cmd_analyze(&dir.join("truth.csv"), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("eigenflows"), "complete matrix analysis: {text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn estimate_methods_all_work() {
    let dir = temp_dir("methods");
    cmd_simulate("small", Some(40), Some(6), "60", &dir).unwrap();
    let tcm_path = dir.join("tcm.csv");
    cmd_build_tcm(&dir.join("network.csv"), &dir.join("reports.csv"), "60", 6, &tcm_path).unwrap();
    for method in ["cs", "knn", "corr-knn"] {
        let out = dir.join(format!("est_{method}.csv"));
        cmd_estimate(&tcm_path, method, None, None, &out).unwrap();
        assert!(out.exists(), "{method} produced no file");
    }
    assert!(cmd_estimate(&tcm_path, "nonsense", None, None, &dir.join("x.csv")).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evaluate_validates_inputs() {
    let dir = temp_dir("validate");
    cmd_simulate("small", Some(20), Some(3), "60", &dir).unwrap();
    let tcm_path = dir.join("tcm.csv");
    cmd_build_tcm(&dir.join("network.csv"), &dir.join("reports.csv"), "60", 3, &tcm_path).unwrap();
    // Incomplete estimate must be rejected.
    assert!(cmd_evaluate(&dir.join("truth.csv"), &tcm_path, &tcm_path).is_err());
    // Missing file surfaces as an error, not a panic.
    assert!(cmd_evaluate(&dir.join("nope.csv"), &tcm_path, &tcm_path).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn detect_runs_on_sparse_and_complete() {
    use cs_traffic_cli::cmd_detect;
    let dir = temp_dir("detect");
    cmd_simulate("small", Some(40), Some(6), "30", &dir).unwrap();
    let tcm_path = dir.join("tcm.csv");
    cmd_build_tcm(&dir.join("network.csv"), &dir.join("reports.csv"), "30", 6, &tcm_path).unwrap();
    // Sparse path (12 slots at 30 min over 6 h; period of 12 = the whole
    // window, so the median is over one "day" — degenerate but exercised).
    let mut out = Vec::new();
    cmd_detect(&tcm_path, 4, 4.0, &mut out).unwrap();
    assert!(String::from_utf8(out).unwrap().contains("detections:"));
    // Complete path.
    let mut out = Vec::new();
    cmd_detect(&dir.join("truth.csv"), 4, 4.0, &mut out).unwrap();
    assert!(String::from_utf8(out).unwrap().contains("detections:"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_replay_matches_offline_pipeline() {
    use cs_traffic_cli::{cmd_serve, ServeOptions};
    let dir = temp_dir("serve");
    cmd_simulate("small", Some(40), Some(6), "30", &dir).unwrap();
    let tcm_path = dir.join("tcm.csv");
    cmd_build_tcm(&dir.join("network.csv"), &dir.join("reports.csv"), "30", 6, &tcm_path).unwrap();
    let offline_est = dir.join("estimate_offline.csv");
    cmd_estimate(&tcm_path, "cs", Some(2), Some(0.5), &offline_est).unwrap();

    // Replay the same reports through the streaming service with the
    // window covering the full grid (6 h at 30 min = 12 slots) and a
    // single tick: the one cold solve must reproduce the offline
    // pipeline bit for bit.
    let serve_est = dir.join("estimate_serve.csv");
    let opts = ServeOptions {
        granularity: "30".into(),
        window_slots: 12,
        rank: Some(2),
        lambda: Some(0.5),
        batch: 0,
        out: Some(serve_est.clone()),
        ..ServeOptions::default()
    };
    let mut out = Vec::new();
    cmd_serve(&dir.join("network.csv"), &dir.join("reports.csv"), &opts, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("replayed"), "{text}");
    assert!(text.contains("0 rejected"), "clean replay must reject nothing: {text}");

    let offline = std::fs::read_to_string(&offline_est).unwrap();
    let streamed = std::fs::read_to_string(&serve_est).unwrap();
    assert_eq!(offline, streamed, "streamed estimate CSV diverged from offline pipeline");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_survives_corrupt_reports_and_checkpoints() {
    use cs_traffic_cli::{cmd_serve, ServeOptions};
    let dir = temp_dir("serve_faults");
    cmd_simulate("small", Some(20), Some(3), "30", &dir).unwrap();

    // Corrupt the replay: garbage lines, NaN speeds, short rows.
    let reports = dir.join("reports.csv");
    let mut text = std::fs::read_to_string(&reports).unwrap();
    text.push_str("this,is,not,a,report\n");
    text.push_str("1,0,0,NaN,1,0,5\n");
    text.push_str("7,1,2\n");
    std::fs::write(&reports, text).unwrap();

    let ckpt = dir.join("serve.ckpt");
    let opts = ServeOptions {
        granularity: "30".into(),
        window_slots: 6,
        batch: 50,
        checkpoint: Some(ckpt.clone()),
        ..ServeOptions::default()
    };
    let mut out = Vec::new();
    cmd_serve(&dir.join("network.csv"), &reports, &opts, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("3 malformed"), "malformed lines must be counted: {text}");
    assert!(ckpt.exists(), "checkpoint not written");

    // Second run restores the warm start from the checkpoint.
    let mut out = Vec::new();
    cmd_serve(&dir.join("network.csv"), &reports, &opts, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("restored warm start"), "{text}");

    // A truncated checkpoint is a typed input error, not a panic.
    std::fs::write(&ckpt, "cs-serve-checkpoint v1\nclock zzz\n").unwrap();
    let err = {
        let mut out = Vec::new();
        cmd_serve(&dir.join("network.csv"), &reports, &opts, &mut out).unwrap_err()
    };
    assert_eq!(err.exit_code(), 65, "bad checkpoint must map to the data exit code: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The network path end to end at the CLI layer: a live daemon, the
/// `daemon-client` ingesting the simulated report file over TCP, and the
/// resulting window estimate written as a TCM — byte-identical to the
/// in-process `serve --out` replay of the same file.
#[test]
fn daemon_client_round_trip_matches_in_process_serve() {
    use cs_traffic_cli::{cmd_daemon_client, cmd_serve, DaemonClientOptions, ServeOptions};
    use std::io::BufReader;
    use traffic_cs::cs::CsConfig;
    use traffic_cs::daemon::{Daemon, DaemonConfig};
    use traffic_cs::service::ServeConfig;

    let dir = temp_dir("daemon_client");
    cmd_simulate("small", Some(30), Some(3), "30", &dir).unwrap();
    let network = dir.join("network.csv");
    let reports = dir.join("reports.csv");

    // In-process baseline: whole file, one tick.
    let serve_est = dir.join("estimate_serve.csv");
    let opts = ServeOptions {
        granularity: "30".into(),
        window_slots: 6,
        rank: Some(2),
        lambda: Some(0.5),
        batch: 0,
        out: Some(serve_est.clone()),
        ..ServeOptions::default()
    };
    cmd_serve(&network, &reports, &opts, Vec::new()).unwrap();

    // A daemon with the same engine config, periodic ticks effectively
    // off so the client's final Sync barrier is the only tick.
    let net =
        roadnet::io::read_network(BufReader::new(std::fs::File::open(&network).unwrap())).unwrap();
    let serve_cfg = ServeConfig::builder()
        .slot_len_s(30 * 60)
        .window_slots(6)
        .num_segments(net.segment_count())
        .cs(CsConfig { rank: 2, lambda: 0.5, ..CsConfig::default() })
        .build()
        .unwrap();
    let mut cfg =
        DaemonConfig::new(proto::net::BindAddr::parse("tcp:127.0.0.1:0").unwrap(), serve_cfg);
    cfg.tick_interval = std::time::Duration::from_secs(3600);
    let handle = Daemon::bind(cfg).unwrap().spawn().unwrap();

    let daemon_est = dir.join("estimate_daemon.csv");
    let client_opts = DaemonClientOptions {
        addr: handle.addr().to_string(),
        network: Some(network.clone()),
        reports: Some(reports.clone()),
        batch: 100,
        query: Some("estimate".into()),
        out: Some(daemon_est.clone()),
        shutdown: true,
    };
    let mut buf = Vec::new();
    cmd_daemon_client(&client_opts, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("ingested"), "{text}");
    assert!(text.contains("live estimate"), "{text}");
    assert!(text.contains("daemon acknowledged shutdown"), "{text}");
    let dead_addr = handle.addr().to_string();
    handle.join().unwrap();

    let offline = std::fs::read_to_string(&serve_est).unwrap();
    let over_wire = std::fs::read_to_string(&daemon_est).unwrap();
    assert_eq!(offline, over_wire, "socket transport must not change a single byte");

    // Protocol-level failures carry their own exit code: dialing a dead
    // daemon is I/O (74), a bad address spelling is usage (2).
    let dead = DaemonClientOptions { addr: dead_addr, ..DaemonClientOptions::default() };
    assert_eq!(cmd_daemon_client(&dead, Vec::new()).unwrap_err().exit_code(), 74);
    let bad = DaemonClientOptions { addr: "ftp:nope".into(), ..DaemonClientOptions::default() };
    assert_eq!(cmd_daemon_client(&bad, Vec::new()).unwrap_err().exit_code(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end observability path: a sabotaged (zero-budget) service
/// with tracing on degrades, dumps the flight recorder, and
/// `inspect --dump` reconstructs the causal timeline of the failing
/// window naming the trace IDs involved.
#[test]
fn flight_dump_of_a_degraded_solve_inspects_to_a_causal_timeline() {
    use cs_traffic_cli::cmd_inspect;
    use traffic_cs::cs::CsConfig;
    use traffic_cs::service::{Observation, ServeConfig, Service};

    let dir = temp_dir("flight");
    let dump = dir.join("flight_dump.jsonl");
    telemetry::set_level(telemetry::Level::Trace);
    telemetry::flight::install(256);

    let cfg = ServeConfig::builder()
        .slot_len_s(60)
        .window_slots(4)
        .num_segments(4)
        .trace_sample(1)
        .flight_dump(Some(dump.clone()))
        .cs(CsConfig { rank: 2, lambda: 0.1, ..CsConfig::default() })
        .build()
        .unwrap();
    let mut s = Service::new(cfg).unwrap();
    // Zero wall-clock budget: every solve is over budget → degraded.
    s.set_solve_budget(Some(std::time::Duration::ZERO));
    for v in 0..6u64 {
        s.push(Observation {
            vehicle: v,
            timestamp_s: (v % 4) * 60,
            segment: (v % 4) as usize,
            speed_kmh: 30.0,
        });
    }
    let report = s.tick();
    assert!(report.degraded, "zero budget must degrade the solve");
    assert!(dump.exists(), "degraded tick must dump the flight recorder");

    let mut buf = Vec::new();
    cmd_inspect(Some(&dump), None, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("trigger: solve_degraded"), "{text}");
    assert!(text.contains("causal timelines"), "{text}");
    assert!(text.contains("degraded solve:"), "timeline must name the failing window: {text}");
    // At least one concrete trace ID is named, and its timeline walks
    // ingest → admitted → degraded.
    for stage in ["ingest", "admitted", "degraded"] {
        assert!(text.contains(stage), "stage '{stage}' missing from timeline:\n{text}");
    }

    // Inspecting garbage is a typed input error, not a panic.
    let bogus = dir.join("not_a_dump.jsonl");
    std::fs::write(&bogus, "{\"schema\":\"something-else/v9\"}\n").unwrap();
    let err = cmd_inspect(Some(&bogus), None, Vec::new()).unwrap_err();
    assert_eq!(err.exit_code(), 65, "{err}");
    // Asking for nothing is a usage error.
    assert_eq!(cmd_inspect(None, None, Vec::new()).unwrap_err().exit_code(), 2);

    telemetry::reset_for_tests();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `inspect --expose` re-renders metric snapshots from a metrics JSONL
/// as Prometheus exposition text — byte-compatible with the live
/// `telemetry::metrics::expose_text()` format pinned in the telemetry
/// crate's golden test.
#[test]
fn inspect_expose_renders_prometheus_text_from_jsonl() {
    use cs_traffic_cli::cmd_inspect;
    let dir = temp_dir("expose");
    let jsonl = dir.join("metrics.jsonl");
    std::fs::write(
        &jsonl,
        concat!(
            "{\"type\":\"counter\",\"level\":\"info\",\"name\":\"serve.admitted\",\"ts_ms\":1,\"fields\":{\"value\":10}}\n",
            "{\"type\":\"counter\",\"level\":\"info\",\"name\":\"serve.admitted\",\"ts_ms\":2,\"fields\":{\"value\":42}}\n",
            "{\"type\":\"event\",\"level\":\"info\",\"name\":\"ignored.event\",\"ts_ms\":3}\n",
            "{\"type\":\"histogram\",\"level\":\"info\",\"name\":\"serve.tick_us\",\"ts_ms\":4,\"fields\":{\"count\":3,\"sum\":6.0,\"p50\":2.0,\"p99\":2.0,\"p999\":2.0}}\n",
        ),
    )
    .unwrap();

    let mut buf = Vec::new();
    cmd_inspect(None, Some(&jsonl), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let expected = "\
# TYPE serve_admitted counter
serve_admitted 42
# TYPE serve_tick_us summary
serve_tick_us{quantile=\"0.5\"} 2
serve_tick_us{quantile=\"0.99\"} 2
serve_tick_us{quantile=\"0.999\"} 2
serve_tick_us_sum 6
serve_tick_us_count 3
";
    assert_eq!(text, expected, "last snapshot per metric wins, events are skipped");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simulate_rejects_unknown_scenario() {
    let dir = temp_dir("badscen");
    assert!(cmd_simulate("metropolis", None, None, "15", &dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_subcommand_is_deterministic_and_reports_every_seed() {
    use cs_traffic_cli::cmd_chaos;
    // check_counters stays off here: telemetry counters are
    // process-global and other tests in this binary run services
    // concurrently; the binary itself enables the check.
    let mut first = Vec::new();
    cmd_chaos(11, 12, 3, false, false, 0, None, &mut first).unwrap();
    let mut second = Vec::new();
    cmd_chaos(11, 12, 3, false, false, 0, None, &mut second).unwrap();
    assert_eq!(first, second, "same sweep must produce byte-identical output");
    // Forcing full sweeps on every solve must not change a single byte
    // either — the incremental path is an optimization, not a fork.
    let mut full = Vec::new();
    cmd_chaos(11, 12, 3, false, true, 0, None, &mut full).unwrap();
    assert_eq!(first, full, "--solve-mode full must produce byte-identical output");
    let text = String::from_utf8(first).unwrap();
    assert_eq!(text.lines().count(), 3, "one summary line per seed: {text}");
    for seed in 11..14 {
        assert!(text.contains(&format!("seed={seed} ")), "seed {seed} missing: {text}");
    }
    assert!(text.lines().all(|l| l.ends_with("oracle=ok")), "{text}");
}

#[test]
fn loadtest_subcommand_measures_writes_and_gates() {
    use cs_traffic_cli::{cmd_loadtest, LoadtestOptions};
    let dir = std::env::temp_dir().join(format!("cs-cli-loadtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_serve.json");
    let slo = dir.join("SLO.toml");

    // Single fixed-rate leg (no search) with a generous gate: must
    // pass, write a parseable artifact, and report the stream hash.
    std::fs::write(
        &slo,
        "schema = \"cs-traffic-slo/v1\"\n\
         [budget]\ntick_p99_us = 60000000\nsolve_p99_us = 60000000\ndrop_rate = 0.5\n\
         [baseline]\nmax_sustainable_rate = 0\ntick_p99_us = 1\nregress_tolerance = 1e9\n",
    )
    .unwrap();
    let opts = LoadtestOptions {
        rate: Some(120.0),
        ticks: Some(8),
        out: Some(out.clone()),
        slo: Some(slo.clone()),
        ..LoadtestOptions::default()
    };
    let mut buf = Vec::new();
    cmd_loadtest(&opts, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("SLO gate: pass"), "{text}");
    assert!(text.contains("stream="), "{text}");

    let doc = telemetry::json::Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("cs-traffic-bench-serve/v3"));
    assert!(doc.get("leg").and_then(|l| l.get("tick_us")).is_some(), "quantiles in artifact");
    // In-process transport leaves the socket section explicitly null.
    assert!(
        matches!(doc.get("socket"), Some(telemetry::json::Json::Null)),
        "in-process run must write socket: null"
    );

    // Socket transport: replay the same leg through a live loopback
    // daemon. The offered stream is a pure function of the seed, so
    // the socket section must carry the same stream hash as the
    // in-process leg.
    let sock_opts = LoadtestOptions {
        transport: "socket".into(),
        shards: 2,
        rate: Some(120.0),
        ticks: Some(8),
        out: Some(out.clone()),
        ..LoadtestOptions::default()
    };
    let mut buf = Vec::new();
    cmd_loadtest(&sock_opts, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("socket shards=2"), "{text}");
    assert!(!text.contains("HASH MISMATCH"), "{text}");
    let doc = telemetry::json::Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    let socket = doc.get("socket").expect("socket section present");
    let leg_hash = doc.get("leg").and_then(|l| l.get("stream_hash")).and_then(|h| h.as_str());
    assert_eq!(socket.get("stream_hash").and_then(|h| h.as_str()), leg_hash, "hash parity");
    assert!(
        socket
            .get("e2e_us")
            .and_then(|h| h.get("p99"))
            .and_then(telemetry::json::Json::as_num)
            .is_some(),
        "e2e quantiles recorded"
    );
    let conns = socket
        .get("daemon")
        .and_then(|d| d.get("connections"))
        .and_then(telemetry::json::Json::as_num);
    assert_eq!(conns, Some(1.0), "one loadgen client connection");

    // Unknown transport is a usage error.
    let bad_transport =
        LoadtestOptions { transport: "carrier-pigeon".into(), ..LoadtestOptions::default() };
    assert_eq!(cmd_loadtest(&bad_transport, Vec::new()).unwrap_err().exit_code(), 2);

    // An impossible budget must fail the gate with exit code 70.
    std::fs::write(
        &slo,
        "schema = \"cs-traffic-slo/v1\"\n\
         [budget]\ntick_p99_us = 0\nsolve_p99_us = 0\ndrop_rate = 0\n\
         [baseline]\nmax_sustainable_rate = 0\ntick_p99_us = 1\nregress_tolerance = 1e9\n",
    )
    .unwrap();
    let err = cmd_loadtest(&opts, Vec::new()).unwrap_err();
    assert_eq!(err.exit_code(), 70, "{err}");
    assert!(err.to_string().contains("reproduce with"), "{err}");

    // Unknown profile is a usage error.
    let bad = LoadtestOptions { profile: "huge".into(), ..LoadtestOptions::default() };
    assert_eq!(cmd_loadtest(&bad, Vec::new()).unwrap_err().exit_code(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
