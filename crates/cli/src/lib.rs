//! Library backing the `cs-traffic-cli` binary.
//!
//! Every subcommand is a plain function over file paths so the
//! integration tests exercise exactly what the binary runs:
//!
//! * [`cmd_simulate`] — generate a city + fleet day, dump network,
//!   ground truth, and probe reports as CSV;
//! * [`cmd_build_tcm`] — map-match a probe CSV against a network CSV and
//!   bin it into a traffic condition matrix;
//! * [`cmd_estimate`] — complete a TCM with any of the four algorithms;
//! * [`cmd_analyze`] — integrity and spectral structure of a TCM;
//! * [`cmd_evaluate`] — NMAE of an estimate against a ground-truth TCM.

use probes::io::{read_reports, read_tcm, write_reports, write_tcm};
use probes::tcm::build_tcm_from_reports;
use probes::{Granularity, SlotGrid, Tcm};
use roadnet::matching::SegmentIndex;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use traffic_cs::baselines::MssaConfig;
use traffic_cs::cs::CsConfig;
use traffic_cs::estimator::Estimator;
use traffic_sim::ScenarioConfig;

/// CLI-level error, classified so the binary maps every failure mode to
/// an exit code in exactly one place ([`CliError::exit_code`]).
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was wrong: unknown subcommand or method,
    /// missing or malformed flag.
    Usage(String),
    /// An input file or parameter was rejected: CSV parse failures,
    /// shape mismatches, invalid configurations.
    Input(String),
    /// Filesystem or I/O trouble.
    Io(String),
    /// An algorithm failed on otherwise well-formed input.
    Algorithm(String),
    /// A `cs-wire` protocol failure talking to (or serving as) the
    /// daemon: framing violations, undecodable messages, handshake
    /// refusals.
    Protocol(String),
}

impl CliError {
    /// The process exit code for this failure, sysexits(3)-style:
    /// `2` usage, `65` bad input data (`EX_DATAERR`), `70` algorithm
    /// failure (`EX_SOFTWARE`), `74` I/O (`EX_IOERR`), `76` wire
    /// protocol (`EX_PROTOCOL`).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 65,
            CliError::Algorithm(_) => 70,
            CliError::Io(_) => 74,
            CliError::Protocol(_) => 76,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Io(m)
            | CliError::Algorithm(m)
            | CliError::Protocol(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($variant:ident: $ty:ty),+ $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError::$variant(e.to_string())
            }
        })+
    };
}

from_error!(
    Io: std::io::Error,
    Usage: std::num::ParseIntError,
    Usage: std::num::ParseFloatError,
    Input: probes::io::CsvError,
    Input: probes::TcmError,
    Input: roadnet::io::ReadError,
    Input: linalg::MatrixShapeError,
    Algorithm: traffic_cs::estimator::EstimateError,
    Input: traffic_cs::ConfigError,
    Protocol: proto::msg::DecodeError,
    Protocol: proto::frame::FrameError,
);

impl From<traffic_cs::Error> for CliError {
    fn from(e: traffic_cs::Error) -> Self {
        match e {
            traffic_cs::Error::Config(c) => CliError::Input(c.to_string()),
            traffic_cs::Error::Serve(traffic_cs::ServeError::Io(io)) => {
                CliError::Io(io.to_string())
            }
            traffic_cs::Error::Serve(c) => CliError::Input(c.to_string()),
            traffic_cs::Error::Daemon(traffic_cs::DaemonError::Io { what, source }) => {
                CliError::Io(format!("daemon {what}: {source}"))
            }
            traffic_cs::Error::Daemon(d) => CliError::Algorithm(format!("daemon: {d}")),
            other => CliError::Algorithm(other.to_string()),
        }
    }
}

impl From<proto::client::ClientError> for CliError {
    fn from(e: proto::client::ClientError) -> Self {
        match e {
            // Socket-level trouble is I/O; everything else is the wire
            // protocol misbehaving.
            proto::client::ClientError::Io(io) => CliError::Io(io.to_string()),
            other => CliError::Protocol(other.to_string()),
        }
    }
}

/// Result alias for subcommands.
pub type CliResult<T = ()> = Result<T, CliError>;

fn parse_granularity(s: &str) -> CliResult<Granularity> {
    match s {
        "15" => Ok(Granularity::Min15),
        "30" => Ok(Granularity::Min30),
        "60" => Ok(Granularity::Min60),
        other => Err(CliError::Usage(format!(
            "granularity must be 15, 30 or 60 (minutes), got '{other}'"
        ))),
    }
}

/// `simulate`: runs a scenario and writes `network.csv`, `truth.csv`,
/// and `reports.csv` into `out_dir`.
///
/// # Errors
///
/// Unknown scenario names and I/O failures.
pub fn cmd_simulate(
    scenario: &str,
    fleet: Option<usize>,
    duration_h: Option<u64>,
    granularity: &str,
    out_dir: &Path,
) -> CliResult {
    let mut cfg = match scenario {
        "small" => ScenarioConfig::small_test(),
        "shanghai" => ScenarioConfig::shanghai_like(),
        "shenzhen" => ScenarioConfig::shenzhen_like(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown scenario '{other}' (small|shanghai|shenzhen)"
            )))
        }
    };
    if let Some(f) = fleet {
        cfg.fleet.fleet_size = f;
    }
    if let Some(h) = duration_h {
        cfg.duration_s = h * 3600;
    }
    cfg.granularity = parse_granularity(granularity)?;
    std::fs::create_dir_all(out_dir)?;
    let out = cfg.run();
    roadnet::io::write_network(
        &out.network,
        BufWriter::new(File::create(out_dir.join("network.csv"))?),
    )?;
    write_tcm(&out.ground_truth, BufWriter::new(File::create(out_dir.join("truth.csv"))?))?;
    write_reports(&out.reports, BufWriter::new(File::create(out_dir.join("reports.csv"))?))?;
    println!(
        "simulated '{}': {} segments, {} reports, {} slots -> {}",
        cfg.name,
        out.network.segment_count(),
        out.reports.len(),
        out.grid.num_slots(),
        out_dir.display()
    );
    Ok(())
}

/// `build-tcm`: map-matches `reports` against `network` and writes the
/// binned TCM.
///
/// # Errors
///
/// Parse and I/O failures.
pub fn cmd_build_tcm(
    network: &Path,
    reports: &Path,
    granularity: &str,
    duration_h: u64,
    out: &Path,
) -> CliResult {
    let net = roadnet::io::read_network(BufReader::new(File::open(network)?))?;
    let reports = read_reports(BufReader::new(File::open(reports)?))?;
    let grid = SlotGrid::covering(0, duration_h * 3600, parse_granularity(granularity)?);
    let index = SegmentIndex::build(&net, 150.0);
    let tcm = build_tcm_from_reports(&reports, &net, &index, &grid, 80.0);
    write_tcm(&tcm, BufWriter::new(File::create(out)?))?;
    println!(
        "built TCM {} x {} (integrity {:.1}%) -> {}",
        tcm.num_slots(),
        tcm.num_segments(),
        tcm.integrity() * 100.0,
        out.display()
    );
    Ok(())
}

/// `estimate`: completes `tcm` with the chosen method and writes the
/// full estimate as a complete TCM CSV.
///
/// # Errors
///
/// Unknown methods, algorithm failures, and I/O failures.
pub fn cmd_estimate(
    tcm_path: &Path,
    method: &str,
    rank: Option<usize>,
    lambda: Option<f64>,
    out: &Path,
) -> CliResult {
    let tcm = read_tcm(BufReader::new(File::open(tcm_path)?))?;
    let estimator = match method {
        "cs" => {
            // Default λ scaled by matrix size, as in the experiments.
            let cells = (tcm.num_slots() * tcm.num_segments()) as f64;
            let default_lambda = (100.0 * cells / (672.0 * 221.0)).max(0.01);
            Estimator::CompressiveSensing(CsConfig {
                rank: rank.unwrap_or(2),
                lambda: lambda.unwrap_or(default_lambda),
                ..CsConfig::default()
            })
        }
        "knn" => Estimator::NaiveKnn { k: rank.unwrap_or(4) },
        "corr-knn" => Estimator::CorrelationKnn { k_range: rank.unwrap_or(2) },
        "mssa" => Estimator::Mssa(MssaConfig::default()),
        other => {
            return Err(CliError::Usage(format!("unknown method '{other}' (cs|knn|corr-knn|mssa)")))
        }
    };
    let estimate = estimator.estimate(&tcm)?;
    write_tcm(&Tcm::complete(estimate), BufWriter::new(File::create(out)?))?;
    println!("estimated with {} -> {}", estimator.kind(), out.display());
    Ok(())
}

/// `analyze`: prints integrity and spectral structure of a TCM to `w`.
///
/// # Errors
///
/// Parse and I/O failures.
pub fn cmd_analyze<W: Write>(tcm_path: &Path, mut w: W) -> CliResult {
    let tcm = read_tcm(BufReader::new(File::open(tcm_path)?))?;
    writeln!(w, "TCM: {} slots x {} segments", tcm.num_slots(), tcm.num_segments())?;
    writeln!(w, "integrity: {:.2}%", tcm.integrity() * 100.0)?;
    let roads = probes::integrity::per_road(&tcm);
    let empty = roads.iter().filter(|&&r| r == 0.0).count();
    writeln!(w, "segments never observed: {empty}")?;
    if tcm.integrity() == 1.0 {
        // Structure analysis needs a complete matrix.
        let spectrum = traffic_cs::pca::normalized_spectrum(tcm.values())?;
        writeln!(w, "singular values (top 8, ratio to max):")?;
        for (i, v) in spectrum.iter().take(8).enumerate() {
            writeln!(w, "  sigma{:<2} {v:.4}", i + 1)?;
        }
        let k90 = traffic_cs::pca::effective_rank(tcm.values(), 0.9)?;
        writeln!(w, "components for 90% energy: {k90}")?;
        let analysis = traffic_cs::eigenflow::EigenflowAnalysis::compute(tcm.values())?;
        let (p, s, n) = analysis.type_counts();
        writeln!(w, "eigenflows: {p} periodic, {s} spike, {n} noise")?;
    } else {
        writeln!(w, "(complete the matrix to enable the spectral analysis)")?;
    }
    Ok(())
}

/// `evaluate`: NMAE of `estimate` against `truth` over the cells missing
/// in `observed` (Definition 2's evaluation protocol).
///
/// # Errors
///
/// Shape mismatches, parse and I/O failures.
pub fn cmd_evaluate(truth: &Path, estimate: &Path, observed: &Path) -> CliResult<f64> {
    let truth = read_tcm(BufReader::new(File::open(truth)?))?;
    let est = read_tcm(BufReader::new(File::open(estimate)?))?;
    let obs = read_tcm(BufReader::new(File::open(observed)?))?;
    if truth.integrity() < 1.0 {
        return Err(CliError::Input("ground-truth TCM must be complete".into()));
    }
    if est.integrity() < 1.0 {
        return Err(CliError::Input("estimate TCM must be complete".into()));
    }
    if truth.values().shape() != est.values().shape()
        || truth.values().shape() != obs.values().shape()
    {
        return Err(CliError::Input(format!(
            "shape mismatch: truth {:?}, estimate {:?}, observed {:?}",
            truth.values().shape(),
            est.values().shape(),
            obs.values().shape()
        )));
    }
    let nmae = traffic_cs::metrics::nmae_on_missing(truth.values(), est.values(), obs.indicator());
    println!("NMAE over unobserved cells: {nmae:.4}");
    Ok(nmae)
}

/// `detect`: anomaly detection on a TCM CSV. Complete matrices use the
/// dense detector; sparse ones the observed-evidence detector against a
/// seasonal-median baseline of the observed cells' completion.
///
/// # Errors
///
/// Parse, shape, and I/O failures.
pub fn cmd_detect<W: Write>(
    tcm_path: &Path,
    period_slots: usize,
    threshold_sigma: f64,
    mut w: W,
) -> CliResult {
    use traffic_cs::anomaly::{detect_anomalies, detect_anomalies_sparse, AnomalyConfig, Baseline};
    let tcm = read_tcm(BufReader::new(File::open(tcm_path)?))?;
    let cfg = AnomalyConfig {
        baseline: Baseline::SeasonalMedian { period_slots },
        threshold_sigma,
        ..AnomalyConfig::default()
    };
    let detections = if tcm.integrity() == 1.0 {
        detect_anomalies(tcm.values(), &cfg).map_err(|e| CliError::Algorithm(e.to_string()))?
    } else {
        // Complete first, then use the estimate's seasonal median as the
        // baseline and alert only on observed cells.
        let cells = (tcm.num_slots() * tcm.num_segments()) as f64;
        let cs = CsConfig {
            rank: 8,
            lambda: (100.0 * cells / (672.0 * 221.0)).max(0.01),
            ..CsConfig::default()
        };
        let estimate = traffic_cs::cs::complete_matrix(&tcm, &cs)
            .map_err(|e| CliError::Algorithm(e.to_string()))?;
        let baseline = traffic_cs::anomaly::seasonal_median_baseline(&estimate, period_slots)
            .map_err(|e| CliError::Algorithm(e.to_string()))?;
        detect_anomalies_sparse(&tcm, &baseline, &cfg)
            .map_err(|e| CliError::Algorithm(e.to_string()))?
    };
    writeln!(w, "detections: {}", detections.len())?;
    for d in detections.iter().take(20) {
        writeln!(
            w,
            "  segment {:>4}, slots {:>4}-{:<4} z={:.1} drop={:.1} km/h",
            d.segment, d.start_slot, d.end_slot, d.peak_zscore, -d.peak_residual
        )?;
    }
    Ok(())
}

/// Options for [`cmd_serve`], the streaming replay service.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCM granularity (slot length), `"15" | "30" | "60"` minutes.
    pub granularity: String,
    /// Sliding-window height in slots.
    pub window_slots: usize,
    /// Algorithm-1 rank (default 2).
    pub rank: Option<usize>,
    /// Algorithm-1 tradeoff λ (default scaled to the window size).
    pub lambda: Option<f64>,
    /// Reports drained per tick; `0` replays the whole file in one tick
    /// (the mode whose final solve is bit-identical to the offline
    /// `build-tcm` + `estimate` pipeline).
    pub batch: usize,
    /// Warm-start checkpoint: loaded before the replay when the file
    /// exists, saved after it.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Write the final window estimate as a complete TCM CSV.
    pub out: Option<std::path::PathBuf>,
    /// Causal-trace sampling modulus (see
    /// [`traffic_cs::service::ServeConfig::trace_sample`]).
    pub trace_sample: u64,
    /// Flight-recorder dump path for degraded ticks.
    pub flight_dump: Option<std::path::PathBuf>,
    /// Segment-range shard workers (1 = the classic single engine,
    /// which is a bit-for-bit pass-through).
    pub shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            granularity: "15".to_string(),
            window_slots: 24,
            rank: None,
            lambda: None,
            batch: 0,
            checkpoint: None,
            out: None,
            trace_sample: 0,
            flight_dump: None,
            shards: 1,
        }
    }
}

/// `serve`: replays a probe report file through the fault-tolerant
/// streaming engine ([`traffic_cs::sharded::ShardedService`], which with
/// the default single-shard plan is a bitwise pass-through of
/// [`traffic_cs::service::Service`]) and keeps a live estimate of the
/// sliding window.
///
/// Reports are map-matched exactly like [`cmd_build_tcm`] (same index
/// radius, same matching distance), so a full-file replay with the
/// window sized to the grid reproduces the offline pipeline bit for bit.
/// Malformed CSV lines are rejected per record (counted, never fatal);
/// everything else goes through the service's admission rules.
///
/// # Errors
///
/// Setup failures only: unreadable network/reports files, invalid
/// configuration, checkpoint I/O. Runtime trouble (bad reports, failed
/// solves) degrades inside the service and shows up in the summary.
pub fn cmd_serve<W: Write>(
    network: &Path,
    reports: &Path,
    opts: &ServeOptions,
    mut w: W,
) -> CliResult {
    use std::io::BufRead;
    use traffic_cs::service::{report_trace_id, Observation, ServeConfig};
    use traffic_cs::sharded::{ShardPlan, ShardedService};

    let net = roadnet::io::read_network(BufReader::new(File::open(network)?))?;
    let index = SegmentIndex::build(&net, 150.0);
    let slot_len_s = parse_granularity(&opts.granularity)?.seconds();

    let window_cells = (opts.window_slots * net.segment_count()) as f64;
    let default_lambda = (100.0 * window_cells / (672.0 * 221.0)).max(0.01);
    let cs = CsConfig {
        rank: opts.rank.unwrap_or(2),
        lambda: opts.lambda.unwrap_or(default_lambda),
        ..CsConfig::default()
    };
    let cfg = ServeConfig::builder()
        .slot_len_s(slot_len_s)
        .window_slots(opts.window_slots)
        .num_segments(net.segment_count())
        .cs(cs)
        .trace_sample(opts.trace_sample)
        .flight_dump(opts.flight_dump.clone())
        .shards(ShardPlan::with_count(opts.shards.max(1)))
        .build()?;
    let mut service = ShardedService::new(cfg)?;

    if let Some(ckpt) = &opts.checkpoint {
        if ckpt.exists() {
            service.load_checkpoint(ckpt)?;
            writeln!(w, "restored warm start from {}", ckpt.display())?;
        }
    }

    // Replay line by line: a malformed record is one rejected report,
    // never a dead service.
    let mut malformed = 0u64;
    let mut unmatched = 0u64;
    let mut pushed = 0u64;
    let reader = BufReader::new(File::open(reports)?);
    let mut lines = reader.lines();
    // Header line (validated loosely: an empty file is just an empty replay).
    let _ = lines.next().transpose()?;
    let batch = if opts.batch == 0 { usize::MAX } else { opts.batch };
    let mut in_batch = 0usize;
    for (idx, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let report = match probes::io::parse_report_record(&line, idx + 2) {
            Ok(r) => r,
            Err(_) => {
                malformed += 1;
                if telemetry::metrics_enabled() {
                    telemetry::counter("serve.rejected").incr();
                }
                continue;
            }
        };
        // Same matching as build-tcm: direction-aware, 80 m radius.
        let heading = report.has_heading().then_some(report.heading);
        let Some(m) = index.match_point_directed(&net, report.position, 80.0, heading) else {
            unmatched += 1;
            continue;
        };
        let obs = Observation {
            vehicle: report.vehicle.0 as u64,
            timestamp_s: report.timestamp_s,
            segment: m.segment.index(),
            speed_kmh: report.speed_kmh,
        };
        // The trace begins at parse time: the same ID the owning shard
        // will derive (its `ingest_seq` is about to be consumed by this
        // push), so the `parsed` stage links the CSV line to the rest
        // of the report's life.
        if opts.trace_sample > 0 && telemetry::enabled(telemetry::Level::Trace) {
            let id = report_trace_id(
                obs.vehicle,
                obs.timestamp_s,
                obs.segment,
                service.ingest_seq_for(obs.segment),
            );
            if id.is_multiple_of(opts.trace_sample) {
                telemetry::trace_event(
                    "serve.trace",
                    vec![
                        ("trace".into(), telemetry::Value::Str(format!("{id:016x}"))),
                        ("stage".into(), telemetry::Value::Str("parsed".to_string())),
                        ("line".into(), telemetry::Value::UInt(idx as u64 + 2)),
                    ],
                );
            }
        }
        service.push(obs);
        pushed += 1;
        in_batch += 1;
        if in_batch >= batch {
            service.tick();
            in_batch = 0;
        }
    }
    service.tick();

    let stats = service.stats();
    writeln!(
        w,
        "replayed {pushed} reports ({malformed} malformed, {unmatched} unmatched): \
         {} admitted, {} late, {} duplicate, {} rejected, {} solves, {} degraded",
        stats.admitted,
        stats.dropped_late,
        stats.duplicates,
        stats.rejected,
        stats.solves,
        stats.degraded
    )?;
    match service.latest() {
        Some(live) => {
            writeln!(
                w,
                "live estimate: window head slot {}, {} sweeps, stale: {}",
                live.head_slot, live.sweeps, live.stale
            )?;
            if let Some(out) = &opts.out {
                write_tcm(
                    &Tcm::complete(live.estimate.clone()),
                    BufWriter::new(File::create(out)?),
                )?;
                writeln!(w, "wrote window estimate -> {}", out.display())?;
            }
        }
        None => writeln!(w, "no estimate produced (no admissible reports)")?,
    }
    if let Some(ckpt) = &opts.checkpoint {
        service.save_checkpoint(ckpt)?;
        writeln!(w, "checkpointed warm start -> {}", ckpt.display())?;
    }
    Ok(())
}

/// `chaos` — run the deterministic fault-injection simulator for one
/// seed (or a `sweep` of consecutive seeds) and verify the
/// differential oracle on every run.
///
/// Prints one summary line per seed. The line contains no
/// thread-dependent data, so running the same sweep under different
/// `--threads` settings must produce byte-identical output — CI diffs
/// exactly that.
///
/// `check_counters` additionally cross-checks the `serve.*` telemetry
/// counter deltas against the service's stats; it requires this
/// process to be the only metrics producer, so the binary enables it
/// and concurrent test harnesses don't.
///
/// `full_sweep_only` (the `--solve-mode full` flag) forces a full warm
/// sweep on every solve instead of the incremental dirty-set path; the
/// summary lines must be byte-identical either way, and CI diffs them.
///
/// # Errors
///
/// [`CliError::Algorithm`] when any seed's oracle reports a violation,
/// with the seed to reproduce from; I/O errors from the writer.
#[allow(clippy::too_many_arguments)]
pub fn cmd_chaos<W: Write>(
    seed: u64,
    ticks: usize,
    sweep: u64,
    check_counters: bool,
    full_sweep_only: bool,
    trace_sample: u64,
    flight_dump: Option<std::path::PathBuf>,
    mut w: W,
) -> CliResult {
    if check_counters {
        telemetry::set_metrics_enabled(true);
    }
    // A dump without traces is mostly counters; default to tracing every
    // report when the flight recorder is wired but no modulus was given.
    let trace_sample = if flight_dump.is_some() && trace_sample == 0 { 1 } else { trace_sample };
    let mut failed = Vec::new();
    for s in seed..seed.saturating_add(sweep.max(1)) {
        let report = chaos::run(&chaos::ChaosConfig {
            seed: s,
            ticks,
            num_threads: 0,
            shards: 1,
            check_counters,
            full_sweep_only,
            trace_sample,
            flight_dump: flight_dump.clone(),
        })?;
        writeln!(w, "{}", report.summary_line())?;
        if !report.oracle_ok() {
            for msg in &report.oracle_failures {
                writeln!(w, "  oracle: {msg}")?;
            }
            failed.push(s);
        }
    }
    if let Some(&first) = failed.first() {
        let inspect_hint = flight_dump
            .as_deref()
            .map(|p| format!("; inspect with: cs-traffic-cli inspect --dump {}", p.display()))
            .unwrap_or_default();
        return Err(CliError::Algorithm(format!(
            "chaos oracle failed for seed(s) {failed:?}; reproduce with: \
             cs-traffic-cli chaos --seed {first} --ticks {ticks}{inspect_hint}"
        )));
    }
    Ok(())
}

/// `chaos-net` — the connection-level chaos sweep: faulty `cs-wire/v1`
/// clients (mid-frame cuts, adversarial write boundaries, slow-loris
/// stalls) against a live sharded daemon on an ephemeral loopback port,
/// audited by the predicted-delivered differential oracle. One summary
/// line per seed, byte-identical at any `--threads`, so CI can diff
/// sweeps across thread counts exactly like the line-level `chaos`
/// command.
///
/// # Errors
///
/// [`CliError::Algorithm`] when any seed's oracle fails (exit 70),
/// [`CliError::Io`] if the daemon cannot bind or a harness socket dies.
pub fn cmd_chaos_net<W: Write>(
    seed: u64,
    sweep: u64,
    clients: usize,
    shards: usize,
    mut w: W,
) -> CliResult {
    let mut failed = Vec::new();
    for s in seed..seed.saturating_add(sweep.max(1)) {
        let report = chaos::run_net(&chaos::NetChaosConfig {
            seed: s,
            clients: clients.max(1),
            shards: shards.max(1),
            ..chaos::NetChaosConfig::default()
        })?;
        writeln!(w, "{}", report.summary_line())?;
        if !report.oracle_ok() {
            for msg in &report.oracle_failures {
                writeln!(w, "  oracle: {msg}")?;
            }
            failed.push(s);
        }
    }
    if let Some(&first) = failed.first() {
        return Err(CliError::Algorithm(format!(
            "connection-chaos oracle failed for seed(s) {failed:?}; reproduce with: \
             cs-traffic-cli chaos-net --seed {first} --clients {clients} --shards {shards}"
        )));
    }
    Ok(())
}

/// `inspect` — the read side of the observability plane.
///
/// With `dump`, renders a `cs-traffic-flight/v1` flight dump (written
/// by a degraded serve tick, a chaos oracle failure, or the panic hook)
/// as a human-readable causal timeline: the dump header, per-trace
/// stage-by-stage report lives, and the trace IDs caught in each
/// degraded solve. With `expose`, re-renders the metric snapshots found
/// in any telemetry JSONL (a `--metrics-out` file or a flight dump) in
/// Prometheus text exposition format — byte-identical to what
/// [`telemetry::metrics::expose_text`] produces live.
///
/// # Errors
///
/// [`CliError::Usage`] when neither source is given, [`CliError::Io`]
/// for unreadable files, [`CliError::Input`] for malformed JSONL or a
/// wrong schema.
pub fn cmd_inspect<W: Write>(dump: Option<&Path>, expose: Option<&Path>, mut w: W) -> CliResult {
    if dump.is_none() && expose.is_none() {
        return Err(CliError::Usage("inspect needs --dump FILE and/or --expose FILE".into()));
    }
    if let Some(path) = dump {
        inspect_dump(path, &mut w)?;
    }
    if let Some(path) = expose {
        inspect_expose(path, &mut w)?;
    }
    Ok(())
}

/// Renders a flight dump as a causal timeline (see [`cmd_inspect`]).
fn inspect_dump<W: Write>(path: &Path, w: &mut W) -> CliResult {
    use telemetry::json::Json;

    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {}: {e}", path.display())))?;
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| CliError::Input(format!("{}: empty flight dump", path.display())))?;
    let header = Json::parse(header_line)
        .map_err(|e| CliError::Input(format!("{}:1: {e}", path.display())))?;
    let schema = header.get("schema").and_then(Json::as_str).unwrap_or("?");
    if schema != "cs-traffic-flight/v1" {
        return Err(CliError::Input(format!(
            "{}: expected schema cs-traffic-flight/v1, found '{schema}'",
            path.display()
        )));
    }
    writeln!(
        w,
        "flight dump {} (trigger: {}, git: {})",
        path.display(),
        header.get("trigger").and_then(Json::as_str).unwrap_or("?"),
        header.get("git_rev").and_then(Json::as_str).unwrap_or("?"),
    )?;
    writeln!(
        w,
        "captured {} records, {} dropped from the ring (capacity {})",
        header.get("captured").and_then(Json::as_num).unwrap_or(0.0),
        header.get("dropped").and_then(Json::as_num).unwrap_or(0.0),
        header.get("capacity").and_then(Json::as_num).unwrap_or(0.0),
    )?;
    if let Some(Json::Obj(meta)) = header.get("meta") {
        for (k, v) in meta {
            writeln!(w, "  meta {k} = {}", v.as_str().unwrap_or("?"))?;
        }
    }

    // One pass: collect trace stages per trace ID (in seq order — the
    // file is already seq-sorted) and count the other record types.
    let mut traces: Vec<(String, Vec<(String, String)>)> = Vec::new();
    let mut type_counts: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    for (idx, line) in lines {
        let record = Json::parse(line)
            .map_err(|e| CliError::Input(format!("{}:{}: {e}", path.display(), idx + 1)))?;
        let kind = record.get("type").and_then(Json::as_str).unwrap_or("?").to_string();
        *type_counts.entry(kind.clone()).or_default() += 1;
        if kind != "trace" {
            continue;
        }
        let seq = record.get("seq").and_then(Json::as_num).unwrap_or(-1.0);
        let Some(fields) = record.get("fields") else { continue };
        let trace = fields.get("trace").and_then(Json::as_str).unwrap_or("?").to_string();
        let stage = fields.get("stage").and_then(Json::as_str).unwrap_or("?");
        let mut detail = String::new();
        if let Json::Obj(pairs) = fields {
            for (k, v) in pairs {
                if k != "trace" && k != "stage" {
                    detail.push_str(&format!(" {k}={}", v.encode()));
                }
            }
        }
        let entry = (stage.to_string(), format!("seq {seq:>6}  {stage}{detail}"));
        match traces.iter_mut().find(|(id, _)| *id == trace) {
            Some((_, stages)) => stages.push(entry),
            None => traces.push((trace, vec![entry])),
        }
    }

    let counts = type_counts.iter().map(|(k, v)| format!("{v} {k}")).collect::<Vec<_>>().join(", ");
    writeln!(w, "records in ring: {}", if counts.is_empty() { "none" } else { &counts })?;

    if !traces.is_empty() {
        writeln!(w, "\ncausal timelines ({} traced reports):", traces.len())?;
        for (id, stages) in &traces {
            writeln!(w, "  trace {id}:")?;
            for (_, rendered) in stages {
                writeln!(w, "    {rendered}")?;
            }
        }
        // The post-mortem question: which reports were in the window of
        // a solve that degraded?
        let degraded: Vec<&str> = traces
            .iter()
            .filter(|(_, stages)| stages.iter().any(|(stage, _)| stage == "degraded"))
            .map(|(id, _)| id.as_str())
            .collect();
        if degraded.is_empty() {
            writeln!(w, "\nno degraded solve in the recorded window")?;
        } else {
            writeln!(
                w,
                "\ndegraded solve: {} traced reports in the failing window: {}",
                degraded.len(),
                degraded.join(" ")
            )?;
        }
    } else {
        writeln!(w, "no trace records in the ring (was --trace-sample set?)")?;
    }
    Ok(())
}

/// Re-renders metric snapshots from a telemetry JSONL in Prometheus
/// text exposition format (see [`cmd_inspect`]).
fn inspect_expose<W: Write>(path: &Path, w: &mut W) -> CliResult {
    use telemetry::json::Json;
    use telemetry::{MetricSnapshot, RecordKind, Value};

    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {}: {e}", path.display())))?;
    // Last snapshot per metric wins (a file can hold several flushes);
    // BTreeMap gives the same name order as the live registry.
    let mut snaps: std::collections::BTreeMap<String, MetricSnapshot> =
        std::collections::BTreeMap::new();
    for (idx, line) in text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()) {
        let record = Json::parse(line)
            .map_err(|e| CliError::Input(format!("{}:{}: {e}", path.display(), idx + 1)))?;
        let kind = match record.get("type").and_then(Json::as_str) {
            Some("counter") => RecordKind::Counter,
            Some("gauge") => RecordKind::Gauge,
            Some("histogram") => RecordKind::Histogram,
            _ => continue,
        };
        let Some(name) = record.get("name").and_then(Json::as_str) else { continue };
        let mut fields: Vec<telemetry::Field> = Vec::new();
        if let Some(Json::Obj(pairs)) = record.get("fields") {
            for (k, v) in pairs {
                let value = match v {
                    Json::Bool(b) => Value::Bool(*b),
                    Json::Num(n) => Value::Float(*n),
                    Json::Str(s) => Value::Str(s.clone()),
                    _ => continue,
                };
                fields.push((telemetry::Key::from(k.clone()), value));
            }
        }
        snaps.insert(name.to_string(), MetricSnapshot { name: name.to_string(), kind, fields });
    }
    let mut out = String::new();
    for snap in snaps.values() {
        snap.expose_text_into(&mut out);
    }
    write!(w, "{out}")?;
    Ok(())
}

/// Options for [`cmd_loadtest`], mirroring the `loadtest` flags.
#[derive(Debug, Clone)]
pub struct LoadtestOptions {
    /// Geometry preset: `"quick"` (CI smoke) or `"full"`.
    pub profile: String,
    /// Stream seed — same seed, same offered stream, any thread count.
    pub seed: u64,
    /// Run a single leg at this offered rate instead of searching.
    pub rate: Option<f64>,
    /// Override the preset's measured ticks per leg.
    pub ticks: Option<usize>,
    /// Cap on search legs.
    pub max_legs: usize,
    /// `"in-process"` (default) or `"socket"` — the latter replays the
    /// best leg through a live loopback daemon and records the
    /// client-observed e2e quantiles into the artifact's `socket`
    /// section.
    pub transport: String,
    /// Shard workers for the socket leg (ignored in-process).
    pub shards: usize,
    /// Where to write `BENCH_serve.json` (skipped when `None`).
    pub out: Option<std::path::PathBuf>,
    /// SLO file; when set, the run is gated against `[budget]` and
    /// `[baseline]` and violations exit 70.
    pub slo: Option<std::path::PathBuf>,
}

impl Default for LoadtestOptions {
    fn default() -> Self {
        Self {
            profile: "quick".into(),
            seed: 42,
            rate: None,
            ticks: None,
            max_legs: 12,
            transport: "in-process".into(),
            shards: 2,
            out: None,
            slo: None,
        }
    }
}

/// `loadtest`: closed-loop load generation against the in-process
/// streaming service — the CLI face of `cs_bench::loadgen`, so "how
/// fast does serving go on this box" needs no bench harness.
///
/// Searches for the maximum sustainable throughput (or measures one
/// `--rate` leg), prints per-leg lines and a summary, optionally
/// writes the `cs-traffic-bench-serve/v3` artifact, and — when an SLO
/// file is given — applies [`cs_bench::slo::gate`]. With
/// `--transport socket` the best leg is additionally replayed through
/// a live loopback daemon ([`cs_bench::loadgen::run_leg_socket`]); the
/// in-process leg stays the number the SLO gate reads.
///
/// # Errors
///
/// [`CliError::Usage`] for unknown profiles/transports and bad
/// geometry, [`CliError::Input`] for an unreadable/invalid SLO file,
/// [`CliError::Algorithm`] when the SLO gate reports violations, and
/// [`CliError::Io`] if the artifact cannot be written or the socket
/// leg's daemon fails.
pub fn cmd_loadtest<W: Write>(opts: &LoadtestOptions, mut w: W) -> CliResult {
    use cs_bench::loadgen::{self, LoadConfig, SloBudget};
    use cs_bench::slo::{self, GateInputs};

    let mut cfg = match opts.profile.as_str() {
        "quick" => LoadConfig::quick(opts.seed),
        "full" => LoadConfig::full(opts.seed),
        other => {
            return Err(CliError::Usage(format!("unknown profile '{other}' (expected quick|full)")))
        }
    };
    if !matches!(opts.transport.as_str(), "in-process" | "socket") {
        return Err(CliError::Usage(format!(
            "unknown transport '{}' (expected in-process|socket)",
            opts.transport
        )));
    }
    if let Some(ticks) = opts.ticks {
        cfg.ticks = ticks;
    }

    let slo = opts
        .slo
        .as_deref()
        .map(slo::load_slo)
        .transpose()
        .map_err(|e| CliError::Input(e.to_string()))?;
    let budget = slo.map_or_else(SloBudget::default, |s| s.budget);

    let start = opts.rate.unwrap_or(if opts.profile == "quick" { 200.0 } else { 2_000.0 });
    let max_legs = if opts.rate.is_some() { 1 } else { opts.max_legs };
    let search = loadgen::search_max_rate(&cfg, &budget, start, max_legs)
        .map_err(|e| CliError::Usage(e.to_string()))?;

    for leg in &search.legs {
        writeln!(
            w,
            "leg rate={:8.1}/s  tick_p99={:8.0}us  drop={:.4}  {}",
            leg.rate,
            leg.tick_p99_us,
            leg.drop_rate,
            if leg.passed { "pass" } else { "FAIL" }
        )?;
    }
    let best = &search.best;
    writeln!(
        w,
        "max_sustainable_rate={:.1}/s offered={:.1}/s achieved={:.1}/s \
         tick_us p50/p99/p999={:.0}/{:.0}/{:.0} solve_us p99={:.0} \
         drop_rate={:.4} stream={:016x}",
        search.max_sustainable_rate,
        best.offered_rate,
        best.achieved_rate,
        best.tick_us.p50,
        best.tick_us.p99,
        best.tick_us.p999,
        best.solve_us.p99,
        best.drop_rate,
        best.stream_hash,
    )?;

    let socket = if opts.transport == "socket" {
        let leg = loadgen::run_leg_socket(&cfg, search.best.offered_rate, opts.shards)
            .map_err(|e| CliError::Io(format!("socket leg failed: {e}")))?;
        writeln!(
            w,
            "socket shards={} offered={:.1}/s achieved={:.1}/s \
                 e2e_us p50/p99/p999={:.0}/{:.0}/{:.0} stream={:016x}{}",
            leg.shards,
            leg.offered_rate,
            leg.achieved_rate,
            leg.e2e_us.p50,
            leg.e2e_us.p99,
            leg.e2e_us.p999,
            leg.stream_hash,
            if leg.stream_hash == search.best.stream_hash {
                ""
            } else {
                " (HASH MISMATCH vs in-process leg)"
            },
        )?;
        // The wire path must replay the exact in-process stream; a
        // diverging witness hash is a determinism violation, the same
        // class of failure as a chaos oracle trip.
        if leg.stream_hash != search.best.stream_hash {
            return Err(CliError::Algorithm(format!(
                "socket leg stream hash {:016x} != in-process {:016x}; reproduce with: \
                 cs-traffic-cli loadtest --profile {} --seed {} --transport socket --shards {}",
                leg.stream_hash, search.best.stream_hash, opts.profile, opts.seed, opts.shards,
            )));
        }
        Some(leg)
    } else {
        None
    };

    if let Some(out) = &opts.out {
        let quick = opts.profile == "quick";
        // The CLI wrapper never runs the grid sweep — `scale` is the
        // loadgen binary's profile — so the curve is empty here.
        loadgen::write_bench_serve_json(out, &cfg, &search, &[], socket.as_ref(), quick)
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", out.display())))?;
        writeln!(w, "wrote {}", out.display())?;
    }

    if let Some(slo) = slo {
        let fresh = GateInputs {
            tick_p99_us: best.tick_us.p99,
            solve_p99_us: best.solve_us.p99,
            drop_rate: best.drop_rate,
            max_sustainable_rate: search.max_sustainable_rate,
        };
        let violations = slo::gate(&slo, &fresh);
        if !violations.is_empty() {
            return Err(CliError::Algorithm(format!(
                "SLO gate failed: {}; reproduce with: cs-traffic-cli loadtest --profile {} \
                 --seed {} --slo {}",
                violations.join("; "),
                opts.profile,
                opts.seed,
                opts.slo.as_deref().map(Path::display).map(|d| d.to_string()).unwrap_or_default(),
            )));
        }
        writeln!(w, "SLO gate: pass")?;
    }
    Ok(())
}

/// Options for [`cmd_daemon`].
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Listen endpoint, `tcp:HOST:PORT` or `unix:/path.sock`.
    pub bind: String,
    /// Road-network CSV whose segment count sizes the engine.
    pub network: Option<std::path::PathBuf>,
    /// Explicit segment count (alternative to `network`).
    pub segments: Option<usize>,
    /// Slot granularity in minutes (15/30/60), like `serve`.
    pub granularity: String,
    /// Sliding-window length in slots.
    pub window_slots: usize,
    /// Factorization rank override.
    pub rank: Option<usize>,
    /// Regularization override.
    pub lambda: Option<f64>,
    /// Segment-range shard workers.
    pub shards: usize,
    /// Warm-start checkpoint, loaded on boot and written on shutdown.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Periodic engine tick interval in milliseconds.
    pub tick_ms: u64,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            bind: "tcp:127.0.0.1:4650".to_string(),
            network: None,
            segments: None,
            granularity: "15".to_string(),
            window_slots: 24,
            rank: None,
            lambda: None,
            shards: 1,
            checkpoint: None,
            tick_ms: 250,
        }
    }
}

/// Installs SIGTERM/SIGINT handlers that flip the returned stop flag.
///
/// The handler itself only stores into a `static` atomic
/// (async-signal-safe); a watcher thread mirrors it into the `Arc` the
/// daemon's accept loop polls, so a signal drains connections, runs a
/// final tick, checkpoints, and exits cleanly.
fn install_signal_stop() -> std::sync::Arc<std::sync::atomic::AtomicBool> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    {
        static SIGNALLED: AtomicBool = AtomicBool::new(false);
        extern "C" fn on_signal(_sig: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
        let mirror = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("cs-signal-watch".to_string())
            .spawn(move || loop {
                if SIGNALLED.load(Ordering::SeqCst) {
                    mirror.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            })
            .expect("spawn signal watcher");
    }
    stop
}

/// `daemon` — run the sharded streaming engine as a long-lived network
/// server speaking `cs-wire/v1` over TCP or a Unix-domain socket.
///
/// The engine is sized either from a road network file (segment count)
/// or an explicit `--segments` count. SIGTERM/SIGINT (or a client
/// `Shutdown` request) drain connections, run a final tick, write the
/// checkpoint if one was configured, and exit 0.
///
/// # Errors
///
/// Bind/boot failures only (bad address, unreadable network file,
/// invalid config, checkpoint I/O). Per-connection trouble — malformed
/// frames, disconnects, slow peers — is counted and reported in the
/// final stats line, never fatal.
pub fn cmd_daemon<W: Write>(opts: &DaemonOptions, mut w: W) -> CliResult {
    use traffic_cs::daemon::{Daemon, DaemonConfig};
    use traffic_cs::service::ServeConfig;
    use traffic_cs::sharded::ShardPlan;

    let segments = match (&opts.network, opts.segments) {
        (Some(path), None) => {
            let net = roadnet::io::read_network(BufReader::new(File::open(path)?))?;
            net.segment_count()
        }
        (None, Some(n)) => n,
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--network and --segments are mutually exclusive".to_string(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage("daemon needs --network FILE or --segments N".to_string()))
        }
    };
    let slot_len_s = parse_granularity(&opts.granularity)?.seconds();
    let window_cells = (opts.window_slots * segments) as f64;
    let default_lambda = (100.0 * window_cells / (672.0 * 221.0)).max(0.01);
    let cs = CsConfig {
        rank: opts.rank.unwrap_or(2),
        lambda: opts.lambda.unwrap_or(default_lambda),
        ..CsConfig::default()
    };
    let shards = opts.shards.max(1);
    let serve = ServeConfig::builder()
        .slot_len_s(slot_len_s)
        .window_slots(opts.window_slots)
        .num_segments(segments)
        .cs(cs)
        .shards(ShardPlan::with_count(shards))
        .build()?;
    let bind = proto::net::BindAddr::parse(&opts.bind).map_err(CliError::Usage)?;
    let mut cfg = DaemonConfig::new(bind, serve);
    cfg.checkpoint = opts.checkpoint.clone();
    cfg.tick_interval = std::time::Duration::from_millis(opts.tick_ms.max(1));
    let daemon = Daemon::bind(cfg)?;
    writeln!(
        w,
        "listening on {} ({} shard{}, {} segments, {})",
        daemon.local_addr(),
        shards,
        if shards == 1 { "" } else { "s" },
        segments,
        proto::PROTOCOL,
    )?;
    // Smoke tests read the address line before dialing.
    w.flush()?;
    let stats = daemon.run(install_signal_stop())?;
    writeln!(
        w,
        "daemon stopped: {} connections, {} frames, {} reports, {} protocol errors",
        stats.connections, stats.frames, stats.reports, stats.protocol_errors
    )?;
    Ok(())
}

/// Options for [`cmd_daemon_client`].
#[derive(Debug, Clone)]
pub struct DaemonClientOptions {
    /// Daemon endpoint, `tcp:HOST:PORT` or `unix:/path.sock`.
    pub addr: String,
    /// Road network for map-matching ingested reports.
    pub network: Option<std::path::PathBuf>,
    /// Probe-report CSV to ingest (requires `network`).
    pub reports: Option<std::path::PathBuf>,
    /// Reports per `ReportBatch` frame.
    pub batch: usize,
    /// Query to run after ingest: `estimate`, `stats`, or `health`.
    pub query: Option<String>,
    /// TCM output path for `--query estimate`.
    pub out: Option<std::path::PathBuf>,
    /// Ask the daemon to shut down after everything else.
    pub shutdown: bool,
}

impl Default for DaemonClientOptions {
    fn default() -> Self {
        Self {
            addr: "tcp:127.0.0.1:4650".to_string(),
            network: None,
            reports: None,
            batch: 500,
            query: None,
            out: None,
            shutdown: false,
        }
    }
}

/// `daemon-client` — dial a running daemon, optionally stream a probe
/// report file into it, then run one query and/or request shutdown.
///
/// Ingest map-matches exactly like `serve` (same index radius, same
/// matching distance), batches reports into pipelined `ReportBatch`
/// frames, and finishes with a `Sync` barrier so the printed stats
/// reflect every pushed report. `--query estimate --out FILE` writes
/// the daemon's live window estimate as a TCM, byte-compatible with
/// `serve --out`.
///
/// # Errors
///
/// Connection failures map to exit 74, wire-protocol violations to
/// exit 76, bad flags to exit 2.
pub fn cmd_daemon_client<W: Write>(opts: &DaemonClientOptions, mut w: W) -> CliResult {
    use proto::client::Client;
    use proto::msg::{Request, Response, WireReport};
    use std::io::BufRead;

    let addr = proto::net::BindAddr::parse(&opts.addr).map_err(CliError::Usage)?;
    let mut client = Client::connect(&addr)?;

    match (&opts.network, &opts.reports) {
        (Some(network), Some(reports)) => {
            let net = roadnet::io::read_network(BufReader::new(File::open(network)?))?;
            let index = SegmentIndex::build(&net, 150.0);
            let reader = BufReader::new(File::open(reports)?);
            let mut lines = reader.lines();
            let _ = lines.next().transpose()?;
            let cap = opts.batch.max(1);
            let mut batch: Vec<WireReport> = Vec::with_capacity(cap);
            let (mut pushed, mut malformed, mut unmatched) = (0u64, 0u64, 0u64);
            for (idx, line) in lines.enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let report = match probes::io::parse_report_record(&line, idx + 2) {
                    Ok(r) => r,
                    Err(_) => {
                        malformed += 1;
                        continue;
                    }
                };
                let heading = report.has_heading().then_some(report.heading);
                let Some(m) = index.match_point_directed(&net, report.position, 80.0, heading)
                else {
                    unmatched += 1;
                    continue;
                };
                batch.push(WireReport::new(
                    report.vehicle.0 as u64,
                    report.timestamp_s,
                    m.segment.index() as u64,
                    report.speed_kmh,
                ));
                if batch.len() >= cap {
                    pushed += batch.len() as u64;
                    client.send(&Request::ReportBatch(std::mem::take(&mut batch)))?;
                }
            }
            if !batch.is_empty() {
                pushed += batch.len() as u64;
                client.send(&Request::ReportBatch(std::mem::take(&mut batch)))?;
            }
            match client.request(&Request::Sync)? {
                Response::Synced { pushed: acked, tick_us, solve_us, stats } => writeln!(
                    w,
                    "ingested {acked}/{pushed} reports ({malformed} malformed, {unmatched} \
                     unmatched): {} admitted, {} late, {} duplicate, {} rejected; \
                     barrier tick {tick_us}us (solve {solve_us}us)",
                    stats.admitted, stats.dropped_late, stats.duplicates, stats.rejected,
                )?,
                other => return Err(CliError::Protocol(format!("expected Synced, got {other:?}"))),
            }
        }
        (None, None) => {}
        _ => return Err(CliError::Usage("ingest needs both --network and --reports".to_string())),
    }

    match opts.query.as_deref() {
        None => {}
        Some("estimate") => match client.request(&Request::QueryEstimate)? {
            Response::Estimate(Some(est)) => {
                writeln!(
                    w,
                    "live estimate: window head slot {}, {} sweeps, stale: {}",
                    est.head_slot, est.sweeps, est.stale
                )?;
                if let Some(out) = &opts.out {
                    let data: Vec<f64> =
                        est.values_bits.iter().copied().map(f64::from_bits).collect();
                    let m = linalg::Matrix::from_vec(est.rows as usize, est.cols as usize, data)
                        .map_err(|e| CliError::Protocol(format!("estimate shape: {e}")))?;
                    write_tcm(&Tcm::complete(m), BufWriter::new(File::create(out)?))?;
                    writeln!(w, "wrote window estimate -> {}", out.display())?;
                }
            }
            Response::Estimate(None) => {
                writeln!(w, "no estimate yet (no admissible reports)")?;
            }
            other => return Err(CliError::Protocol(format!("expected Estimate, got {other:?}"))),
        },
        Some("stats") => match client.request(&Request::QueryStats)? {
            Response::Stats { merged, shards } => {
                writeln!(
                    w,
                    "merged: {} admitted, {} late, {} duplicate, {} rejected, {} queue-dropped, \
                     {} solves, {} degraded",
                    merged.admitted,
                    merged.dropped_late,
                    merged.duplicates,
                    merged.rejected,
                    merged.queue_dropped,
                    merged.solves,
                    merged.degraded
                )?;
                for (i, s) in shards.iter().enumerate() {
                    writeln!(
                        w,
                        "shard {i}: {} admitted, {} late, {} rejected, {} solves",
                        s.admitted, s.dropped_late, s.rejected, s.solves
                    )?;
                }
            }
            other => return Err(CliError::Protocol(format!("expected Stats, got {other:?}"))),
        },
        Some("health") => match client.request(&Request::QueryHealth)? {
            Response::Health { ok, shards, segments, queue_len, clock_s } => writeln!(
                w,
                "health: ok={ok} shards={shards} segments={segments} queue={queue_len} \
                 clock={clock_s}s"
            )?,
            other => return Err(CliError::Protocol(format!("expected Health, got {other:?}"))),
        },
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown --query '{other}' (estimate|stats|health)"
            )))
        }
    }

    if opts.shutdown {
        match client.request(&Request::Shutdown)? {
            Response::Bye => writeln!(w, "daemon acknowledged shutdown")?,
            other => return Err(CliError::Protocol(format!("expected Bye, got {other:?}"))),
        }
    }
    client.close();
    Ok(())
}

/// Minimal flag parser: `--key value` pairs after the subcommand.
pub fn parse_flags(args: &[String]) -> CliResult<std::collections::HashMap<String, String>> {
    let mut map = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(CliError::Usage(format!("expected --flag, got '{key}'")));
        }
        let Some(value) = args.get(i + 1) else {
            return Err(CliError::Usage(format!("flag {key} is missing a value")));
        };
        map.insert(key[2..].to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_parsing() {
        assert_eq!(parse_granularity("15").unwrap(), Granularity::Min15);
        assert_eq!(parse_granularity("60").unwrap(), Granularity::Min60);
        assert!(parse_granularity("45").is_err());
    }

    #[test]
    fn exit_codes_classify_failures() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Input("x".into()).exit_code(), 65);
        assert_eq!(CliError::Algorithm("x".into()).exit_code(), 70);
        assert_eq!(CliError::Io("x".into()).exit_code(), 74);
        assert_eq!(CliError::Protocol("x".into()).exit_code(), 76);
        // From conversions land in the right class.
        let e: CliError = std::io::Error::other("disk").into();
        assert_eq!(e.exit_code(), 74);
        let e: CliError =
            traffic_cs::Error::from(traffic_cs::ConfigError::new("rank", "bad")).into();
        assert_eq!(e.exit_code(), 65);
        let e: CliError = traffic_cs::Error::from(traffic_cs::CsError::NoObservations).into();
        assert_eq!(e.exit_code(), 70);
        // Wire-protocol failures get their own sysexits class...
        let e: CliError = proto::msg::DecodeError::Empty.into();
        assert_eq!(e.exit_code(), 76);
        let e: CliError = proto::client::ClientError::Protocol("wrong version".to_string()).into();
        assert_eq!(e.exit_code(), 76);
        // ...but a client's socket-level trouble is still plain I/O.
        let e: CliError = proto::client::ClientError::Io(std::io::Error::other("refused")).into();
        assert_eq!(e.exit_code(), 74);
    }

    #[test]
    fn flag_parser() {
        let args: Vec<String> = ["--a", "1", "--b", "x y"].iter().map(|s| s.to_string()).collect();
        let m = parse_flags(&args).unwrap();
        assert_eq!(m["a"], "1");
        assert_eq!(m["b"], "x y");
        assert!(parse_flags(&["--a".into()]).is_err());
        assert!(parse_flags(&["a".into(), "1".into()]).is_err());
    }
}
