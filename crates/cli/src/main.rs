//! `cs-traffic-cli` — the end-to-end pipeline as a command-line tool.
//!
//! ```text
//! cs-traffic-cli simulate  --scenario small --out-dir data
//! cs-traffic-cli build-tcm --network data/network.csv --reports data/reports.csv \
//!                          --granularity 30 --duration-h 6 --out data/tcm.csv
//! cs-traffic-cli estimate  --tcm data/tcm.csv --method cs --out data/estimate.csv
//! cs-traffic-cli analyze   --tcm data/truth.csv
//! cs-traffic-cli evaluate  --truth data/truth.csv --estimate data/estimate.csv \
//!                          --observed data/tcm.csv
//! ```

use cs_traffic_cli::{
    cmd_analyze, cmd_build_tcm, cmd_chaos, cmd_chaos_net, cmd_daemon, cmd_daemon_client,
    cmd_detect, cmd_estimate, cmd_evaluate, cmd_inspect, cmd_loadtest, cmd_serve, cmd_simulate,
    parse_flags, CliError, CliResult, DaemonClientOptions, DaemonOptions, LoadtestOptions,
    ServeOptions,
};
use std::path::Path;

const USAGE: &str =
    "usage: cs-traffic-cli <simulate|build-tcm|estimate|analyze|detect|evaluate|serve|daemon|daemon-client|chaos|chaos-net|loadtest|inspect> [--flag value ...]

global flags:
  --threads N        worker threads for completion/detection hot paths
                     (0 = all cores, 1 = sequential; results are identical)
  --log-level LEVEL  telemetry verbosity to stderr: off|error|info|debug|trace
                     (default off; debug adds per-sweep/per-generation spans)
  --metrics-out F    append telemetry records as JSON lines to F (also
                     enables counters/gauges/histograms, flushed on exit)
  --trace-sample N   causal per-report tracing modulus for serve/chaos:
                     0 = off (default), 1 = every report, N = reports whose
                     FNV-1a trace ID is divisible by N; raises the level
                     to trace for the sinks (stderr stays at --log-level)
  --flight-recorder N  install a flight recorder ring of the last N
                     telemetry records (default 512 when any flight/trace
                     flag is set); dumped on panic and degraded solves

subcommands:
  simulate   --scenario small|shanghai|shenzhen [--fleet N] [--duration-h H]
             [--granularity 15|30|60] --out-dir DIR
  build-tcm  --network FILE --reports FILE --granularity 15|30|60
             --duration-h H --out FILE
  estimate   --tcm FILE --method cs|knn|corr-knn|mssa [--rank R] [--lambda L]
             --out FILE
  analyze    --tcm FILE
  detect     --tcm FILE [--period-slots N] [--sigma S]
  evaluate   --truth FILE --estimate FILE --observed FILE
  serve      --network FILE --reports FILE [--granularity 15|30|60]
             [--window-slots W] [--rank R] [--lambda L] [--batch N]
             [--shards S] [--checkpoint FILE] [--out FILE] [--flight-dump FILE]
             (replays reports through the fault-tolerant streaming
              service; --batch 0 = whole file in one tick; --shards 1
              is a bit-for-bit pass-through of the classic engine; with
              --flight-dump, degraded ticks dump the flight recorder)
  daemon     --bind tcp:HOST:PORT|unix:/path.sock
             (--network FILE | --segments N) [--granularity 15|30|60]
             [--window-slots W] [--rank R] [--lambda L] [--shards S]
             [--checkpoint FILE] [--tick-ms MS]
             (long-running cs-wire/v1 server over TCP or a Unix socket;
              concurrent clients stream reports and query the merged
              live estimate; SIGTERM/SIGINT or a client Shutdown drains,
              ticks once more, writes --checkpoint, and exits 0)
  daemon-client --addr tcp:HOST:PORT|unix:/path.sock
             [--network FILE --reports FILE] [--batch N]
             [--query estimate|stats|health] [--out FILE]
             [--shutdown true]
             (dial a daemon: optionally ingest a report file, then run
              one query; --query estimate --out writes the live window
              estimate as a TCM; exit 76 on wire-protocol violations)
  chaos      --seed N [--ticks T] [--sweep K] [--solve-mode incremental|full]
             [--flight-dump FILE]
             (deterministic fault-injection run against the streaming
              service with a differential oracle; same seed = identical
              output at any --threads AND any --solve-mode; exit 70 on
              oracle violation; --solve-mode full disables the
              incremental dirty-set solve path for differential runs;
              --flight-dump captures degraded ticks and oracle failures)
  chaos-net  --seed N [--sweep K] [--clients C] [--shards S]
             (connection-level chaos: faulty cs-wire/v1 clients —
              mid-frame cuts, adversarial write boundaries, slow-loris
              stalls — against a live sharded daemon on an ephemeral
              loopback port; predicted-delivered differential oracle,
              one summary line per seed, byte-identical at any
              --threads; exit 70 on oracle violation)
  inspect    [--dump FILE] [--expose FILE]
             (--dump renders a cs-traffic-flight/v1 flight dump as a
              causal timeline; --expose re-renders the metric snapshots
              in any telemetry JSONL as Prometheus exposition text)
  loadtest   [--profile quick|full] [--seed N] [--rate R] [--ticks T]
             [--max-legs N] [--transport in-process|socket] [--shards S]
             [--out FILE] [--slo FILE]
             (closed-loop load generator against the in-process
              streaming service; binary-searches the max sustainable
              throughput, writes a cs-traffic-bench-serve/v3 JSON with
              --out, and with --slo gates against results/SLO.toml,
              exit 70 on violation; same --seed = identical offered
              stream at any --threads; --transport socket replays the
              best leg through a live loopback daemon and records the
              client-observed e2e quantiles in the artifact's socket
              section)";

fn run() -> CliResult {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    let flags = parse_flags(&args[1..])?;
    let get = |k: &str| -> CliResult<&String> {
        flags
            .get(k)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{k}\n\n{USAGE}")))
    };
    if let Some(threads) = flags.get("threads") {
        // One process-wide default instead of a parameter through every
        // subcommand: configs built with `num_threads: 0` pick it up.
        workpool::set_default_threads(threads.parse()?);
    }
    let tele_cfg = telemetry::TelemetryConfig {
        level: flags
            .get("log-level")
            .map(|s| s.parse().map_err(CliError::Usage))
            .transpose()?
            .unwrap_or_default(),
        metrics_out: flags.get("metrics-out").map(std::path::PathBuf::from),
    };
    telemetry::init(&tele_cfg).map_err(|e| CliError::Io(format!("telemetry init failed: {e}")))?;
    let trace_sample: u64 = flags.get("trace-sample").map(|s| s.parse()).transpose()?.unwrap_or(0);
    let flight_dump = flags.get("flight-dump").map(std::path::PathBuf::from);
    // A dump without causal traces is near-useless, so requesting a
    // dump path turns full tracing on unless a sample was given.
    let trace_sample = if flight_dump.is_some() && trace_sample == 0 { 1 } else { trace_sample };
    let flight_capacity: Option<usize> =
        flags.get("flight-recorder").map(|s| s.parse()).transpose()?;
    if trace_sample > 0 || flight_dump.is_some() || flight_capacity.is_some() {
        // Tracing and the flight ring ride on the record dispatch
        // layer: raise the effective level so trace records reach the
        // sinks (the stderr pretty-printer still filters by
        // --log-level, so the terminal stays quiet).
        telemetry::set_level(telemetry::level().max(telemetry::Level::Trace));
        let recorder = telemetry::flight::install(flight_capacity.unwrap_or(512));
        if let Some(path) = &flight_dump {
            recorder.set_dump_path(path.clone());
        }
        recorder.set_meta("command", cmd);
        recorder.set_meta("trace_sample", &trace_sample.to_string());
    }
    match cmd.as_str() {
        "simulate" => cmd_simulate(
            get("scenario")?,
            flags.get("fleet").map(|s| s.parse()).transpose()?,
            flags.get("duration-h").map(|s| s.parse()).transpose()?,
            flags.get("granularity").map_or("15", |s| s.as_str()),
            Path::new(get("out-dir")?),
        ),
        "build-tcm" => cmd_build_tcm(
            Path::new(get("network")?),
            Path::new(get("reports")?),
            get("granularity")?,
            get("duration-h")?.parse()?,
            Path::new(get("out")?),
        ),
        "estimate" => cmd_estimate(
            Path::new(get("tcm")?),
            get("method")?,
            flags.get("rank").map(|s| s.parse()).transpose()?,
            flags.get("lambda").map(|s| s.parse()).transpose()?,
            Path::new(get("out")?),
        ),
        "analyze" => cmd_analyze(Path::new(get("tcm")?), std::io::stdout().lock()),
        "detect" => cmd_detect(
            Path::new(get("tcm")?),
            flags.get("period-slots").map_or(Ok(48), |s| s.parse())?,
            flags.get("sigma").map_or(Ok(3.5), |s| s.parse())?,
            std::io::stdout().lock(),
        ),
        "evaluate" => cmd_evaluate(
            Path::new(get("truth")?),
            Path::new(get("estimate")?),
            Path::new(get("observed")?),
        )
        .map(|_| ()),
        "serve" => {
            let defaults = ServeOptions::default();
            let opts = ServeOptions {
                granularity: flags.get("granularity").cloned().unwrap_or(defaults.granularity),
                window_slots: flags
                    .get("window-slots")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.window_slots),
                rank: flags.get("rank").map(|s| s.parse()).transpose()?,
                lambda: flags.get("lambda").map(|s| s.parse()).transpose()?,
                batch: flags.get("batch").map(|s| s.parse()).transpose()?.unwrap_or(defaults.batch),
                checkpoint: flags.get("checkpoint").map(std::path::PathBuf::from),
                out: flags.get("out").map(std::path::PathBuf::from),
                trace_sample,
                flight_dump: flight_dump.clone(),
                shards: flags
                    .get("shards")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.shards),
            };
            cmd_serve(
                Path::new(get("network")?),
                Path::new(get("reports")?),
                &opts,
                std::io::stdout().lock(),
            )
        }
        "daemon" => {
            let defaults = DaemonOptions::default();
            let opts = DaemonOptions {
                bind: get("bind")?.clone(),
                network: flags.get("network").map(std::path::PathBuf::from),
                segments: flags.get("segments").map(|s| s.parse()).transpose()?,
                granularity: flags.get("granularity").cloned().unwrap_or(defaults.granularity),
                window_slots: flags
                    .get("window-slots")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.window_slots),
                rank: flags.get("rank").map(|s| s.parse()).transpose()?,
                lambda: flags.get("lambda").map(|s| s.parse()).transpose()?,
                shards: flags
                    .get("shards")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.shards),
                checkpoint: flags.get("checkpoint").map(std::path::PathBuf::from),
                tick_ms: flags
                    .get("tick-ms")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.tick_ms),
            };
            cmd_daemon(&opts, std::io::stdout().lock())
        }
        "daemon-client" => {
            let defaults = DaemonClientOptions::default();
            let opts = DaemonClientOptions {
                addr: get("addr")?.clone(),
                network: flags.get("network").map(std::path::PathBuf::from),
                reports: flags.get("reports").map(std::path::PathBuf::from),
                batch: flags.get("batch").map(|s| s.parse()).transpose()?.unwrap_or(defaults.batch),
                query: flags.get("query").cloned(),
                out: flags.get("out").map(std::path::PathBuf::from),
                shutdown: flags
                    .get("shutdown")
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| CliError::Usage("--shutdown wants true|false".to_string()))?
                    .unwrap_or(defaults.shutdown),
            };
            cmd_daemon_client(&opts, std::io::stdout().lock())
        }
        "loadtest" => {
            let defaults = LoadtestOptions::default();
            let opts = LoadtestOptions {
                profile: flags.get("profile").cloned().unwrap_or(defaults.profile),
                seed: flags.get("seed").map(|s| s.parse()).transpose()?.unwrap_or(defaults.seed),
                rate: flags.get("rate").map(|s| s.parse()).transpose()?,
                ticks: flags.get("ticks").map(|s| s.parse()).transpose()?,
                max_legs: flags
                    .get("max-legs")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.max_legs),
                transport: flags.get("transport").cloned().unwrap_or(defaults.transport),
                shards: flags
                    .get("shards")
                    .map(|s| s.parse())
                    .transpose()?
                    .unwrap_or(defaults.shards),
                out: flags.get("out").map(std::path::PathBuf::from),
                slo: flags.get("slo").map(std::path::PathBuf::from),
            };
            cmd_loadtest(&opts, std::io::stdout().lock())
        }
        "chaos" => cmd_chaos(
            get("seed")?.parse()?,
            flags.get("ticks").map_or(Ok(24), |s| s.parse())?,
            flags.get("sweep").map_or(Ok(1), |s| s.parse())?,
            true,
            match flags.get("solve-mode").map(String::as_str) {
                None | Some("incremental") => false,
                Some("full") => true,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown --solve-mode '{other}' (incremental|full)"
                    )))
                }
            },
            trace_sample,
            flight_dump.clone(),
            std::io::stdout().lock(),
        ),
        "chaos-net" => cmd_chaos_net(
            get("seed")?.parse()?,
            flags.get("sweep").map_or(Ok(1), |s| s.parse())?,
            flags.get("clients").map_or(Ok(8), |s| s.parse())?,
            flags.get("shards").map_or(Ok(2), |s| s.parse())?,
            std::io::stdout().lock(),
        ),
        "inspect" => cmd_inspect(
            flags.get("dump").map(Path::new),
            flags.get("expose").map(Path::new),
            std::io::stdout().lock(),
        ),
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'\n\n{USAGE}"))),
    }
}

fn main() {
    let result = run();
    // Flush sinks (and dump final metric snapshots) even on error paths.
    telemetry::shutdown();
    if let Err(e) = result {
        eprintln!("error: {e}");
        // The single place failures become exit codes.
        std::process::exit(e.exit_code());
    }
}
