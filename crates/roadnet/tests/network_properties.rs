//! Property tests over generated road networks: interchange round trips,
//! routing invariants, and structural guarantees of the generator.

use proptest::prelude::*;
use roadnet::analysis::{is_strongly_connected, network_stats, strongly_connected_components};
use roadnet::generator::{generate_grid_city, GridCityConfig};
use roadnet::io::{read_network, write_network};
use roadnet::routing::shortest_path;
use roadnet::NodeId;

fn config_strategy() -> impl Strategy<Value = GridCityConfig> {
    (2usize..8, 2usize..8, 0u64..10_000, 0usize..4, 0usize..4).prop_map(
        |(rows, cols, seed, arterial, collector)| GridCityConfig {
            rows,
            cols,
            seed,
            arterial_every: arterial,
            collector_every: collector,
            ..GridCityConfig::small_test()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated city survives the CSV round trip exactly.
    #[test]
    fn interchange_round_trip(cfg in config_strategy()) {
        let net = generate_grid_city(&cfg);
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let back = read_network(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.node_count(), net.node_count());
        prop_assert_eq!(back.segment_count(), net.segment_count());
        for (a, b) in net.segments().iter().zip(back.segments()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Grid cities are always strongly connected (every edge has both
    /// directions), and the stats agree with the generator's formula.
    #[test]
    fn generated_cities_strongly_connected(cfg in config_strategy()) {
        let net = generate_grid_city(&cfg);
        prop_assert!(is_strongly_connected(&net));
        let stats = network_stats(&net);
        prop_assert_eq!(stats.segments, cfg.expected_segments());
        prop_assert_eq!(stats.nodes, cfg.rows * cfg.cols);
        prop_assert_eq!(stats.scc_count, 1);
        prop_assert!((stats.largest_scc_fraction - 1.0).abs() < 1e-12);
    }

    /// Dijkstra satisfies the triangle inequality through any midpoint:
    /// time(a→c) ≤ time(a→b) + time(b→c).
    #[test]
    fn shortest_path_triangle_inequality(
        cfg in config_strategy(),
        picks in proptest::collection::vec(0usize..1000, 3),
    ) {
        let net = generate_grid_city(&cfg);
        let n = net.node_count();
        let a = NodeId((picks[0] % n) as u32);
        let b = NodeId((picks[1] % n) as u32);
        let c = NodeId((picks[2] % n) as u32);
        let t_ac = shortest_path(&net, a, c).unwrap().travel_time_s;
        let t_ab = shortest_path(&net, a, b).unwrap().travel_time_s;
        let t_bc = shortest_path(&net, b, c).unwrap().travel_time_s;
        prop_assert!(t_ac <= t_ab + t_bc + 1e-9, "{} > {} + {}", t_ac, t_ab, t_bc);
    }

    /// Symmetric free-flow speeds do not guarantee symmetric paths, but
    /// the optimal time is bounded by the reverse path's reverse-twin
    /// traversal (speed jitter makes them differ only slightly).
    #[test]
    fn route_times_roughly_symmetric(cfg in config_strategy(), pick in 0usize..1000) {
        let net = generate_grid_city(&cfg);
        let n = net.node_count();
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick * 7 + 1) % n) as u32);
        let fwd = shortest_path(&net, a, b).unwrap().travel_time_s;
        let rev = shortest_path(&net, b, a).unwrap().travel_time_s;
        // Twins' jitter is ±10% around the class speed.
        prop_assert!(fwd <= rev * 1.3 + 1e-9 && rev <= fwd * 1.3 + 1e-9, "{} vs {}", fwd, rev);
    }

    /// SCC components partition the node set.
    #[test]
    fn scc_partitions_nodes(cfg in config_strategy()) {
        let net = generate_grid_city(&cfg);
        let comps = strongly_connected_components(&net);
        let mut seen = std::collections::HashSet::new();
        for comp in &comps {
            for node in comp {
                prop_assert!(seen.insert(*node), "node {:?} in two components", node);
            }
        }
        prop_assert_eq!(seen.len(), net.node_count());
    }
}
