//! Road-network substrate for the cs-traffic reproduction.
//!
//! The paper's experiments run over real road networks (an inner-Shanghai
//! subnetwork of 5,812 segments; evaluation subnetworks of 221 and 198
//! segments). Those map databases are not available, so this crate provides:
//!
//! * a directed road-network graph model ([`RoadNetwork`]) with road
//!   segments between neighbouring intersections — the paper's unit of
//!   traffic estimation,
//! * a synthetic **grid-city generator** ([`generator`]) producing
//!   arterial/collector/local segment classes and "urban canyon" zones
//!   (where GPS reports are lost),
//! * Dijkstra **routing** for probe-taxi trip generation ([`routing`]), and
//! * nearest-segment GPS **map matching** ([`matching`]) with a uniform
//!   grid spatial index.
//!
//! # Example
//!
//! ```
//! use roadnet::generator::{GridCityConfig, generate_grid_city};
//!
//! let net = generate_grid_city(&GridCityConfig::small_test());
//! assert!(net.segment_count() > 0);
//! let seg = net.segment(roadnet::SegmentId(0));
//! assert!(seg.length_m > 0.0);
//! ```

pub mod analysis;
pub mod builder;
pub mod generator;
pub mod geometry;
mod ids;
pub mod io;
pub mod matching;
mod network;
pub mod routing;

pub use builder::{NetworkBuildError, RoadNetworkBuilder};
pub use ids::{NodeId, SegmentId};
pub use network::{RoadClass, RoadNetwork, Segment};
