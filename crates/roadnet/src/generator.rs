//! Synthetic grid-city generator.
//!
//! Stands in for the Shanghai/Shenzhen map data the paper uses: a
//! rows × cols lattice of intersections spaced one block apart, with two
//! directed segments per adjacent pair. Streets are classed as arterial,
//! collector, or local on a regular pattern (every k-th street is an
//! arterial, as in real grid cities), and a central "downtown core" is
//! marked as urban canyon with elevated GPS-loss probability, reproducing
//! the canyon dropouts the paper describes in Section 1.

use crate::builder::RoadNetworkBuilder;
use crate::geometry::Point;
use crate::network::{RoadClass, RoadNetwork};
use crate::NodeId;
use rand::{RngExt, SeedableRng};

/// Parameters of the synthetic grid city.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridCityConfig {
    /// Number of intersection rows.
    pub rows: usize,
    /// Number of intersection columns.
    pub cols: usize,
    /// Block edge length in metres.
    pub block_len_m: f64,
    /// Every `arterial_every`-th street (row/column index divisible by
    /// this) is an arterial. `0` disables arterials.
    pub arterial_every: usize,
    /// Among non-arterial streets, every `collector_every`-th is a
    /// collector. `0` disables collectors.
    pub collector_every: usize,
    /// Half-width of the central canyon core, as a fraction of the city
    /// extent (`0.25` means the central 50% × 50% box).
    pub canyon_core_fraction: f64,
    /// Probability that a segment inside the core is an urban canyon.
    pub canyon_prob_core: f64,
    /// Probability that a segment outside the core is an urban canyon.
    pub canyon_prob_outer: f64,
    /// Relative jitter applied to each segment's free-flow speed
    /// (uniform in `[1 - j, 1 + j]`).
    pub speed_jitter: f64,
    /// RNG seed: identical configs generate identical cities.
    pub seed: u64,
}

impl GridCityConfig {
    /// A 5 × 5 test city — small enough for exhaustive assertions.
    pub fn small_test() -> Self {
        Self {
            rows: 5,
            cols: 5,
            block_len_m: 200.0,
            arterial_every: 2,
            collector_every: 0,
            canyon_core_fraction: 0.25,
            canyon_prob_core: 0.5,
            canyon_prob_outer: 0.05,
            speed_jitter: 0.1,
            seed: 1,
        }
    }

    /// Inner-Shanghai-like city: 39 × 39 intersections giving 5,928
    /// directed segments — matching the paper's 5,812-segment inner
    /// region in scale. Dense arterials, pronounced canyon core.
    pub fn shanghai_like() -> Self {
        Self {
            rows: 39,
            cols: 39,
            block_len_m: 250.0,
            arterial_every: 5,
            collector_every: 2,
            canyon_core_fraction: 0.2,
            canyon_prob_core: 0.35,
            canyon_prob_outer: 0.04,
            speed_jitter: 0.15,
            seed: 20070218, // the Feb 18, 2007 study date
        }
    }

    /// Shenzhen-like city: similar block structure but configured so that
    /// the *studied subnetwork* sees a sparser probe distribution (the
    /// fleet spreads over a larger area — see `traffic-sim`'s scenario
    /// presets). Geometry differences are secondary.
    pub fn shenzhen_like() -> Self {
        Self {
            rows: 44,
            cols: 44,
            block_len_m: 300.0,
            arterial_every: 6,
            collector_every: 2,
            canyon_core_fraction: 0.18,
            canyon_prob_core: 0.3,
            canyon_prob_outer: 0.03,
            speed_jitter: 0.18,
            seed: 755,
        }
    }

    /// Expected number of directed segments for this grid.
    pub fn expected_segments(&self) -> usize {
        2 * (self.rows * self.cols.saturating_sub(1) + self.cols * self.rows.saturating_sub(1))
    }
}

/// Generates the grid city described by `config`.
///
/// # Panics
///
/// Panics when the grid is smaller than 2 × 2 or probabilities are
/// outside `[0, 1]` (configuration bugs, not runtime conditions).
pub fn generate_grid_city(config: &GridCityConfig) -> RoadNetwork {
    assert!(config.rows >= 2 && config.cols >= 2, "grid must be at least 2x2");
    assert!((0.0..=1.0).contains(&config.canyon_prob_core), "canyon_prob_core out of range");
    assert!((0.0..=1.0).contains(&config.canyon_prob_outer), "canyon_prob_outer out of range");
    assert!((0.0..=0.95).contains(&config.speed_jitter), "speed_jitter out of range");

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut b = RoadNetworkBuilder::new();

    // Nodes in row-major order.
    for r in 0..config.rows {
        for c in 0..config.cols {
            b.add_node(Point::new(c as f64 * config.block_len_m, r as f64 * config.block_len_m));
        }
    }
    let node_at = |r: usize, c: usize| NodeId((r * config.cols + c) as u32);

    // Street class from its index along the perpendicular axis.
    let class_of = |street_index: usize| -> RoadClass {
        if config.arterial_every > 0 && street_index.is_multiple_of(config.arterial_every) {
            RoadClass::Arterial
        } else if config.collector_every > 0 && street_index.is_multiple_of(config.collector_every)
        {
            RoadClass::Collector
        } else {
            RoadClass::Local
        }
    };

    // Canyon core box in grid coordinates.
    let center_r = (config.rows - 1) as f64 / 2.0;
    let center_c = (config.cols - 1) as f64 / 2.0;
    let half_r = config.canyon_core_fraction * config.rows as f64;
    let half_c = config.canyon_core_fraction * config.cols as f64;
    let in_core = |r: f64, c: f64| (r - center_r).abs() <= half_r && (c - center_c).abs() <= half_c;

    let add_bidirectional = |b: &mut RoadNetworkBuilder,
                             rng: &mut rand::rngs::StdRng,
                             from: NodeId,
                             to: NodeId,
                             class: RoadClass,
                             mid_r: f64,
                             mid_c: f64| {
        let canyon_p =
            if in_core(mid_r, mid_c) { config.canyon_prob_core } else { config.canyon_prob_outer };
        for (a, z) in [(from, to), (to, from)] {
            let jitter = 1.0 + rng.random_range(-config.speed_jitter..=config.speed_jitter);
            let speed = class.default_free_flow_kmh() * jitter;
            let canyon = rng.random_range(0.0..1.0) < canyon_p;
            b.add_segment(a, z, class, Some(speed), canyon)
                .expect("generator produces only valid segments");
        }
    };

    // Horizontal streets (constant row r): class keyed by r.
    for r in 0..config.rows {
        let class = class_of(r);
        for c in 0..config.cols - 1 {
            add_bidirectional(
                &mut b,
                &mut rng,
                node_at(r, c),
                node_at(r, c + 1),
                class,
                r as f64,
                c as f64 + 0.5,
            );
        }
    }
    // Vertical streets (constant column c): class keyed by c.
    for c in 0..config.cols {
        let class = class_of(c);
        for r in 0..config.rows - 1 {
            add_bidirectional(
                &mut b,
                &mut rng,
                node_at(r, c),
                node_at(r + 1, c),
                class,
                r as f64 + 0.5,
                c as f64,
            );
        }
    }

    b.build().expect("non-degenerate grid always builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentId;

    #[test]
    fn segment_count_matches_formula() {
        let cfg = GridCityConfig::small_test();
        let net = generate_grid_city(&cfg);
        assert_eq!(net.segment_count(), cfg.expected_segments());
        assert_eq!(net.node_count(), 25);
        // 5x5: 2 * (5*4 + 5*4) = 80.
        assert_eq!(net.segment_count(), 80);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = GridCityConfig::small_test();
        let a = generate_grid_city(&cfg);
        let b = generate_grid_city(&cfg);
        assert_eq!(a.segment_count(), b.segment_count());
        for (sa, sb) in a.segments().iter().zip(b.segments()) {
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn different_seed_changes_speeds() {
        let cfg = GridCityConfig::small_test();
        let mut cfg2 = cfg.clone();
        cfg2.seed = 999;
        let a = generate_grid_city(&cfg);
        let b = generate_grid_city(&cfg2);
        let differing = a
            .segments()
            .iter()
            .zip(b.segments())
            .filter(|(x, y)| x.free_flow_kmh != y.free_flow_kmh)
            .count();
        assert!(differing > 0);
    }

    #[test]
    fn arterials_on_configured_streets() {
        let cfg = GridCityConfig::small_test(); // arterial_every = 2
        let net = generate_grid_city(&cfg);
        // Horizontal segment on row 0 must be arterial; row 1 local.
        let row0 = net
            .segments()
            .iter()
            .find(|s| {
                let a = net.node(s.from);
                let z = net.node(s.to);
                a.y == 0.0 && z.y == 0.0
            })
            .unwrap();
        assert_eq!(row0.class, RoadClass::Arterial);
        let row1 = net
            .segments()
            .iter()
            .find(|s| {
                let a = net.node(s.from);
                let z = net.node(s.to);
                a.y == 200.0 && z.y == 200.0
            })
            .unwrap();
        assert_eq!(row1.class, RoadClass::Local);
    }

    #[test]
    fn speed_jitter_bounded() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        for s in net.segments() {
            let base = s.class.default_free_flow_kmh();
            assert!(s.free_flow_kmh >= base * 0.9 - 1e-9);
            assert!(s.free_flow_kmh <= base * 1.1 + 1e-9);
        }
    }

    #[test]
    fn canyons_concentrate_in_core() {
        let mut cfg = GridCityConfig::shanghai_like();
        cfg.canyon_prob_core = 0.9;
        cfg.canyon_prob_outer = 0.0;
        let net = generate_grid_city(&cfg);
        let canyon_count = net.segments().iter().filter(|s| s.urban_canyon).count();
        assert!(canyon_count > 0);
        // Every canyon segment's midpoint must be inside the core box.
        let bb = net.bounding_box().unwrap();
        let cx = (bb.min.x + bb.max.x) / 2.0;
        let cy = (bb.min.y + bb.max.y) / 2.0;
        for s in net.segments().iter().filter(|s| s.urban_canyon) {
            let mid = net.segment_point(s.id, 0.5);
            assert!((mid.x - cx).abs() <= bb.width() * cfg.canyon_core_fraction + cfg.block_len_m);
            assert!((mid.y - cy).abs() <= bb.height() * cfg.canyon_core_fraction + cfg.block_len_m);
        }
    }

    #[test]
    fn shanghai_like_scale() {
        let cfg = GridCityConfig::shanghai_like();
        // Matches the paper's 5,812-segment inner region in scale.
        assert_eq!(cfg.expected_segments(), 5928);
    }

    #[test]
    fn every_edge_has_both_directions() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        for s in net.segments() {
            let twin = net.segments().iter().find(|t| t.from == s.to && t.to == s.from);
            assert!(twin.is_some(), "segment {} lacks a reverse twin", s.id);
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        for (i, s) in net.segments().iter().enumerate() {
            assert_eq!(s.id, SegmentId(i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_grid_rejected() {
        let mut cfg = GridCityConfig::small_test();
        cfg.rows = 1;
        generate_grid_city(&cfg);
    }
}

/// Parameters of the radial (ring-and-spoke) city generator — a second
/// topology so downstream results can be checked for grid artifacts.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RadialCityConfig {
    /// Number of concentric rings (≥ 1).
    pub rings: usize,
    /// Nodes per ring (≥ 3).
    pub spokes: usize,
    /// Radial distance between consecutive rings, metres.
    pub ring_spacing_m: f64,
    /// Probability that a segment is an urban canyon (uniform here; the
    /// centre of a radial city is its densest part, but canyon placement
    /// is not this generator's focus).
    pub canyon_prob: f64,
    /// Relative jitter on free-flow speeds.
    pub speed_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RadialCityConfig {
    /// A small test city: 3 rings × 8 spokes.
    pub fn small_test() -> Self {
        Self {
            rings: 3,
            spokes: 8,
            ring_spacing_m: 300.0,
            canyon_prob: 0.1,
            speed_jitter: 0.1,
            seed: 3,
        }
    }

    /// Expected number of directed segments: each ring contributes
    /// `spokes` ring edges; each spoke contributes `rings` radial edges
    /// (centre→ring1→…); every edge is two directed segments.
    pub fn expected_segments(&self) -> usize {
        2 * (self.rings * self.spokes + self.rings * self.spokes)
    }
}

/// Generates a ring-and-spoke city: a centre node, `rings` concentric
/// rings of `spokes` nodes, ring edges (collectors) and radial edges
/// (arterials, the classic avenue pattern).
///
/// # Panics
///
/// Panics on a degenerate configuration (`rings == 0`, `spokes < 3`,
/// probabilities out of range).
pub fn generate_radial_city(config: &RadialCityConfig) -> RoadNetwork {
    assert!(config.rings >= 1, "need at least one ring");
    assert!(config.spokes >= 3, "need at least three spokes");
    assert!((0.0..=1.0).contains(&config.canyon_prob), "canyon_prob out of range");
    assert!((0.0..=0.95).contains(&config.speed_jitter), "speed_jitter out of range");

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut b = RoadNetworkBuilder::new();
    let centre = b.add_node(Point::new(0.0, 0.0));
    // Ring r (1-based), spoke k -> node index 1 + (r-1)*spokes + k.
    let mut ring_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(config.rings);
    for r in 1..=config.rings {
        let radius = r as f64 * config.ring_spacing_m;
        let nodes: Vec<NodeId> = (0..config.spokes)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / config.spokes as f64;
                b.add_node(Point::new(radius * theta.cos(), radius * theta.sin()))
            })
            .collect();
        ring_nodes.push(nodes);
    }

    let add_two_way = |b: &mut RoadNetworkBuilder,
                       rng: &mut rand::rngs::StdRng,
                       from: NodeId,
                       to: NodeId,
                       class: RoadClass| {
        for (a, z) in [(from, to), (to, from)] {
            let jitter = 1.0 + rng.random_range(-config.speed_jitter..=config.speed_jitter);
            let speed = class.default_free_flow_kmh() * jitter;
            let canyon = rng.random_range(0.0..1.0) < config.canyon_prob;
            b.add_segment(a, z, class, Some(speed), canyon)
                .expect("radial generator produces valid segments");
        }
    };

    // Radial arterials: centre -> ring1 -> ring2 -> ...
    for k in 0..config.spokes {
        add_two_way(&mut b, &mut rng, centre, ring_nodes[0][k], RoadClass::Arterial);
        for pair in ring_nodes.windows(2) {
            add_two_way(&mut b, &mut rng, pair[0][k], pair[1][k], RoadClass::Arterial);
        }
    }
    // Ring collectors.
    for nodes in &ring_nodes {
        for k in 0..config.spokes {
            add_two_way(
                &mut b,
                &mut rng,
                nodes[k],
                nodes[(k + 1) % config.spokes],
                RoadClass::Collector,
            );
        }
    }

    b.build().expect("non-degenerate radial city always builds")
}

#[cfg(test)]
mod radial_tests {
    use super::*;

    #[test]
    fn segment_count_matches_formula() {
        let cfg = RadialCityConfig::small_test();
        let net = generate_radial_city(&cfg);
        assert_eq!(net.segment_count(), cfg.expected_segments());
        assert_eq!(net.node_count(), 1 + 3 * 8);
    }

    #[test]
    fn radial_city_is_strongly_connected() {
        let net = generate_radial_city(&RadialCityConfig::small_test());
        assert!(crate::analysis::is_strongly_connected(&net));
    }

    #[test]
    fn spokes_are_arterials_rings_collectors() {
        let net = generate_radial_city(&RadialCityConfig::small_test());
        let arterials = net.segments().iter().filter(|s| s.class == RoadClass::Arterial).count();
        let collectors = net.segments().iter().filter(|s| s.class == RoadClass::Collector).count();
        // 8 spokes x 3 radial hops x 2 directions = 48 arterial segments;
        // 3 rings x 8 edges x 2 = 48 collectors.
        assert_eq!(arterials, 48);
        assert_eq!(collectors, 48);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = RadialCityConfig::small_test();
        let a = generate_radial_city(&cfg);
        let b = generate_radial_city(&cfg);
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x, y);
        }
        let c = generate_radial_city(&RadialCityConfig { seed: 99, ..cfg });
        assert!(a
            .segments()
            .iter()
            .zip(c.segments())
            .any(|(x, y)| x.free_flow_kmh != y.free_flow_kmh));
    }

    #[test]
    #[should_panic(expected = "three spokes")]
    fn degenerate_rejected() {
        generate_radial_city(&RadialCityConfig { spokes: 2, ..RadialCityConfig::small_test() });
    }
}
