//! Typed identifiers for network elements.

use std::fmt;

/// Identifier of a road intersection (graph node).
///
/// Newtype over the index into [`crate::RoadNetwork`]'s node table, so node
/// and segment indices cannot be confused at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

/// Identifier of a directed road segment (link between two neighbouring
/// intersections) — the unit whose traffic condition the paper estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentId(pub u32);

impl NodeId {
    /// The node's position in the network's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// The segment's position in the network's segment table, and its
    /// column index in traffic condition matrices built over the full
    /// network.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for SegmentId {
    fn from(v: u32) -> Self {
        SegmentId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(SegmentId(7).to_string(), "s7");
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(SegmentId::from(9u32).index(), 9);
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(SegmentId(2) < SegmentId(10));
        assert!(NodeId(0) < NodeId(1));
    }
}
