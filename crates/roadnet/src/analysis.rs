//! Network structural analysis: strong connectivity and coverage stats.
//!
//! Imported (or generated) networks should be validated before running
//! fleets over them — a taxi trapped in a dead-end component never
//! samples the rest of the city. This module provides Tarjan's strongly
//! connected components plus the summary statistics the CLI's `analyze`
//! path and the generators' tests rely on.

use crate::network::RoadNetwork;
use crate::NodeId;

/// Strongly connected components of the directed road graph, largest
/// first. Each component lists its node ids (ascending).
pub fn strongly_connected_components(net: &RoadNetwork) -> Vec<Vec<NodeId>> {
    // Iterative Tarjan (explicit stack; city graphs overflow recursion).
    let n = net.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // DFS state machine: (node, neighbour cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let out = net.outgoing(NodeId(v as u32));
            if *cursor < out.len() {
                let w = net.segment(out[*cursor]).to.index();
                *cursor += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Node finished: pop and propagate lowlink.
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    components.push(comp);
                }
            }
        }
    }
    components.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    components
}

/// Whether every node can reach every other node (single SCC).
pub fn is_strongly_connected(net: &RoadNetwork) -> bool {
    let comps = strongly_connected_components(net);
    comps.len() == 1
}

/// Summary statistics of a network's structure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkStats {
    /// Number of intersections.
    pub nodes: usize,
    /// Number of directed segments.
    pub segments: usize,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// Fraction of nodes in the largest SCC.
    pub largest_scc_fraction: f64,
    /// Total road length, metres (directed; two-way roads count twice).
    pub total_length_m: f64,
    /// Fraction of segments flagged urban canyon.
    pub canyon_fraction: f64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
}

/// Computes [`NetworkStats`].
pub fn network_stats(net: &RoadNetwork) -> NetworkStats {
    let comps = strongly_connected_components(net);
    let largest = comps.first().map_or(0, Vec::len);
    let canyon = net.segments().iter().filter(|s| s.urban_canyon).count();
    NetworkStats {
        nodes: net.node_count(),
        segments: net.segment_count(),
        scc_count: comps.len(),
        largest_scc_fraction: largest as f64 / net.node_count().max(1) as f64,
        total_length_m: net.segments().iter().map(|s| s.length_m).sum(),
        canyon_fraction: canyon as f64 / net.segment_count().max(1) as f64,
        mean_out_degree: net.segment_count() as f64 / net.node_count().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RoadNetworkBuilder;
    use crate::generator::{generate_grid_city, GridCityConfig};
    use crate::geometry::Point;
    use crate::RoadClass;

    #[test]
    fn grid_city_is_strongly_connected() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        assert!(is_strongly_connected(&net));
        let comps = strongly_connected_components(&net);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), net.node_count());
    }

    #[test]
    fn one_way_line_fragments_into_singletons() {
        // 0 -> 1 -> 2 with no way back: three SCCs.
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(200.0, 0.0));
        b.add_segment(n0, n1, RoadClass::Local, None, false).unwrap();
        b.add_segment(n1, n2, RoadClass::Local, None, false).unwrap();
        let net = b.build().unwrap();
        let comps = strongly_connected_components(&net);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
        assert!(!is_strongly_connected(&net));
    }

    #[test]
    fn cycle_plus_tail() {
        // 0 <-> 1 cycle, plus 1 -> 2 tail: SCCs {0,1} and {2}.
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(200.0, 0.0));
        b.add_segment(n0, n1, RoadClass::Local, None, false).unwrap();
        b.add_segment(n1, n0, RoadClass::Local, None, false).unwrap();
        b.add_segment(n1, n2, RoadClass::Local, None, false).unwrap();
        let net = b.build().unwrap();
        let comps = strongly_connected_components(&net);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]); // largest first
        assert_eq!(comps[1], vec![NodeId(2)]);
    }

    #[test]
    fn stats_of_grid_city() {
        let cfg = GridCityConfig::small_test();
        let net = generate_grid_city(&cfg);
        let stats = network_stats(&net);
        assert_eq!(stats.nodes, 25);
        assert_eq!(stats.segments, 80);
        assert_eq!(stats.scc_count, 1);
        assert_eq!(stats.largest_scc_fraction, 1.0);
        // 80 segments of 200 m.
        assert!((stats.total_length_m - 16_000.0).abs() < 1e-6);
        assert!(stats.canyon_fraction >= 0.0 && stats.canyon_fraction <= 1.0);
        assert!((stats.mean_out_degree - 80.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn scc_handles_large_grid_iteratively() {
        // Deep enough that recursive Tarjan would risk the stack.
        let mut cfg = GridCityConfig::small_test();
        cfg.rows = 60;
        cfg.cols = 60;
        let net = generate_grid_city(&cfg);
        assert!(is_strongly_connected(&net));
    }
}
