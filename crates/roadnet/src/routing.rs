//! Shortest-path routing and random trip generation.
//!
//! Probe taxis in the simulator drive shortest-travel-time routes between
//! random origin–destination pairs, which is how fleets of real taxis end
//! up concentrating on arterials and leaving side streets under-sampled —
//! the root cause of the paper's missing-data problem.

use crate::network::RoadNetwork;
use crate::{NodeId, SegmentId};
use rand::RngExt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A routed path: the sequence of directed segments to traverse, plus the
/// total free-flow travel time.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Segments in traversal order; empty when origin == destination.
    pub segments: Vec<SegmentId>,
    /// Total free-flow travel time in seconds.
    pub travel_time_s: f64,
}

impl Route {
    /// Total length of the route in metres.
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.segments.iter().map(|&s| net.segment(s).length_m).sum()
    }
}

/// Binary-heap entry; reversed ordering turns `BinaryHeap` into a min-heap.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("travel times are finite")
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path by free-flow travel time.
///
/// Returns `None` when `to` is unreachable from `from`. An empty route is
/// returned when `from == to`.
pub fn shortest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<Route> {
    if from == to {
        return Some(Route { segments: Vec::new(), travel_time_s: 0.0 });
    }
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_seg: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, node: from });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if node == to {
            break;
        }
        if cost > dist[node.index()] {
            continue; // stale entry
        }
        for &sid in net.outgoing(node) {
            let seg = net.segment(sid);
            let next = seg.to;
            let next_cost = cost + seg.free_flow_time_s();
            if next_cost < dist[next.index()] {
                dist[next.index()] = next_cost;
                prev_seg[next.index()] = Some(sid);
                heap.push(HeapEntry { cost: next_cost, node: next });
            }
        }
    }

    if dist[to.index()].is_infinite() {
        return None;
    }
    // Walk predecessors back to the origin.
    let mut segments = Vec::new();
    let mut cur = to;
    while cur != from {
        let sid = prev_seg[cur.index()].expect("reachable node has a predecessor");
        segments.push(sid);
        cur = net.segment(sid).from;
    }
    segments.reverse();
    Some(Route { segments, travel_time_s: dist[to.index()] })
}

/// Draws a random origin–destination trip and routes it. Retries a few
/// times if it draws an unreachable pair or a trivial (same-node) pair;
/// returns `None` only when the network appears disconnected.
pub fn random_trip<R: RngExt + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
) -> Option<(NodeId, NodeId, Route)> {
    let n = net.node_count() as u32;
    for _ in 0..32 {
        let from = NodeId(rng.random_range(0..n));
        let to = NodeId(rng.random_range(0..n));
        if from == to {
            continue;
        }
        if let Some(route) = shortest_path(net, from, to) {
            if !route.segments.is_empty() {
                return Some((from, to, route));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_grid_city, GridCityConfig};
    use crate::geometry::Point;
    use crate::network::RoadClass;
    use crate::RoadNetworkBuilder;
    use rand::SeedableRng;

    fn line_network() -> RoadNetwork {
        // 0 -> 1 -> 2 (one way only).
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(200.0, 0.0));
        b.add_segment(n0, n1, RoadClass::Local, Some(36.0), false).unwrap();
        b.add_segment(n1, n2, RoadClass::Local, Some(36.0), false).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shortest_path_on_line() {
        let net = line_network();
        let route = shortest_path(&net, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(route.segments, vec![SegmentId(0), SegmentId(1)]);
        // 200 m at 36 km/h (10 m/s) = 20 s.
        assert!((route.travel_time_s - 20.0).abs() < 1e-9);
        assert!((route.length_m(&net) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_returns_none() {
        let net = line_network();
        assert!(shortest_path(&net, NodeId(2), NodeId(0)).is_none());
    }

    #[test]
    fn same_node_is_empty_route() {
        let net = line_network();
        let route = shortest_path(&net, NodeId(1), NodeId(1)).unwrap();
        assert!(route.segments.is_empty());
        assert_eq!(route.travel_time_s, 0.0);
    }

    #[test]
    fn path_is_connected_and_optimal_on_grid() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let from = NodeId(0);
        let to = NodeId(24); // opposite corner of the 5x5 grid
        let route = shortest_path(&net, from, to).unwrap();
        // Path connectivity: each segment starts where the previous ended.
        let mut cur = from;
        for &sid in &route.segments {
            let seg = net.segment(sid);
            assert_eq!(seg.from, cur);
            cur = seg.to;
        }
        assert_eq!(cur, to);
        // Travel time equals the sum of segment times.
        let sum: f64 = route.segments.iter().map(|&s| net.segment(s).free_flow_time_s()).sum();
        assert!((sum - route.travel_time_s).abs() < 1e-9);
        // Lower bound: the Manhattan distance at the fastest speed present.
        let max_speed = net.segments().iter().map(|s| s.free_flow_kmh).fold(0.0, f64::max);
        let manhattan = 8.0 * 200.0;
        assert!(route.travel_time_s >= manhattan / (max_speed / 3.6) - 1e-9);
    }

    #[test]
    fn prefers_fast_arterial_detour() {
        // Two routes from 0 to 3: direct slow local (one long block) vs a
        // longer arterial dogleg. Arterial must win on time.
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1000.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 200.0));
        let n3 = b.add_node(Point::new(1000.0, 200.0));
        // Slow direct: 0 -> 1 -> 3 on locals at 18 km/h (5 m/s): 240 s.
        b.add_segment(n0, n1, RoadClass::Local, Some(18.0), false).unwrap();
        b.add_segment(n1, n3, RoadClass::Local, Some(18.0), false).unwrap();
        // Fast dogleg: 0 -> 2 -> 3 at 72 km/h (20 m/s): 60 s.
        b.add_segment(n0, n2, RoadClass::Arterial, Some(72.0), false).unwrap();
        b.add_segment(n2, n3, RoadClass::Arterial, Some(72.0), false).unwrap();
        let net = b.build().unwrap();
        let route = shortest_path(&net, n0, n3).unwrap();
        assert_eq!(route.segments, vec![SegmentId(2), SegmentId(3)]);
        assert!((route.travel_time_s - 60.0).abs() < 1.0);
    }

    #[test]
    fn random_trip_yields_valid_route() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let (from, to, route) = random_trip(&net, &mut rng).unwrap();
            assert_ne!(from, to);
            assert!(!route.segments.is_empty());
            assert_eq!(net.segment(route.segments[0]).from, from);
            assert_eq!(net.segment(*route.segments.last().unwrap()).to, to);
        }
    }

    #[test]
    fn random_trip_none_on_disconnected_pairs_only() {
        // Grid is strongly connected, so random_trip must always succeed.
        let net = generate_grid_city(&GridCityConfig::small_test());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        assert!(random_trip(&net, &mut rng).is_some());
    }
}
