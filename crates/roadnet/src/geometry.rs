//! Planar geometry helpers.
//!
//! The synthetic city lives in a local planar coordinate system measured in
//! metres, sidestepping geodesy: at city scale (tens of km) the error of a
//! local tangent plane vs. true longitude/latitude is irrelevant to every
//! experiment in the paper.

/// A point in the city's planar coordinate system (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// East–west coordinate in metres.
    pub x: f64,
    /// North–south coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in metres.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

/// Squared distance from point `p` to the segment `[a, b]`, together with
/// the clamped projection parameter `t ∈ [0, 1]` of the closest point.
///
/// Map matching ranks candidate road segments by this distance.
pub fn point_segment_distance_sq(p: Point, a: Point, b: Point) -> (f64, f64) {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len_sq = abx * abx + aby * aby;
    let t = if len_sq == 0.0 {
        0.0
    } else {
        (((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq).clamp(0.0, 1.0)
    };
    let closest = a.lerp(b, t);
    let dx = p.x - closest.x;
    let dy = p.y - closest.y;
    (dx * dx + dy * dy, t)
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl BoundingBox {
    /// Smallest box containing all `points`; `None` for an empty iterator.
    pub fn from_points(points: impl IntoIterator<Item = Point>) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox { min: first, max: first };
        for p in it {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }

    /// Box width in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside (inclusive) the box.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Grows the box by `margin` metres on every side.
    pub fn expanded(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Point::new(1.5, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn point_segment_distance_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (d2, t) = point_segment_distance_sq(Point::new(5.0, 3.0), a, b);
        assert!((d2 - 9.0).abs() < 1e-12);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_segment_distance_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (d2, t) = point_segment_distance_sq(Point::new(-3.0, 4.0), a, b);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
        let (d2, t) = point_segment_distance_sq(Point::new(13.0, -4.0), a, b);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 1.0);
    }

    #[test]
    fn degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let (d2, t) = point_segment_distance_sq(Point::new(5.0, 6.0), a, a);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn bounding_box() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(4.0, 3.0)];
        let bb = BoundingBox::from_points(pts).unwrap();
        assert_eq!(bb.min, Point::new(-2.0, 0.0));
        assert_eq!(bb.max, Point::new(4.0, 5.0));
        assert_eq!(bb.width(), 6.0);
        assert_eq!(bb.height(), 5.0);
        assert!(bb.contains(Point::new(0.0, 2.0)));
        assert!(!bb.contains(Point::new(5.0, 2.0)));
        let grown = bb.expanded(1.0);
        assert!(grown.contains(Point::new(4.5, 5.5)));
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }
}
