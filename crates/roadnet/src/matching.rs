//! GPS map matching: snapping noisy probe positions to road segments.
//!
//! Each probe report carries a GPS position with metres-scale error; the
//! monitoring centre must attribute the report's speed to a road segment
//! before it can enter the traffic condition matrix. This module
//! implements nearest-segment matching accelerated by a uniform grid
//! index, the standard approach for low-frequency probe data (the paper's
//! reporting interval is 30 s to minutes, so trajectory-level HMM matching
//! à la VTrack is unnecessary).

use crate::geometry::{point_segment_distance_sq, BoundingBox, Point};
use crate::network::RoadNetwork;
use crate::SegmentId;

/// Result of matching one GPS point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// The matched segment.
    pub segment: SegmentId,
    /// Distance from the GPS point to the segment, metres.
    pub distance_m: f64,
    /// Fractional position along the segment (`0` = start node).
    pub along: f64,
}

/// Uniform-grid spatial index over a network's segments.
///
/// # Example
///
/// ```
/// use roadnet::generator::{GridCityConfig, generate_grid_city};
/// use roadnet::matching::SegmentIndex;
///
/// let net = generate_grid_city(&GridCityConfig::small_test());
/// let index = SegmentIndex::build(&net, 100.0);
/// let m = index.match_point(&net, net.segment_point(roadnet::SegmentId(0), 0.5), 50.0);
/// assert!(m.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    bbox: BoundingBox,
    cell_size: f64,
    nx: usize,
    ny: usize,
    /// Segment ids per cell, row-major over (iy, ix).
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds an index with roughly `cell_size`-metre cells.
    ///
    /// # Panics
    ///
    /// Panics on an empty network or non-positive cell size.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bbox = net.bounding_box().expect("network has nodes").expanded(cell_size);
        let nx = (bbox.width() / cell_size).ceil().max(1.0) as usize;
        let ny = (bbox.height() / cell_size).ceil().max(1.0) as usize;
        let mut cells = vec![Vec::new(); nx * ny];
        for seg in net.segments() {
            let a = net.node(seg.from);
            let b = net.node(seg.to);
            // Walk the segment at sub-cell resolution and mark every cell
            // touched. Straight-line segments make this exact enough.
            let steps = (seg.length_m / (cell_size * 0.5)).ceil().max(1.0) as usize;
            let mut last_cell = usize::MAX;
            for i in 0..=steps {
                let p = a.lerp(b, i as f64 / steps as f64);
                let idx = Self::cell_of(&bbox, cell_size, nx, ny, p);
                if idx != last_cell {
                    if !cells[idx].contains(&seg.id) {
                        cells[idx].push(seg.id);
                    }
                    last_cell = idx;
                }
            }
        }
        Self { bbox, cell_size, nx, ny, cells }
    }

    fn cell_of(bbox: &BoundingBox, cell: f64, nx: usize, ny: usize, p: Point) -> usize {
        let ix = (((p.x - bbox.min.x) / cell).floor().max(0.0) as usize).min(nx - 1);
        let iy = (((p.y - bbox.min.y) / cell).floor().max(0.0) as usize).min(ny - 1);
        iy * nx + ix
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Matches a GPS point to the nearest segment within `max_distance_m`.
    ///
    /// Returns `None` when no segment lies within the radius — the
    /// monitoring centre discards such reports (off-network noise).
    ///
    /// Note: on two-way roads the forward and reverse segments share
    /// geometry, so an undirected match cannot tell them apart; use
    /// [`SegmentIndex::match_point_directed`] when the report carries a
    /// GPS course (as real probe data does).
    pub fn match_point(
        &self,
        net: &RoadNetwork,
        p: Point,
        max_distance_m: f64,
    ) -> Option<MatchResult> {
        self.match_point_directed(net, p, max_distance_m, None)
    }

    /// Like [`SegmentIndex::match_point`], but when `heading` (a travel
    /// direction vector, need not be normalized) is given, segments whose
    /// direction opposes it are excluded — this attributes reports on
    /// two-way roads to the correct travel direction.
    pub fn match_point_directed(
        &self,
        net: &RoadNetwork,
        p: Point,
        max_distance_m: f64,
        heading: Option<(f64, f64)>,
    ) -> Option<MatchResult> {
        // Search expanding rings of cells until the best candidate cannot
        // be beaten by anything in a farther ring.
        let center_ix =
            (((p.x - self.bbox.min.x) / self.cell_size).floor().max(0.0) as usize).min(self.nx - 1);
        let center_iy =
            (((p.y - self.bbox.min.y) / self.cell_size).floor().max(0.0) as usize).min(self.ny - 1);
        let max_ring = (max_distance_m / self.cell_size).ceil() as usize + 1;

        let mut best: Option<MatchResult> = None;
        for ring in 0..=max_ring {
            // Any segment in a cell of ring k is at least (k-1)*cell away;
            // stop once the current best beats that bound.
            if let Some(b) = &best {
                if b.distance_m < (ring.saturating_sub(1)) as f64 * self.cell_size {
                    break;
                }
            }
            for (ix, iy) in ring_cells(center_ix, center_iy, ring, self.nx, self.ny) {
                for &sid in &self.cells[iy * self.nx + ix] {
                    let a = net.node(net.segment(sid).from);
                    let b = net.node(net.segment(sid).to);
                    if let Some((hx, hy)) = heading {
                        // Require the segment direction to align with the
                        // course (within ~72°): rejects both the reverse
                        // twin and perpendicular cross streets near
                        // intersections.
                        let (dx, dy) = (b.x - a.x, b.y - a.y);
                        let dot = dx * hx + dy * hy;
                        let norm = dx.hypot(dy) * hx.hypot(hy);
                        if norm == 0.0 || dot / norm < 0.3 {
                            continue;
                        }
                    }
                    let (d2, t) = point_segment_distance_sq(p, a, b);
                    let d = d2.sqrt();
                    if d <= max_distance_m && best.is_none_or(|bst| d < bst.distance_m) {
                        best = Some(MatchResult { segment: sid, distance_m: d, along: t });
                    }
                }
            }
        }
        best
    }
}

/// Cells forming the square ring at Chebyshev distance `ring` from the
/// centre, clipped to the grid.
fn ring_cells(cx: usize, cy: usize, ring: usize, nx: usize, ny: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let x0 = cx.saturating_sub(ring);
    let x1 = (cx + ring).min(nx - 1);
    let y0 = cy.saturating_sub(ring);
    let y1 = (cy + ring).min(ny - 1);
    for iy in y0..=y1 {
        for ix in x0..=x1 {
            let on_ring = ix == x0 || ix == x1 || iy == y0 || iy == y1;
            // Chebyshev test keeps the ring hollow when not clipped.
            let cheb =
                (ix as isize - cx as isize).abs().max((iy as isize - cy as isize).abs()) as usize;
            if on_ring && (cheb == ring || ring == 0) {
                out.push((ix, iy));
            }
        }
    }
    if ring == 0 {
        out.clear();
        out.push((cx.min(nx - 1), cy.min(ny - 1)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_grid_city, GridCityConfig};

    fn net_and_index() -> (RoadNetwork, SegmentIndex) {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let index = SegmentIndex::build(&net, 100.0);
        (net, index)
    }

    #[test]
    fn exact_on_segment_point_matches() {
        let (net, index) = net_and_index();
        for sid in [0u32, 7, 33, 79].map(SegmentId) {
            let p = net.segment_point(sid, 0.3);
            let m = index.match_point(&net, p, 30.0).unwrap();
            // The matched segment must be at (near-)zero distance; grid
            // cities have overlapping forward/reverse twins, either is
            // geometrically correct.
            assert!(m.distance_m < 1e-9, "distance {}", m.distance_m);
            let seg = net.segment(sid);
            let matched = net.segment(m.segment);
            let same_geometry = (matched.from == seg.from && matched.to == seg.to)
                || (matched.from == seg.to && matched.to == seg.from);
            assert!(same_geometry, "matched {} for {}", m.segment, sid);
        }
    }

    #[test]
    fn noisy_point_matches_nearby_segment() {
        let (net, index) = net_and_index();
        let p0 = net.segment_point(SegmentId(0), 0.5);
        let noisy = Point::new(p0.x + 8.0, p0.y + 6.0);
        let m = index.match_point(&net, noisy, 50.0).unwrap();
        assert!(m.distance_m <= 10.0 + 1e-9);
    }

    #[test]
    fn far_point_returns_none() {
        let (net, index) = net_and_index();
        let bb = net.bounding_box().unwrap();
        let far = Point::new(bb.max.x + 500.0, bb.max.y + 500.0);
        assert!(index.match_point(&net, far, 50.0).is_none());
    }

    #[test]
    fn along_fraction_sensible() {
        let (net, index) = net_and_index();
        let p = net.segment_point(SegmentId(0), 0.75);
        let m = index.match_point(&net, p, 10.0).unwrap();
        // Along is 0.75 on the forward twin or 0.25 on the reverse.
        assert!((m.along - 0.75).abs() < 1e-6 || (m.along - 0.25).abs() < 1e-6);
    }

    #[test]
    fn match_respects_radius() {
        let (net, index) = net_and_index();
        let p0 = net.segment_point(SegmentId(0), 0.5);
        let off = Point::new(p0.x, p0.y - 40.0);
        assert!(index.match_point(&net, off, 10.0).is_none());
        assert!(index.match_point(&net, off, 60.0).is_some());
    }

    #[test]
    fn index_covers_whole_bbox() {
        let (net, index) = net_and_index();
        // Every segment midpoint must match within a generous radius.
        for sid in net.segment_ids() {
            let p = net.segment_point(sid, 0.5);
            assert!(index.match_point(&net, p, 60.0).is_some(), "segment {sid} unmatched");
        }
        assert!(index.cell_count() > 0);
    }

    #[test]
    fn ring_cells_cover_plane_without_overlap() {
        // Union of rings 0..4 over a 9x9 grid centred at (4,4) is all 81
        // cells exactly once.
        let mut seen = std::collections::HashSet::new();
        for ring in 0..=4 {
            for cell in ring_cells(4, 4, ring, 9, 9) {
                assert!(seen.insert(cell), "cell {cell:?} repeated at ring {ring}");
            }
        }
        assert_eq!(seen.len(), 81);
    }

    #[test]
    fn ring_cells_clipped_at_border() {
        let cells = ring_cells(0, 0, 1, 5, 5);
        for (x, y) in &cells {
            assert!(*x < 5 && *y < 5);
        }
        assert!(!cells.is_empty());
    }

    #[test]
    fn directed_match_separates_twins() {
        let (net, index) = net_and_index();
        for sid in [0u32, 5, 21].map(SegmentId) {
            let seg = net.segment(sid);
            let a = net.node(seg.from);
            let b = net.node(seg.to);
            let dir = (b.x - a.x, b.y - a.y);
            let p = net.segment_point(sid, 0.4);
            let m = index.match_point_directed(&net, p, 30.0, Some(dir)).unwrap();
            assert_eq!(m.segment, sid, "forward course must match forward twin");
            let rev = (-dir.0, -dir.1);
            let m = index.match_point_directed(&net, p, 30.0, Some(rev)).unwrap();
            let matched = net.segment(m.segment);
            assert_eq!(
                (matched.from, matched.to),
                (seg.to, seg.from),
                "reverse course must match reverse twin"
            );
        }
    }

    #[test]
    fn directed_match_rejects_perpendicular_streets() {
        let (net, index) = net_and_index();
        // A point at a segment's very start sits on an intersection where
        // perpendicular streets pass equally close; the course filter
        // must still pick a parallel segment.
        let sid = SegmentId(0);
        let seg = net.segment(sid);
        let a = net.node(seg.from);
        let b = net.node(seg.to);
        let dir = (b.x - a.x, b.y - a.y);
        let p = net.segment_point(sid, 0.02);
        let m = index.match_point_directed(&net, p, 30.0, Some(dir)).unwrap();
        let matched = net.segment(m.segment);
        let ma = net.node(matched.from);
        let mb = net.node(matched.to);
        let dot = (mb.x - ma.x) * dir.0 + (mb.y - ma.y) * dir.1;
        assert!(dot > 0.0, "matched a non-aligned segment {}", m.segment);
    }

    #[test]
    fn directed_match_none_when_only_opposing() {
        // One-way single-segment network: an opposing course matches
        // nothing.
        let mut b = crate::RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        b.add_segment(n0, n1, crate::RoadClass::Local, None, false).unwrap();
        let net = b.build().unwrap();
        let index = SegmentIndex::build(&net, 50.0);
        let p = net.segment_point(SegmentId(0), 0.5);
        assert!(index.match_point_directed(&net, p, 30.0, Some((-1.0, 0.0))).is_none());
        assert!(index.match_point_directed(&net, p, 30.0, Some((1.0, 0.0))).is_some());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        SegmentIndex::build(&net, 0.0);
    }
}
