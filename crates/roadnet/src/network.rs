//! The road-network graph model.

use crate::geometry::{BoundingBox, Point};
use crate::{NodeId, SegmentId};

/// Functional class of a road segment. Classes differ in free-flow speed
/// and in how strongly rush-hour congestion depresses them, mirroring the
/// arterial/side-street distinction running through the paper's related
/// work (e.g. the probe-penetration analysis of Ferman et al. \[13\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RoadClass {
    /// Major urban arterial: high free-flow speed, heavy rush-hour dips.
    Arterial,
    /// Collector road distributing traffic between arterials and locals.
    Collector,
    /// Local/side street: low speed, milder but noisier congestion.
    Local,
}

impl RoadClass {
    /// Typical free-flow speed for the class, km/h.
    pub fn default_free_flow_kmh(self) -> f64 {
        match self {
            RoadClass::Arterial => 60.0,
            RoadClass::Collector => 45.0,
            RoadClass::Local => 30.0,
        }
    }
}

/// A directed road segment between two neighbouring intersections — the
/// spatial unit of the paper's traffic condition matrix (one column per
/// segment).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Identifier; equals the segment's index in the network.
    pub id: SegmentId,
    /// Upstream intersection.
    pub from: NodeId,
    /// Downstream intersection.
    pub to: NodeId,
    /// Length in metres (straight-line between endpoints).
    pub length_m: f64,
    /// Functional class.
    pub class: RoadClass,
    /// Free-flow speed in km/h for this particular segment.
    pub free_flow_kmh: f64,
    /// Whether the segment runs through an "urban canyon" — tall-building
    /// corridors where the paper notes GPS/GPRS reports are frequently
    /// lost to attenuation and multipath.
    pub urban_canyon: bool,
}

impl Segment {
    /// Free-flow traversal time in seconds.
    pub fn free_flow_time_s(&self) -> f64 {
        self.length_m / (self.free_flow_kmh / 3.6)
    }
}

/// An immutable directed road network: intersections (nodes) with planar
/// positions, and directed segments between them.
///
/// Construct via [`crate::RoadNetworkBuilder`] or
/// [`crate::generator::generate_grid_city`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoadNetwork {
    pub(crate) nodes: Vec<Point>,
    pub(crate) segments: Vec<Segment>,
    /// Outgoing segment ids per node, for routing.
    pub(crate) out_segments: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    /// Number of intersections.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed segments (the `n` of the paper's m × n TCM when
    /// the whole network is estimated).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> Point {
        self.nodes[id.index()]
    }

    /// The segment with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// All segments in id order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Iterator over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Segments leaving `node`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn outgoing(&self, node: NodeId) -> &[SegmentId] {
        &self.out_segments[node.index()]
    }

    /// Start point of a segment.
    pub fn segment_start(&self, id: SegmentId) -> Point {
        self.node(self.segment(id).from)
    }

    /// End point of a segment.
    pub fn segment_end(&self, id: SegmentId) -> Point {
        self.node(self.segment(id).to)
    }

    /// Point at fraction `t ∈ [0, 1]` along the segment.
    pub fn segment_point(&self, id: SegmentId, t: f64) -> Point {
        self.segment_start(id).lerp(self.segment_end(id), t.clamp(0.0, 1.0))
    }

    /// Bounding box of all nodes; `None` for an empty network.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::from_points(self.nodes.iter().copied())
    }

    /// Ids of segments whose *from* node is the *to* node of `id` —
    /// i.e. the set of directly connected downstream continuations. Used
    /// by the matrix-selection study (Section 4.5, "Set 1" = directly
    /// connected segments).
    pub fn downstream_neighbors(&self, id: SegmentId) -> Vec<SegmentId> {
        self.outgoing(self.segment(id).to).to_vec()
    }

    /// Segments adjacent to `id` in the undirected sense: sharing either
    /// endpoint (excluding `id` itself and its reverse twin is *not*
    /// excluded — the reverse direction is a distinct traffic state).
    pub fn touching_segments(&self, id: SegmentId) -> Vec<SegmentId> {
        let seg = self.segment(id);
        let mut out: Vec<SegmentId> = self
            .segments
            .iter()
            .filter(|s| {
                s.id != id
                    && (s.from == seg.from
                        || s.from == seg.to
                        || s.to == seg.from
                        || s.to == seg.to)
            })
            .map(|s| s.id)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoadNetworkBuilder;

    fn tiny() -> RoadNetwork {
        // 0 --s0--> 1 --s1--> 2, plus 1 --s2--> 0
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(200.0, 0.0));
        b.add_segment(n0, n1, RoadClass::Local, None, false).unwrap();
        b.add_segment(n1, n2, RoadClass::Arterial, Some(50.0), true).unwrap();
        b.add_segment(n1, n0, RoadClass::Local, None, false).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let net = tiny();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.segment_count(), 3);
        let s1 = net.segment(SegmentId(1));
        assert_eq!(s1.from, NodeId(1));
        assert_eq!(s1.to, NodeId(2));
        assert_eq!(s1.free_flow_kmh, 50.0);
        assert!(s1.urban_canyon);
        assert!((s1.length_m - 100.0).abs() < 1e-9);
    }

    #[test]
    fn default_free_flow_by_class() {
        let net = tiny();
        let s0 = net.segment(SegmentId(0));
        assert_eq!(s0.free_flow_kmh, RoadClass::Local.default_free_flow_kmh());
        assert!(
            RoadClass::Arterial.default_free_flow_kmh() > RoadClass::Local.default_free_flow_kmh()
        );
    }

    #[test]
    fn free_flow_time() {
        let net = tiny();
        let s1 = net.segment(SegmentId(1));
        // 100 m at 50 km/h = 7.2 s.
        assert!((s1.free_flow_time_s() - 7.2).abs() < 1e-9);
    }

    #[test]
    fn outgoing_adjacency() {
        let net = tiny();
        assert_eq!(net.outgoing(NodeId(0)), &[SegmentId(0)]);
        let mut out1 = net.outgoing(NodeId(1)).to_vec();
        out1.sort();
        assert_eq!(out1, vec![SegmentId(1), SegmentId(2)]);
        assert!(net.outgoing(NodeId(2)).is_empty());
    }

    #[test]
    fn segment_geometry() {
        let net = tiny();
        assert_eq!(net.segment_start(SegmentId(0)), Point::new(0.0, 0.0));
        assert_eq!(net.segment_end(SegmentId(0)), Point::new(100.0, 0.0));
        assert_eq!(net.segment_point(SegmentId(0), 0.25), Point::new(25.0, 0.0));
        // Clamped.
        assert_eq!(net.segment_point(SegmentId(0), 2.0), Point::new(100.0, 0.0));
    }

    #[test]
    fn neighborhood_queries() {
        let net = tiny();
        let down = net.downstream_neighbors(SegmentId(0));
        let mut down_sorted = down.clone();
        down_sorted.sort();
        assert_eq!(down_sorted, vec![SegmentId(1), SegmentId(2)]);
        let touching = net.touching_segments(SegmentId(0));
        assert_eq!(touching, vec![SegmentId(1), SegmentId(2)]);
    }

    #[test]
    fn bounding_box_spans_nodes() {
        let net = tiny();
        let bb = net.bounding_box().unwrap();
        assert_eq!(bb.width(), 200.0);
        assert_eq!(bb.height(), 0.0);
    }
}
