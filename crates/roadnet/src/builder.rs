//! Programmatic construction of road networks with validation.

use crate::geometry::Point;
use crate::network::{RoadClass, RoadNetwork, Segment};
use crate::{NodeId, SegmentId};

/// Error produced while assembling a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkBuildError {
    /// A segment references a node id that was never added.
    UnknownNode(NodeId),
    /// A segment's endpoints coincide (self loops are not roads).
    SelfLoop(NodeId),
    /// A non-positive free-flow speed was supplied.
    InvalidSpeed(f64),
    /// Two nodes occupy the same position, producing a zero-length segment.
    ZeroLengthSegment(NodeId, NodeId),
    /// The finished network would be empty.
    Empty,
}

impl std::fmt::Display for NetworkBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkBuildError::UnknownNode(n) => write!(f, "segment references unknown node {n}"),
            NetworkBuildError::SelfLoop(n) => write!(f, "self-loop segment at node {n}"),
            NetworkBuildError::InvalidSpeed(s) => {
                write!(f, "free-flow speed must be positive, got {s}")
            }
            NetworkBuildError::ZeroLengthSegment(a, b) => {
                write!(f, "zero-length segment between coincident nodes {a} and {b}")
            }
            NetworkBuildError::Empty => write!(f, "network has no nodes or no segments"),
        }
    }
}

impl std::error::Error for NetworkBuildError {}

/// Incremental builder for [`RoadNetwork`].
///
/// # Example
///
/// ```
/// use roadnet::{RoadNetworkBuilder, RoadClass};
/// use roadnet::geometry::Point;
///
/// let mut b = RoadNetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(500.0, 0.0));
/// b.add_segment(a, c, RoadClass::Arterial, None, false)?;
/// b.add_segment(c, a, RoadClass::Arterial, None, false)?;
/// let net = b.build()?;
/// assert_eq!(net.segment_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection at `position`, returning its id.
    pub fn add_node(&mut self, position: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(position);
        id
    }

    /// Adds a directed segment from `from` to `to`.
    ///
    /// `free_flow_kmh` defaults to the class's typical speed when `None`.
    /// Returns the new segment's id.
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self loops, non-positive speeds, and
    /// coincident endpoints.
    pub fn add_segment(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: RoadClass,
        free_flow_kmh: Option<f64>,
        urban_canyon: bool,
    ) -> Result<SegmentId, NetworkBuildError> {
        if from.index() >= self.nodes.len() {
            return Err(NetworkBuildError::UnknownNode(from));
        }
        if to.index() >= self.nodes.len() {
            return Err(NetworkBuildError::UnknownNode(to));
        }
        if from == to {
            return Err(NetworkBuildError::SelfLoop(from));
        }
        let speed = free_flow_kmh.unwrap_or_else(|| class.default_free_flow_kmh());
        if speed <= 0.0 {
            return Err(NetworkBuildError::InvalidSpeed(speed));
        }
        let length_m = self.nodes[from.index()].distance(self.nodes[to.index()]);
        if length_m <= 0.0 {
            return Err(NetworkBuildError::ZeroLengthSegment(from, to));
        }
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment {
            id,
            from,
            to,
            length_m,
            class,
            free_flow_kmh: speed,
            urban_canyon,
        });
        Ok(id)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of segments added so far.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Finalizes the network, computing adjacency.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkBuildError::Empty`] when there are no nodes or no
    /// segments.
    pub fn build(self) -> Result<RoadNetwork, NetworkBuildError> {
        if self.nodes.is_empty() || self.segments.is_empty() {
            return Err(NetworkBuildError::Empty);
        }
        let mut out_segments = vec![Vec::new(); self.nodes.len()];
        for seg in &self.segments {
            out_segments[seg.from.index()].push(seg.id);
        }
        Ok(RoadNetwork { nodes: self.nodes, segments: self.segments, out_segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_node() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let err = b.add_segment(a, NodeId(5), RoadClass::Local, None, false).unwrap_err();
        assert_eq!(err, NetworkBuildError::UnknownNode(NodeId(5)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        assert_eq!(
            b.add_segment(a, a, RoadClass::Local, None, false).unwrap_err(),
            NetworkBuildError::SelfLoop(a)
        );
    }

    #[test]
    fn rejects_bad_speed() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        assert!(matches!(
            b.add_segment(a, c, RoadClass::Local, Some(0.0), false),
            Err(NetworkBuildError::InvalidSpeed(_))
        ));
        assert!(matches!(
            b.add_segment(a, c, RoadClass::Local, Some(-10.0), false),
            Err(NetworkBuildError::InvalidSpeed(_))
        ));
    }

    #[test]
    fn rejects_coincident_nodes() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(3.0, 3.0));
        let c = b.add_node(Point::new(3.0, 3.0));
        assert!(matches!(
            b.add_segment(a, c, RoadClass::Local, None, false),
            Err(NetworkBuildError::ZeroLengthSegment(_, _))
        ));
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(RoadNetworkBuilder::new().build().unwrap_err(), NetworkBuildError::Empty);
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        assert_eq!(b.build().unwrap_err(), NetworkBuildError::Empty);
    }

    #[test]
    fn builds_valid_network_with_adjacency() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.0, 300.0));
        let s0 = b.add_segment(a, c, RoadClass::Collector, None, false).unwrap();
        let s1 = b.add_segment(c, a, RoadClass::Collector, None, true).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.segment_count(), 2);
        let net = b.build().unwrap();
        assert_eq!(net.outgoing(a), &[s0]);
        assert_eq!(net.outgoing(c), &[s1]);
        assert!((net.segment(s0).length_m - 300.0).abs() < 1e-9);
        assert!(net.segment(s1).urban_canyon);
    }

    #[test]
    fn error_messages_are_informative() {
        let msgs = [
            NetworkBuildError::UnknownNode(NodeId(1)).to_string(),
            NetworkBuildError::SelfLoop(NodeId(2)).to_string(),
            NetworkBuildError::InvalidSpeed(-1.0).to_string(),
            NetworkBuildError::ZeroLengthSegment(NodeId(0), NodeId(1)).to_string(),
            NetworkBuildError::Empty.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
