//! Plain-text network interchange.
//!
//! Lets downstream users run the estimation stack on *real* road
//! networks (exported from OSM or a GIS) instead of the synthetic grid
//! city. The format is deliberately trivial — two CSV sections in one
//! file:
//!
//! ```text
//! [nodes]
//! id,x,y
//! 0,0.0,0.0
//! ...
//! [segments]
//! id,from,to,class,free_flow_kmh,urban_canyon
//! 0,0,1,arterial,60.0,0
//! ...
//! ```
//!
//! Node/segment ids must be dense and ascending from 0 (they index the
//! network tables); `class` is `arterial|collector|local`;
//! `urban_canyon` is `0|1`.

use crate::builder::{NetworkBuildError, RoadNetworkBuilder};
use crate::geometry::Point;
use crate::network::{RoadClass, RoadNetwork};
use std::io::{BufRead, Write};

/// Error reading a network file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The parsed data does not form a valid network.
    Build(NetworkBuildError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ReadError::Build(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<NetworkBuildError> for ReadError {
    fn from(e: NetworkBuildError) -> Self {
        ReadError::Build(e)
    }
}

fn class_name(class: RoadClass) -> &'static str {
    match class {
        RoadClass::Arterial => "arterial",
        RoadClass::Collector => "collector",
        RoadClass::Local => "local",
    }
}

fn parse_class(s: &str) -> Option<RoadClass> {
    match s {
        "arterial" => Some(RoadClass::Arterial),
        "collector" => Some(RoadClass::Collector),
        "local" => Some(RoadClass::Local),
        _ => None,
    }
}

/// Writes `net` in the interchange format.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_network<W: Write>(net: &RoadNetwork, mut w: W) -> std::io::Result<()> {
    writeln!(w, "[nodes]")?;
    writeln!(w, "id,x,y")?;
    for id in net.node_ids() {
        let p = net.node(id);
        writeln!(w, "{},{},{}", id.0, p.x, p.y)?;
    }
    writeln!(w, "[segments]")?;
    writeln!(w, "id,from,to,class,free_flow_kmh,urban_canyon")?;
    for seg in net.segments() {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            seg.id.0,
            seg.from.0,
            seg.to.0,
            class_name(seg.class),
            seg.free_flow_kmh,
            u8::from(seg.urban_canyon)
        )?;
    }
    Ok(())
}

#[derive(PartialEq)]
enum Section {
    Preamble,
    Nodes,
    Segments,
}

/// Reads a network in the interchange format.
///
/// # Errors
///
/// See [`ReadError`]; ids must appear dense and in order.
pub fn read_network<R: BufRead>(r: R) -> Result<RoadNetwork, ReadError> {
    let mut builder = RoadNetworkBuilder::new();
    let mut section = Section::Preamble;
    let mut expect_header = false;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[nodes]" => {
                section = Section::Nodes;
                expect_header = true;
                continue;
            }
            "[segments]" => {
                section = Section::Segments;
                expect_header = true;
                continue;
            }
            _ => {}
        }
        if expect_header {
            // Skip the column-name row.
            expect_header = false;
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let parse_err = |msg: String| ReadError::Parse { line: line_no, msg };
        match section {
            Section::Preamble => {
                return Err(parse_err("data before a [nodes]/[segments] section".into()))
            }
            Section::Nodes => {
                if fields.len() != 3 {
                    return Err(parse_err(format!("expected 3 node fields, got {}", fields.len())));
                }
                let id: u32 =
                    fields[0].parse().map_err(|e| parse_err(format!("bad node id: {e}")))?;
                if id as usize != builder.node_count() {
                    return Err(parse_err(format!(
                        "node ids must be dense and ascending; expected {}, got {id}",
                        builder.node_count()
                    )));
                }
                let x: f64 = fields[1].parse().map_err(|e| parse_err(format!("bad x: {e}")))?;
                let y: f64 = fields[2].parse().map_err(|e| parse_err(format!("bad y: {e}")))?;
                builder.add_node(Point::new(x, y));
            }
            Section::Segments => {
                if fields.len() != 6 {
                    return Err(parse_err(format!(
                        "expected 6 segment fields, got {}",
                        fields.len()
                    )));
                }
                let id: u32 =
                    fields[0].parse().map_err(|e| parse_err(format!("bad segment id: {e}")))?;
                if id as usize != builder.segment_count() {
                    return Err(parse_err(format!(
                        "segment ids must be dense and ascending; expected {}, got {id}",
                        builder.segment_count()
                    )));
                }
                let from: u32 =
                    fields[1].parse().map_err(|e| parse_err(format!("bad from: {e}")))?;
                let to: u32 = fields[2].parse().map_err(|e| parse_err(format!("bad to: {e}")))?;
                let class = parse_class(fields[3])
                    .ok_or_else(|| parse_err(format!("unknown road class '{}'", fields[3])))?;
                let speed: f64 =
                    fields[4].parse().map_err(|e| parse_err(format!("bad speed: {e}")))?;
                let canyon = match fields[5] {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(parse_err(format!("urban_canyon must be 0/1, got '{other}'")))
                    }
                };
                builder
                    .add_segment(crate::NodeId(from), crate::NodeId(to), class, Some(speed), canyon)
                    .map_err(ReadError::Build)?;
            }
        }
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_grid_city, GridCityConfig};

    #[test]
    fn round_trip_preserves_network() {
        let net = generate_grid_city(&GridCityConfig::small_test());
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let back = read_network(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.node_count(), net.node_count());
        assert_eq!(back.segment_count(), net.segment_count());
        for (a, b) in net.segments().iter().zip(back.segments()) {
            assert_eq!(a, b);
        }
        for id in net.node_ids() {
            assert_eq!(net.node(id), back.node(id));
        }
    }

    #[test]
    fn hand_written_file_parses() {
        let text = "\
# a comment
[nodes]
id,x,y
0,0.0,0.0
1,100.0,0.0

[segments]
id,from,to,class,free_flow_kmh,urban_canyon
0,0,1,arterial,55.5,1
1,1,0,local,30.0,0
";
        let net = read_network(std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.segment_count(), 2);
        let s0 = net.segment(crate::SegmentId(0));
        assert_eq!(s0.class, RoadClass::Arterial);
        assert!(s0.urban_canyon);
        assert_eq!(s0.free_flow_kmh, 55.5);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_class = "[nodes]\nid,x,y\n0,0,0\n1,1,0\n[segments]\nid,from,to,class,free_flow_kmh,urban_canyon\n0,0,1,motorway,60,0\n";
        match read_network(std::io::BufReader::new(bad_class.as_bytes())) {
            Err(ReadError::Parse { line: 7, msg }) => assert!(msg.contains("motorway")),
            other => panic!("expected parse error at line 7, got {other:?}"),
        }
        let sparse_ids = "[nodes]\nid,x,y\n0,0,0\n5,1,0\n";
        assert!(matches!(
            read_network(std::io::BufReader::new(sparse_ids.as_bytes())),
            Err(ReadError::Parse { line: 4, .. })
        ));
        let preamble = "0,0,0\n";
        assert!(matches!(
            read_network(std::io::BufReader::new(preamble.as_bytes())),
            Err(ReadError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_topology_rejected_via_builder() {
        let self_loop = "[nodes]\nid,x,y\n0,0,0\n[segments]\nid,from,to,class,free_flow_kmh,urban_canyon\n0,0,0,local,30,0\n";
        assert!(matches!(
            read_network(std::io::BufReader::new(self_loop.as_bytes())),
            Err(ReadError::Build(NetworkBuildError::SelfLoop(_)))
        ));
        let empty = "[nodes]\nid,x,y\n0,0,0\n";
        assert!(matches!(
            read_network(std::io::BufReader::new(empty.as_bytes())),
            Err(ReadError::Build(NetworkBuildError::Empty))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let e = ReadError::Parse { line: 3, msg: "oops".into() };
        assert!(e.to_string().contains("line 3"));
    }
}
