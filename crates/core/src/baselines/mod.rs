//! The three competing algorithms of Section 4.2.
//!
//! * [`knn`] — naïve K-nearest-neighbours imputation.
//! * [`corr_knn`] — correlation-weighted KNN over immediate neighbouring
//!   rows (Eqs. 20–21).
//! * [`mssa`] — multi-channel singular spectrum analysis gap filling
//!   (the method behind SEER \[40\]).

pub mod corr_knn;
pub mod knn;
pub mod mssa;

pub use corr_knn::correlation_knn_impute;
pub use knn::naive_knn_impute;
pub use mssa::{mssa_impute, EigBackend, MssaConfig, MssaError};
