//! Naïve K-nearest-neighbours imputation (Section 4.2.1).
//!
//! "The naïve KNN interpolates missing values by taking the average of
//! its nearest K neighbors in the measurement matrix." Proximity is
//! Manhattan distance on the (time-slot, segment) grid — the natural
//! spatiotemporal neighbourhood — searched in expanding rings so each
//! missing cell costs `O(ring area)` rather than `O(mn)`.

use linalg::Matrix;
use probes::Tcm;

/// Imputes every missing entry with the average of its `k` nearest
/// observed entries (Manhattan distance on the index grid, ties at equal
/// distance all included which can use slightly more than `k` values —
/// unweighted averaging makes this harmless). Observed entries are
/// copied through unchanged.
///
/// Cells with no observed entry anywhere in the matrix (impossible once
/// `tcm.observed_count() > 0`) would remain zero.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn naive_knn_impute(tcm: &Tcm, k: usize) -> Matrix {
    assert!(k > 0, "k must be positive");
    let (m, n) = tcm.values().shape();
    let mut out = tcm.values().clone();
    let max_ring = m + n; // worst case: the farthest corner

    for i in 0..m {
        for j in 0..n {
            if tcm.is_observed(i, j) {
                continue;
            }
            let mut acc = 0.0;
            let mut count = 0usize;
            // Expanding Manhattan rings; stop at the first ring that
            // completes the K once the ring is fully consumed (all cells
            // at one distance are equally "nearest").
            for ring in 1..=max_ring {
                let mut ring_acc = 0.0;
                let mut ring_count = 0usize;
                for (r, c) in manhattan_ring(i, j, ring, m, n) {
                    if let Some(v) = tcm.get(r, c) {
                        ring_acc += v;
                        ring_count += 1;
                    }
                }
                acc += ring_acc;
                count += ring_count;
                if count >= k {
                    break;
                }
            }
            if count > 0 {
                out.set(i, j, acc / count as f64);
            }
        }
    }
    out
}

/// Grid cells at exact Manhattan distance `ring` from `(i, j)`, clipped
/// to an `m × n` grid.
fn manhattan_ring(i: usize, j: usize, ring: usize, m: usize, n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(4 * ring);
    let (i, j, ring_i) = (i as isize, j as isize, ring as isize);
    for di in -ring_i..=ring_i {
        let dj_abs = ring_i - di.abs();
        let r = i + di;
        if r < 0 || r >= m as isize {
            continue;
        }
        for dj in [-dj_abs, dj_abs] {
            if dj_abs == 0 && dj == 0 && out.last() == Some(&(r as usize, (j) as usize)) {
                continue; // avoid double-counting the dj = 0 cell
            }
            let c = j + dj;
            if c < 0 || c >= n as isize {
                continue;
            }
            out.push((r as usize, c as usize));
            if dj_abs == 0 {
                break; // single cell on the axis
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probes::mask::random_mask;
    use rand::SeedableRng;

    #[test]
    fn observed_entries_unchanged() {
        let x = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        let out = naive_knn_impute(&tcm, 2);
        assert_eq!(out.get(0, 0), 10.0);
        assert_eq!(out.get(1, 0), 30.0);
        assert_eq!(out.get(1, 1), 40.0);
    }

    #[test]
    fn missing_cell_is_average_of_nearest() {
        let x = Matrix::from_rows(&[&[10.0, 0.0, 20.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        // Ring 1 around (0,1) holds (0,0) and (0,2), both observed.
        let out = naive_knn_impute(&tcm, 2);
        assert_eq!(out.get(0, 1), 15.0);
    }

    #[test]
    fn k_one_still_averages_full_ring() {
        // Ties at the same distance are all included by design.
        let x = Matrix::from_rows(&[&[10.0, 0.0, 30.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        let out = naive_knn_impute(&tcm, 1);
        assert_eq!(out.get(0, 1), 20.0);
    }

    #[test]
    fn searches_beyond_first_ring_when_sparse() {
        let x = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 12.0]]);
        let b = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let tcm = Tcm::new(x, b).unwrap();
        let out = naive_knn_impute(&tcm, 1);
        // The single observation propagates everywhere.
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(out.get(r, c), 12.0, "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn constant_matrix_recovered_exactly() {
        let truth = Matrix::filled(12, 10, 33.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mask = random_mask(12, 10, 0.3, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = naive_knn_impute(&tcm, 4);
        assert!(out.approx_eq(&truth, 1e-12));
    }

    #[test]
    fn smooth_matrix_small_error() {
        let truth = Matrix::from_fn(20, 20, |r, c| 30.0 + r as f64 * 0.5 + c as f64 * 0.3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mask = random_mask(20, 20, 0.5, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = naive_knn_impute(&tcm, 4);
        let err = crate::metrics::nmae_on_missing(&truth, &out, tcm.indicator());
        assert!(err < 0.03, "NMAE {err}");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let tcm = Tcm::complete(Matrix::filled(2, 2, 1.0));
        naive_knn_impute(&tcm, 0);
    }

    #[test]
    fn manhattan_ring_counts() {
        // Interior cell, ring fully inside: 4*ring cells.
        let cells = manhattan_ring(10, 10, 3, 21, 21);
        assert_eq!(cells.len(), 12);
        // All at exact distance 3 and unique.
        let mut seen = std::collections::HashSet::new();
        for (r, c) in cells {
            assert_eq!((r as isize - 10).abs() + (c as isize - 10).abs(), 3);
            assert!(seen.insert((r, c)));
        }
        // Corner cell: clipped.
        let corner = manhattan_ring(0, 0, 2, 5, 5);
        assert_eq!(corner.len(), 3); // (2,0), (1,1), (0,2)
    }
}
