//! Multi-channel Singular Spectrum Analysis gap filling (Section 4.2.3).
//!
//! The strongest baseline in the paper — the method behind SEER \[40\] —
//! "a data adaptive and nonparametric method based on the embedded
//! lag-covariance matrix", run as the iterative imputation procedure of
//! Kondrashov & Ghil that SEER adapts:
//!
//! 1. centre each channel (road segment) on its observed mean, zero the
//!    missing entries;
//! 2. embed all channels with a lag window `M` into a block trajectory
//!    matrix `T` (rows = sliding windows, columns = channel × lag);
//! 3. take the leading EOFs of the lag-covariance matrix `T Tᵀ`, project
//!    `T` onto them, and reconstruct the series by anti-diagonal
//!    averaging;
//! 4. overwrite the missing entries with the reconstruction and repeat
//!    until the filled values stabilize.
//!
//! The lag-covariance eigendecomposition is `O((m−M)³ + (m−M)² n M)` per
//! iteration, which is why the paper's Table 2 shows MSSA thousands of
//! times slower than every other method — our Criterion bench reproduces
//! exactly that gap.

use linalg::eig::symmetric_eigen;
use linalg::Matrix;
use probes::Tcm;

/// How MSSA extracts the leading EOFs of the lag-covariance matrix —
/// the cost driver behind the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EigBackend {
    /// Full Jacobi eigendecomposition (`O(w³)`), matching the classic
    /// MATLAB implementation the paper timed.
    #[default]
    FullJacobi,
    /// Subspace iteration for just the `components` leading pairs
    /// (`O(w² k)` per sweep) — the `mssa_eig` ablation showing how much
    /// of MSSA's slowness is solver choice rather than method.
    SubspaceIteration,
}

/// MSSA parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MssaConfig {
    /// Embedding window `M` in time slots; the paper sets `M = 24`
    /// following \[40\] (one day at hourly granularity).
    pub window: usize,
    /// Number of leading EOFs used in the reconstruction.
    pub components: usize,
    /// Maximum outer gap-filling iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the largest change of any filled entry
    /// between iterations (km/h).
    pub tol: f64,
    /// Eigen solver for the lag-covariance matrix.
    pub eig: EigBackend,
}

impl Default for MssaConfig {
    fn default() -> Self {
        Self {
            window: 24,
            components: 4,
            max_iterations: 15,
            tol: 0.05,
            eig: EigBackend::FullJacobi,
        }
    }
}

/// MSSA failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum MssaError {
    /// Window does not fit the series (`window == 0 || window > m`).
    InvalidWindow {
        /// Requested window.
        window: usize,
        /// Number of time slots available.
        slots: usize,
    },
    /// Component count is zero or exceeds the trajectory-matrix row count.
    InvalidComponents {
        /// Requested component count.
        components: usize,
        /// Upper bound (`m − window + 1`).
        max: usize,
    },
    /// No observed entries to anchor the reconstruction.
    NoObservations,
    /// The eigen decomposition failed (non-finite data).
    Eigen(String),
}

impl std::fmt::Display for MssaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MssaError::InvalidWindow { window, slots } => {
                write!(f, "window {window} invalid for {slots} time slots")
            }
            MssaError::InvalidComponents { components, max } => {
                write!(f, "component count {components} must be in 1..={max}")
            }
            MssaError::NoObservations => write!(f, "no observed entries"),
            MssaError::Eigen(e) => write!(f, "eigendecomposition failed: {e}"),
        }
    }
}

impl std::error::Error for MssaError {}

/// Runs MSSA iterative gap filling and returns the completed matrix
/// (observed entries passed through unchanged).
///
/// # Errors
///
/// See [`MssaError`].
pub fn mssa_impute(tcm: &Tcm, config: &MssaConfig) -> Result<Matrix, MssaError> {
    let (m, n) = tcm.values().shape();
    if config.window == 0 || config.window > m {
        return Err(MssaError::InvalidWindow { window: config.window, slots: m });
    }
    let windows = m - config.window + 1;
    if config.components == 0 || config.components > windows {
        return Err(MssaError::InvalidComponents { components: config.components, max: windows });
    }
    if tcm.observed_count() == 0 {
        return Err(MssaError::NoObservations);
    }

    // Column means over observed entries; empty columns fall back to the
    // global observed mean so centring never divides by zero.
    let all: Vec<f64> = tcm.observed_entries().map(|(_, _, v)| v).collect();
    let global_mean = all.iter().sum::<f64>() / all.len() as f64;
    let col_means: Vec<f64> = (0..n)
        .map(|j| {
            let vals: Vec<f64> = (0..m).filter_map(|i| tcm.get(i, j)).collect();
            if vals.is_empty() {
                global_mean
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect();

    // Centred working matrix; missing entries start at zero (== the
    // column mean in raw units).
    let mut work = Matrix::from_fn(m, n, |i, j| match tcm.get(i, j) {
        Some(v) => v - col_means[j],
        None => 0.0,
    });

    for _ in 0..config.max_iterations {
        let recon = reconstruct(&work, config.window, config.components, config.eig)?;
        let mut max_change = 0.0_f64;
        for i in 0..m {
            for j in 0..n {
                if !tcm.is_observed(i, j) {
                    let old = work.get(i, j);
                    let new = recon.get(i, j);
                    max_change = max_change.max((new - old).abs());
                    work.set(i, j, new);
                }
            }
        }
        if max_change < config.tol {
            break;
        }
    }

    // Un-centre and restore observed entries exactly.
    Ok(Matrix::from_fn(m, n, |i, j| match tcm.get(i, j) {
        Some(v) => v,
        None => work.get(i, j) + col_means[j],
    }))
}

/// One SSA reconstruction pass: embed, project onto leading EOFs,
/// anti-diagonal average back to series form.
fn reconstruct(
    work: &Matrix,
    window: usize,
    components: usize,
    backend: EigBackend,
) -> Result<Matrix, MssaError> {
    let (m, n) = work.shape();
    let windows = m - window + 1;

    // Trajectory matrix T: windows × (n * window), channel-major lags.
    let t = Matrix::from_fn(windows, n * window, |i, col| {
        let channel = col / window;
        let lag = col % window;
        work.get(i + lag, channel)
    });

    // Leading EOFs of the lag-covariance matrix T Tᵀ.
    let gram = t.matmul(&t.transpose()).expect("shapes agree");
    let u_k = match backend {
        EigBackend::FullJacobi => {
            let eig = symmetric_eigen(&gram).map_err(|e| MssaError::Eigen(e.to_string()))?;
            Matrix::from_fn(windows, components, |r, c| eig.eigenvectors.get(r, c))
        }
        EigBackend::SubspaceIteration => {
            let lead = linalg::power::leading_eigenpairs(&gram, components, 200, 1e-9)
                .map_err(|e| MssaError::Eigen(e.to_string()))?;
            lead.eigenvectors
        }
    };

    // Projection T_rec = U_k U_kᵀ T.
    let coeffs = u_k.transpose().matmul(&t).expect("shapes agree");
    let t_rec = u_k.matmul(&coeffs).expect("shapes agree");

    // Anti-diagonal averaging per channel.
    let mut sums = Matrix::zeros(m, n);
    let mut counts = Matrix::zeros(m, n);
    for i in 0..windows {
        for col in 0..n * window {
            let channel = col / window;
            let lag = col % window;
            let time = i + lag;
            sums.set(time, channel, sums.get(time, channel) + t_rec.get(i, col));
            counts.set(time, channel, counts.get(time, channel) + 1.0);
        }
    }
    Ok(sums.zip_with(&counts, |s, c| if c > 0.0 { s / c } else { 0.0 }).expect("same shape"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::nmae_on_missing;
    use probes::mask::random_mask;
    use rand::SeedableRng;

    fn periodic_truth(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |t, s| {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / 12.0;
            35.0 + 2.0 * (s % 5) as f64 + 9.0 * phase.sin() * (1.0 + 0.1 * (s % 3) as f64)
        })
    }

    fn cfg_small() -> MssaConfig {
        MssaConfig {
            window: 12,
            components: 3,
            max_iterations: 25,
            tol: 1e-3,
            ..MssaConfig::default()
        }
    }

    #[test]
    fn subspace_backend_matches_full_jacobi() {
        let truth = periodic_truth(72, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mask = random_mask(72, 8, 0.5, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let full = mssa_impute(&tcm, &cfg_small()).unwrap();
        let fast =
            mssa_impute(&tcm, &MssaConfig { eig: EigBackend::SubspaceIteration, ..cfg_small() })
                .unwrap();
        let full_err = nmae_on_missing(&truth, &full, tcm.indicator());
        let fast_err = nmae_on_missing(&truth, &fast, tcm.indicator());
        assert!(
            (full_err - fast_err).abs() < 0.02,
            "backends disagree: full {full_err} vs subspace {fast_err}"
        );
    }

    #[test]
    fn recovers_periodic_signal() {
        let truth = periodic_truth(72, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mask = random_mask(72, 8, 0.6, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = mssa_impute(&tcm, &cfg_small()).unwrap();
        let err = nmae_on_missing(&truth, &out, tcm.indicator());
        assert!(err < 0.06, "NMAE {err}");
    }

    #[test]
    fn observed_entries_exact() {
        let truth = periodic_truth(48, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mask = random_mask(48, 5, 0.5, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = mssa_impute(&tcm, &cfg_small()).unwrap();
        for (i, j, v) in tcm.observed_entries() {
            assert_eq!(out.get(i, j), v);
        }
    }

    #[test]
    fn beats_column_mean_on_periodic_data() {
        let truth = periodic_truth(96, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mask = random_mask(96, 6, 0.4, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = mssa_impute(&tcm, &cfg_small()).unwrap();
        // Column-mean baseline.
        let mut col_mean_est = truth.clone();
        for j in 0..6 {
            let vals: Vec<f64> = (0..96).filter_map(|i| tcm.get(i, j)).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            for i in 0..96 {
                if !tcm.is_observed(i, j) {
                    col_mean_est.set(i, j, mean);
                }
            }
        }
        let mssa_err = nmae_on_missing(&truth, &out, tcm.indicator());
        let mean_err = nmae_on_missing(&truth, &col_mean_est, tcm.indicator());
        assert!(mssa_err < 0.7 * mean_err, "mssa {mssa_err} vs mean {mean_err}");
    }

    #[test]
    fn window_validation() {
        let tcm = Tcm::complete(periodic_truth(20, 3));
        let bad = MssaConfig { window: 0, ..cfg_small() };
        assert!(matches!(mssa_impute(&tcm, &bad), Err(MssaError::InvalidWindow { .. })));
        let bad = MssaConfig { window: 21, ..cfg_small() };
        assert!(matches!(mssa_impute(&tcm, &bad), Err(MssaError::InvalidWindow { .. })));
    }

    #[test]
    fn component_validation() {
        let tcm = Tcm::complete(periodic_truth(20, 3));
        let bad = MssaConfig { window: 12, components: 0, ..cfg_small() };
        assert!(matches!(mssa_impute(&tcm, &bad), Err(MssaError::InvalidComponents { .. })));
        let bad = MssaConfig { window: 12, components: 10, ..cfg_small() };
        assert!(matches!(mssa_impute(&tcm, &bad), Err(MssaError::InvalidComponents { .. })));
    }

    #[test]
    fn no_observations_rejected() {
        let tcm = Tcm::complete(periodic_truth(24, 3)).masked(&Matrix::zeros(24, 3)).unwrap();
        assert!(matches!(mssa_impute(&tcm, &cfg_small()), Err(MssaError::NoObservations)));
    }

    #[test]
    fn complete_matrix_is_identity() {
        let truth = periodic_truth(36, 4);
        let tcm = Tcm::complete(truth.clone());
        let out = mssa_impute(&tcm, &cfg_small()).unwrap();
        assert_eq!(out, truth);
    }

    #[test]
    fn fully_missing_column_gets_filled() {
        let truth = periodic_truth(48, 5);
        let mut mask = Matrix::filled(48, 5, 1.0);
        for i in 0..48 {
            mask.set(i, 2, 0.0);
        }
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = mssa_impute(&tcm, &cfg_small()).unwrap();
        // Filled values are finite and in a sane speed range.
        for i in 0..48 {
            let v = out.get(i, 2);
            assert!(v.is_finite());
            assert!(v > 0.0 && v < 100.0, "value {v}");
        }
    }
}
