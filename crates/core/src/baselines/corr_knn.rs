//! Correlation-based KNN (Section 4.2.2, Eqs. 20–21).
//!
//! For a missing entry `x_{i,j}`, the candidate values are the same
//! column `j` in the immediate neighbouring rows `k = i±1, i±2` (adjacent
//! time slots), each weighted by the magnitude of the Pearson correlation
//! between row `i` and row `k`:
//!
//! ```text
//! w_{i,k} = |C_{i,k}| / Σ_{k = i±1, i±2} |C_{i,k}|
//! x_{i,j} = Σ_{k = i±1, i±2} x_{k,j} · w_{i,k}
//! ```
//!
//! On incomplete matrices, `C_{i,k}` is computed over the columns both
//! rows observe, and the candidate set is restricted to neighbour rows
//! that actually observe column `j`, with weights renormalized over the
//! available candidates. When no usable neighbour exists the estimate
//! falls back to the column mean, then the row mean, then the global
//! mean of observed entries.

use linalg::stats::pearson_masked;
use linalg::Matrix;
use probes::Tcm;

/// Imputes missing entries with the correlation-weighted average of the
/// `k_range` immediately adjacent rows (the paper uses `k_range = 2`,
/// i.e. `i±1, i±2`, giving K = 4 candidates).
///
/// # Panics
///
/// Panics when `k_range == 0`.
#[allow(clippy::needless_range_loop)] // parallel row/col mean tables
pub fn correlation_knn_impute(tcm: &Tcm, k_range: usize) -> Matrix {
    assert!(k_range > 0, "k_range must be positive");
    let (m, n) = tcm.values().shape();
    let mut out = tcm.values().clone();

    // Row masks and data for masked correlation.
    let row_mask: Vec<Vec<bool>> =
        (0..m).map(|i| (0..n).map(|j| tcm.is_observed(i, j)).collect()).collect();

    // Fallback means.
    let observed: Vec<(usize, usize, f64)> = tcm.observed_entries().collect();
    let global_mean = if observed.is_empty() {
        0.0
    } else {
        observed.iter().map(|&(_, _, v)| v).sum::<f64>() / observed.len() as f64
    };
    let col_mean: Vec<Option<f64>> = (0..n)
        .map(|j| {
            let vals: Vec<f64> = (0..m).filter_map(|i| tcm.get(i, j)).collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        })
        .collect();
    let row_mean: Vec<Option<f64>> = (0..m)
        .map(|i| {
            let vals: Vec<f64> = (0..n).filter_map(|j| tcm.get(i, j)).collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        })
        .collect();

    // Correlation cache: (i, k) pairs with |i - k| <= k_range.
    let mut corr_cache: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    let mut corr = |i: usize, k: usize, tcm: &Tcm| -> f64 {
        let key = if i < k { (i, k) } else { (k, i) };
        *corr_cache.entry(key).or_insert_with(|| {
            pearson_masked(tcm.values().row(i), tcm.values().row(k), &row_mask[i], &row_mask[k])
        })
    };

    for i in 0..m {
        for j in 0..n {
            if tcm.is_observed(i, j) {
                continue;
            }
            // Candidate neighbour rows observing column j.
            let mut weighted = 0.0;
            let mut weight_sum = 0.0;
            for d in 1..=k_range {
                for k in
                    [i.checked_sub(d), i.checked_add(d).filter(|&k| k < m)].into_iter().flatten()
                {
                    if let Some(v) = tcm.get(k, j) {
                        let w = corr(i, k, tcm).abs();
                        weighted += w * v;
                        weight_sum += w;
                    }
                }
            }
            let estimate = if weight_sum > 0.0 {
                weighted / weight_sum
            } else {
                col_mean[j].or(row_mean[i]).unwrap_or(global_mean)
            };
            out.set(i, j, estimate);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probes::mask::random_mask;
    use rand::SeedableRng;

    #[test]
    fn observed_entries_unchanged() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let tcm = Tcm::new(x.clone(), b).unwrap();
        let out = correlation_knn_impute(&tcm, 2);
        assert_eq!(out.get(0, 0), 1.0);
        assert_eq!(out.get(2, 1), 6.0);
    }

    #[test]
    fn correlated_rows_interpolate_missing_cell() {
        // Rows are shifted copies of each other: perfectly correlated.
        let x = Matrix::from_rows(&[
            &[10.0, 20.0, 30.0, 40.0],
            &[11.0, 21.0, 0.0, 41.0],
            &[12.0, 22.0, 32.0, 42.0],
        ]);
        let b = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0, 1.0],
        ]);
        let tcm = Tcm::new(x, b).unwrap();
        let out = correlation_knn_impute(&tcm, 2);
        // Neighbours (0,2)=30 and (2,2)=32 with equal |corr|=1 → 31.
        assert!((out.get(1, 2) - 31.0).abs() < 1e-9);
    }

    #[test]
    fn falls_back_to_column_mean_when_neighbours_missing() {
        // Column 1 observed only in row 4 (beyond +-2 of row 0).
        let mut x = Matrix::zeros(5, 2);
        let mut b = Matrix::zeros(5, 2);
        for i in 0..5 {
            x.set(i, 0, 10.0 + i as f64);
            b.set(i, 0, 1.0);
        }
        x.set(4, 1, 50.0);
        b.set(4, 1, 1.0);
        let tcm = Tcm::new(x, b).unwrap();
        let out = correlation_knn_impute(&tcm, 2);
        // (0,1): no neighbour rows 1,2 observe column 1 → column mean 50.
        assert_eq!(out.get(0, 1), 50.0);
    }

    #[test]
    fn smooth_low_rank_matrix_small_error() {
        let truth = Matrix::from_fn(48, 20, |t, s| {
            30.0 + 8.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin() + 0.4 * s as f64
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mask = random_mask(48, 20, 0.6, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        let out = correlation_knn_impute(&tcm, 2);
        let err = crate::metrics::nmae_on_missing(&truth, &out, tcm.indicator());
        assert!(err < 0.08, "NMAE {err}");
    }

    #[test]
    fn weights_follow_correlation_magnitude() {
        // Row 1 perfectly correlates with row 0 and is uncorrelated with
        // row 2 (constant row → correlation 0); the missing cell should
        // take row 0's value entirely.
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0, 100.0],
            &[2.0, 4.0, 6.0, 8.0, 0.0],
            &[5.0, 5.0, 5.0, 5.0, 7.0],
        ]);
        let b = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0, 1.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0, 1.0],
        ]);
        let tcm = Tcm::new(x, b).unwrap();
        let out = correlation_knn_impute(&tcm, 2);
        assert!((out.get(1, 4) - 100.0).abs() < 1e-9, "got {}", out.get(1, 4));
    }

    #[test]
    #[should_panic(expected = "k_range must be positive")]
    fn zero_range_panics() {
        let tcm = Tcm::complete(Matrix::filled(2, 2, 1.0));
        correlation_knn_impute(&tcm, 0);
    }
}
