//! Estimation-quality metrics.
//!
//! The paper's headline metric is the normalized mean absolute error
//! (Definition 2), computed **only over missing entries** (`m_{r,t} = 0`):
//!
//! ```text
//! ξ = Σ_{r,t: b=0} |x − x̂|  /  Σ_{r,t: b=0} |x|
//! ```
//!
//! Figs. 13–14 additionally study per-entry relative errors
//! `|x̂ − x| / x` and their CDFs.

use linalg::stats::{empirical_cdf, CdfPoint};
use linalg::Matrix;

/// NMAE over the entries where `indicator` is 0 (Definition 2).
///
/// Returns `0.0` when nothing is missing (a complete matrix needs no
/// estimation). `truth` must be the *complete* ground-truth matrix.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn nmae_on_missing(truth: &Matrix, estimate: &Matrix, indicator: &Matrix) -> f64 {
    assert_eq!(truth.shape(), estimate.shape(), "truth/estimate shape mismatch");
    assert_eq!(truth.shape(), indicator.shape(), "truth/indicator shape mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (r, c, b) in indicator.iter() {
        if b == 0.0 {
            num += (truth.get(r, c) - estimate.get(r, c)).abs();
            den += truth.get(r, c).abs();
        }
    }
    if den == 0.0 {
        return 0.0;
    }
    num / den
}

/// NMAE over an explicit set of evaluation cells (used by the GA's
/// validation split, where the "missing" cells are a held-out subset of
/// the observed ones).
///
/// # Panics
///
/// Panics on shape mismatches or out-of-bounds cells.
pub fn nmae_on_cells(truth: &Matrix, estimate: &Matrix, cells: &[(usize, usize)]) -> f64 {
    assert_eq!(truth.shape(), estimate.shape(), "truth/estimate shape mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for &(r, c) in cells {
        num += (truth.get(r, c) - estimate.get(r, c)).abs();
        den += truth.get(r, c).abs();
    }
    if den == 0.0 {
        return 0.0;
    }
    num / den
}

/// Per-entry relative errors `|x̂ − x| / x` over missing entries with
/// non-zero truth (the quantity of Figs. 13–14).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn relative_errors_on_missing(
    truth: &Matrix,
    estimate: &Matrix,
    indicator: &Matrix,
) -> Vec<f64> {
    assert_eq!(truth.shape(), estimate.shape(), "truth/estimate shape mismatch");
    assert_eq!(truth.shape(), indicator.shape(), "truth/indicator shape mismatch");
    let mut out = Vec::new();
    for (r, c, b) in indicator.iter() {
        if b == 0.0 {
            let x = truth.get(r, c);
            if x != 0.0 {
                out.push((estimate.get(r, c) - x).abs() / x.abs());
            }
        }
    }
    out
}

/// Empirical CDF of relative errors (one curve of Fig. 13/14).
pub fn relative_error_cdf(truth: &Matrix, estimate: &Matrix, indicator: &Matrix) -> Vec<CdfPoint> {
    empirical_cdf(&relative_errors_on_missing(truth, estimate, indicator))
}

/// Root mean square error over all entries (the Fig. 6 metric).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn rmse_full(truth: &Matrix, estimate: &Matrix) -> f64 {
    assert_eq!(truth.shape(), estimate.shape(), "shape mismatch");
    linalg::stats::rmse(truth.as_slice(), estimate.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmae_matches_hand_computation() {
        let truth = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        let est = Matrix::from_rows(&[&[12.0, 20.0], &[30.0, 36.0]]);
        let ind = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        // Missing cells: (0,0) err 2 over 10; (1,1) err 4 over 40.
        let e = nmae_on_missing(&truth, &est, &ind);
        assert!((e - 6.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn nmae_ignores_observed_cells() {
        let truth = Matrix::from_rows(&[&[10.0, 20.0]]);
        let est = Matrix::from_rows(&[&[999.0, 20.0]]);
        let ind = Matrix::from_rows(&[&[1.0, 0.0]]);
        // (0,0) observed: its huge error must not count.
        assert_eq!(nmae_on_missing(&truth, &est, &ind), 0.0);
    }

    #[test]
    fn nmae_perfect_estimate_is_zero() {
        let truth = Matrix::filled(3, 3, 25.0);
        let ind = Matrix::zeros(3, 3);
        assert_eq!(nmae_on_missing(&truth, &truth, &ind), 0.0);
    }

    #[test]
    fn nmae_nothing_missing_is_zero() {
        let truth = Matrix::filled(2, 2, 25.0);
        let est = Matrix::filled(2, 2, 99.0);
        let ind = Matrix::filled(2, 2, 1.0);
        assert_eq!(nmae_on_missing(&truth, &est, &ind), 0.0);
    }

    #[test]
    fn nmae_on_cells_subset() {
        let truth = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        let est = Matrix::from_rows(&[&[11.0, 22.0], &[33.0, 44.0]]);
        let e = nmae_on_cells(&truth, &est, &[(0, 0), (1, 1)]);
        assert!((e - 5.0 / 50.0).abs() < 1e-12);
        assert_eq!(nmae_on_cells(&truth, &est, &[]), 0.0);
    }

    #[test]
    fn relative_errors_skip_zero_truth() {
        let truth = Matrix::from_rows(&[&[0.0, 20.0]]);
        let est = Matrix::from_rows(&[&[5.0, 25.0]]);
        let ind = Matrix::from_rows(&[&[0.0, 0.0]]);
        let errs = relative_errors_on_missing(&truth, &est, &ind);
        assert_eq!(errs, vec![0.25]);
    }

    #[test]
    fn relative_error_cdf_monotone() {
        let truth = Matrix::from_fn(5, 5, |r, c| 10.0 + (r + c) as f64);
        let est = truth.map(|v| v * 1.1);
        let ind = Matrix::zeros(5, 5);
        let cdf = relative_error_cdf(&truth, &est, &ind);
        assert_eq!(cdf.len(), 25);
        assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
        // All relative errors are exactly 0.1.
        assert!(cdf.iter().all(|p| (p.value - 0.1).abs() < 1e-12));
    }

    #[test]
    fn rmse_full_known() {
        let a = Matrix::from_rows(&[&[0.0, 0.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((rmse_full(&a, &b) - (12.5_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        nmae_on_missing(&Matrix::zeros(2, 2), &Matrix::zeros(2, 3), &Matrix::zeros(2, 2));
    }
}
