//! Online (streaming) traffic estimation — the paper's Section 6 future
//! work: "the algorithm can be further extended to support processing of
//! online streaming probe data".
//!
//! The extension is a sliding-window scheme on top of Algorithm 1:
//!
//! * a window of the `W` most recent time slots is completed whenever a
//!   new slot closes;
//! * the segment-factor matrix `R̂` of the previous window warm-starts
//!   the next solve ([`crate::cs::complete_matrix_warm`]) — consecutive
//!   windows share `W − 1` rows, so a couple of sweeps suffice instead
//!   of the offline `t = 100`;
//! * the caller reads the freshest row of the estimate as the live
//!   traffic map.
//!
//! The data-plane companion (ingesting raw probe observations into the
//! sliding window) is `probes::stream::StreamingTcm`.

use crate::cs::{complete_matrix_warm, CompletionResult, CsConfig, CsError, SolveAxis};
use crate::error::{ConfigError, Error};
use crate::obs::ObsSource;
use linalg::lstsq::GramScratch;
use linalg::Matrix;
use probes::Tcm;

/// Sliding-window online estimator.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use probes::Tcm;
/// use traffic_cs::cs::CsConfig;
/// use traffic_cs::online::OnlineEstimator;
///
/// let cfg = CsConfig { rank: 2, lambda: 0.1, ..CsConfig::default() };
/// let mut online = OnlineEstimator::new(cfg, 8)?;
/// // Feed window snapshots (e.g. from probes::stream::StreamingTcm):
/// let window = Tcm::complete(Matrix::filled(8, 5, 30.0));
/// let est = online.update(&window)?;
/// assert_eq!(est.shape(), (8, 5));
/// # Ok::<(), traffic_cs::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEstimator {
    config: CsConfig,
    window_slots: usize,
    /// Segment factors of the previous solve, used as warm start.
    prev_r: Option<Matrix>,
    /// Number of solves performed.
    updates: u64,
    /// Total sweeps across all solves (for the warm-start speedup
    /// diagnostics).
    total_sweeps: u64,
    /// Cached factor state for the incremental dirty-set solve path;
    /// `None` until [`OnlineEstimator::prime_incremental`] runs after a
    /// full solve.
    delta: Option<DeltaState>,
}

/// Outcome of one [`OnlineEstimator::update_incremental`] delta pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalOutcome {
    /// Ridge objective (Eq. 16) of the updated factors. Computed from
    /// cached per-column fit and per-row norm partials; numerically the
    /// same quantity as the full sweep's objective but accumulated
    /// per-row, so the two can differ in the last ulps.
    pub objective: f64,
    /// Factor units (`L` rows plus `R` columns) actually re-solved.
    pub rows_resolved: usize,
}

/// Everything the incremental path caches between delta passes: the
/// current factor pair, the objective bookkeeping that lets a pass
/// re-score only re-solved units, and the carry-forward dirty rows.
///
/// The invariant the pass preserves (and the dirty-set pruning relies
/// on): every `L` row not in `pending_rows` satisfies
/// `l[i] == ridge(r, obs_row(i))` bit-for-bit — true after a full solve
/// (the best iterate's `L` step ran against its `R`), and maintained by
/// marking every row observed in a changed `R` column as pending.
#[derive(Debug, Clone)]
struct DeltaState {
    /// Absolute head slot the cached state corresponds to.
    head_slot: usize,
    /// Slot factors, `window_slots × rank`.
    l: Matrix,
    /// Segment factors, `num_segments × rank`.
    r: Matrix,
    /// Per-column Σ(pred − v)² over that column's observed entries, in
    /// ascending row order — the same per-column partials the full
    /// sweep's fused objective reduces in column order.
    fit_cols: Vec<f64>,
    /// Per-row ‖l_i‖² partials of the `L` regularizer term.
    l_row_norms: Vec<f64>,
    /// Per-row ‖r_j‖² partials of the `R` regularizer term.
    r_row_norms: Vec<f64>,
    /// Rows whose cached `L` is stale because a previous pass changed an
    /// `R` column they observe; re-solved by the next pass regardless of
    /// data dirt. Sorted ascending.
    pending_rows: Vec<usize>,
    /// Reused gather buffers (indices / values of one unit).
    idx_buf: Vec<u32>,
    val_buf: Vec<f64>,
    /// Candidate solution buffer, compared bitwise against the cached
    /// factor row to prune propagation.
    row_buf: Vec<f64>,
    scratch: GramScratch,
}

/// `Σ v²` of one factor row, the per-row regularizer partial.
fn row_norm_sq(row: &[f64]) -> f64 {
    row.iter().map(|v| v * v).sum()
}

/// `l_row · r_row` with ascending-`k` accumulation — the exact inner
/// loop of both [`Matrix::matmul_transpose_b`] (the full path's
/// `L Rᵀ` estimate) and the fused objective, so estimate cells written
/// incrementally carry the same bits the full recompute would produce.
fn dot_lr(l_row: &[f64], r_row: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in l_row.iter().zip(r_row) {
        acc += a * b;
    }
    acc
}

impl OnlineEstimator {
    /// Creates an online estimator completing `window_slots`-high
    /// windows with the given Algorithm-1 configuration.
    ///
    /// The configured `tol` should be positive so warm starts can
    /// actually terminate early; [`CsConfig::default`]'s tolerance works.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when `window_slots` is zero or the
    /// configuration fails [`CsConfig::builder`]'s validation — bad
    /// input is an error here, never a panic.
    pub fn new(config: CsConfig, window_slots: usize) -> Result<Self, Error> {
        if window_slots == 0 {
            return Err(
                ConfigError::new("window_slots", "window must hold at least one slot").into()
            );
        }
        config.validate()?;
        Ok(Self { config, window_slots, prev_r: None, updates: 0, total_sweeps: 0, delta: None })
    }

    /// Window height this estimator completes.
    pub fn window_slots(&self) -> usize {
        self.window_slots
    }

    /// The cached warm-start segment factors `R̂` of the previous solve,
    /// if any — the state a service checkpoints so a restarted process
    /// converges in a couple of sweeps instead of a cold `t = 100`.
    /// When the incremental path is primed, its (fresher) segment
    /// factors take precedence over the last full solve's.
    pub fn warm_factors(&self) -> Option<&Matrix> {
        self.delta.as_ref().map(|d| &d.r).or(self.prev_r.as_ref())
    }

    /// Restores warm-start factors saved by a previous process (see
    /// [`OnlineEstimator::warm_factors`]).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when `r`'s column count differs from the
    /// configured rank — factors from a different configuration would
    /// silently mis-seed every subsequent solve.
    pub fn set_warm_factors(&mut self, r: Matrix) -> Result<(), Error> {
        if r.cols() != self.config.rank || r.rows() == 0 {
            return Err(ConfigError::new(
                "warm_factors",
                format!(
                    "shape {}x{} incompatible with rank {}",
                    r.rows(),
                    r.cols(),
                    self.config.rank
                ),
            )
            .into());
        }
        self.prev_r = Some(r);
        // Restored factors describe a different trajectory than the
        // cached incremental state; drop it rather than mix the two.
        self.delta = None;
        Ok(())
    }

    /// The Algorithm-1 configuration in use.
    pub fn config(&self) -> &CsConfig {
        &self.config
    }

    /// Number of completed updates.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Mean ALS sweeps per update — with warm starts this drops well
    /// below the offline iteration budget after the first window.
    pub fn mean_sweeps(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        self.total_sweeps as f64 / self.updates as f64
    }

    /// Completes the current window snapshot, warm-starting from the
    /// previous window's factors, and returns the full estimate matrix
    /// (same shape as the window).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::cs::CsError`] as the unified [`enum@Error`];
    /// additionally rejects windows whose height differs from the
    /// configured `window_slots` or whose segment count changed since
    /// the previous update (the factor cache would be meaningless —
    /// call [`OnlineEstimator::reset`] when the segment set changes).
    pub fn update(&mut self, window: &Tcm) -> Result<Matrix, Error> {
        Ok(self.update_detailed(window)?.estimate)
    }

    /// Like [`OnlineEstimator::update`], returning full diagnostics.
    ///
    /// # Errors
    ///
    /// See [`OnlineEstimator::update`].
    pub fn update_detailed(&mut self, window: &Tcm) -> Result<CompletionResult, Error> {
        if window.num_slots() != self.window_slots {
            return Err(ConfigError::new(
                "window",
                format!(
                    "snapshot is {} slots high, estimator expects {}",
                    window.num_slots(),
                    self.window_slots
                ),
            )
            .into());
        }
        // A full sweep consumes the incremental state: warm-start from
        // its segment factors when present (they are fresher than the
        // last full solve's), then let the caller re-prime from this
        // solve's result.
        let delta_r = self.delta.take().map(|d| d.r);
        let warm = delta_r.as_ref().or(self.prev_r.as_ref());
        if let Some(prev) = warm {
            if prev.rows() != window.num_segments() {
                return Err(ConfigError::new(
                    "window",
                    format!(
                        "segment count changed from {} to {}; call reset()",
                        prev.rows(),
                        window.num_segments()
                    ),
                )
                .into());
            }
        }
        let result = match warm {
            Some(prev) => complete_matrix_warm(window, &self.config, prev)?,
            None => crate::cs::complete_matrix_detailed(window, &self.config)?,
        };
        self.prev_r = Some(result.factors.1.clone());
        self.updates += 1;
        self.total_sweeps += result.sweeps as u64;
        Ok(result)
    }

    /// Whether the incremental delta path is primed (a full solve ran
    /// and [`OnlineEstimator::prime_incremental`] cached its factors).
    pub fn incremental_primed(&self) -> bool {
        self.delta.is_some()
    }

    /// Absolute head slot the cached incremental state corresponds to,
    /// when primed — the service uses it to bound how far the window may
    /// slide before the delta pass must give way to a full sweep.
    pub fn incremental_head_slot(&self) -> Option<usize> {
        self.delta.as_ref().map(|d| d.head_slot)
    }

    /// Caches a full solve's factor pair (`l`: `window_slots × rank`,
    /// `r`: `num_segments × rank`) plus the objective bookkeeping the
    /// dirty-set delta passes need. Call right after a successful
    /// [`OnlineEstimator::update_detailed`] whose window headed at
    /// `head_slot` and whose observations `source` still describes.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when the factor shapes do not match `source`'s
    /// shape and the configured rank.
    pub fn prime_incremental(
        &mut self,
        source: &dyn ObsSource,
        head_slot: usize,
        l: &Matrix,
        r: &Matrix,
    ) -> Result<(), Error> {
        let (m, n) = source.shape();
        let rank = self.config.rank;
        if m != self.window_slots || l.shape() != (m, rank) || r.shape() != (n, rank) {
            return Err(ConfigError::new(
                "incremental",
                format!(
                    "factor shapes {}x{} / {}x{} incompatible with {}x{} window at rank {rank}",
                    l.rows(),
                    l.cols(),
                    r.rows(),
                    r.cols(),
                    self.window_slots,
                    n
                ),
            )
            .into());
        }
        let mut idx_buf = Vec::new();
        let mut val_buf = Vec::new();
        let mut fit_cols = vec![0.0; n];
        for (j, fit) in fit_cols.iter_mut().enumerate() {
            source.gather_col(j, &mut idx_buf, &mut val_buf);
            let r_row = r.row(j);
            let mut partial = 0.0;
            for (&i, &v) in idx_buf.iter().zip(&val_buf) {
                let pred = dot_lr(l.row(i as usize), r_row);
                partial += (pred - v) * (pred - v);
            }
            *fit = partial;
        }
        let l_row_norms = (0..m).map(|i| row_norm_sq(l.row(i))).collect();
        let r_row_norms = (0..n).map(|j| row_norm_sq(r.row(j))).collect();
        self.delta = Some(DeltaState {
            head_slot,
            l: l.clone(),
            r: r.clone(),
            fit_cols,
            l_row_norms,
            r_row_norms,
            pending_rows: Vec::new(),
            idx_buf,
            val_buf,
            row_buf: vec![0.0; rank],
            scratch: GramScratch::new(rank),
        });
        Ok(())
    }

    /// One O(delta) pass over the dirty set: re-solves the dirty `L`
    /// rows against the cached `R`, then the dirty `R` columns (the
    /// given ones plus every column observed in an `L` row whose bits
    /// changed) against the new `L`, updating `estimate` in place so it
    /// stays exactly `L Rᵀ` of the updated factors.
    ///
    /// `dirty_rows` are window-relative row indices and `dirty_cols`
    /// segment columns, both sorted ascending, describing every cell
    /// whose content changed since the state was primed (or since the
    /// previous delta pass) — including cells that left the window:
    /// `head_slot` may have advanced, in which case the cached state and
    /// `estimate` are shifted and the newly-entered bottom rows re-solved.
    ///
    /// Each unit solve runs the same [`GramScratch::solve_ridge_rows`]
    /// entry point as the full sweep, so a re-solved unit's bits equal
    /// what a full sweep in the same position would produce. The pass is
    /// sequential — dirty sets are small by contract (the service falls
    /// back to a full sweep past a dirty-fraction threshold), and a
    /// sequential pass is trivially identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when not primed, shapes mismatch, or the window
    /// slid backwards / past the cached state; solver failures surface
    /// as [`enum@Error`] exactly like the full path's. On error the
    /// cached state is dropped — the next solve must be a full sweep.
    pub fn update_incremental(
        &mut self,
        source: &dyn ObsSource,
        head_slot: usize,
        dirty_rows: &[usize],
        dirty_cols: &[u32],
        estimate: &mut Matrix,
    ) -> Result<IncrementalOutcome, Error> {
        match self.delta_pass(source, head_slot, dirty_rows, dirty_cols, estimate) {
            Ok(outcome) => {
                self.updates += 1;
                self.total_sweeps += 1;
                Ok(outcome)
            }
            Err(e) => {
                self.delta = None;
                Err(e)
            }
        }
    }

    fn delta_pass(
        &mut self,
        source: &dyn ObsSource,
        head_slot: usize,
        dirty_rows: &[usize],
        dirty_cols: &[u32],
        estimate: &mut Matrix,
    ) -> Result<IncrementalOutcome, Error> {
        let (m, n) = source.shape();
        let rank = self.config.rank;
        let lambda = self.config.lambda;
        let not_primed = || ConfigError::new("incremental", "delta state not primed");
        let state = self.delta.as_mut().ok_or_else(not_primed)?;
        if m != state.l.rows() || n != state.r.rows() || estimate.shape() != (m, n) {
            return Err(ConfigError::new(
                "incremental",
                format!(
                    "shape changed under the delta state: window {m}x{n}, estimate {}x{}",
                    estimate.rows(),
                    estimate.cols()
                ),
            )
            .into());
        }
        let shift = head_slot.checked_sub(state.head_slot).ok_or_else(|| {
            ConfigError::new("incremental", "window head moved backwards since priming")
        })?;
        if shift >= m {
            return Err(ConfigError::new(
                "incremental",
                "window advanced past the cached state; run a full sweep",
            )
            .into());
        }
        let DeltaState {
            head_slot: state_head,
            l,
            r,
            fit_cols,
            l_row_norms,
            r_row_norms,
            pending_rows,
            idx_buf,
            val_buf,
            row_buf,
            scratch,
        } = state;
        if shift > 0 {
            // Slide the cached state with the window: surviving slots
            // keep their factor rows (same content, new row index), the
            // newly-entered bottom rows start from zero and are
            // re-solved below.
            l.as_mut_slice().copy_within(shift * rank.., 0);
            l.as_mut_slice()[(m - shift) * rank..].fill(0.0);
            estimate.as_mut_slice().copy_within(shift * n.., 0);
            l_row_norms.copy_within(shift.., 0);
            l_row_norms[m - shift..].fill(0.0);
            pending_rows.retain_mut(|i| match i.checked_sub(shift) {
                Some(v) => {
                    *i = v;
                    true
                }
                None => false,
            });
            *state_head = head_slot;
        }
        // L step: dirty rows, carried-over pending rows, and the rows
        // that just entered the window.
        let mut rows_to_solve: Vec<usize> =
            Vec::with_capacity(dirty_rows.len() + pending_rows.len() + shift);
        rows_to_solve.extend_from_slice(dirty_rows);
        rows_to_solve.extend_from_slice(pending_rows);
        rows_to_solve.extend(m - shift..m);
        rows_to_solve.sort_unstable();
        rows_to_solve.dedup();
        if rows_to_solve.last().is_some_and(|&i| i >= m) {
            return Err(ConfigError::new("incremental", "dirty row out of range").into());
        }
        let mut changed_rows: Vec<usize> = Vec::new();
        let mut cols_to_solve: Vec<u32> = dirty_cols.to_vec();
        for &i in &rows_to_solve {
            source.gather_row(i, idx_buf, val_buf);
            scratch.solve_ridge_rows(r, idx_buf, val_buf, lambda, row_buf).map_err(|e| {
                CsError::Solve { axis: SolveAxis::Row, index: i, detail: e.to_string() }
            })?;
            let row = &mut l.as_mut_slice()[i * rank..(i + 1) * rank];
            let changed = row.iter().zip(row_buf.iter()).any(|(a, b)| a.to_bits() != b.to_bits());
            if changed {
                row.copy_from_slice(row_buf);
                l_row_norms[i] = row_norm_sq(row_buf);
                changed_rows.push(i);
                // Columns observing a changed row see a changed design
                // matrix: their ridge solutions must be refreshed.
                cols_to_solve.extend_from_slice(idx_buf);
            }
        }
        // R step against the updated L.
        cols_to_solve.sort_unstable();
        cols_to_solve.dedup();
        if cols_to_solve.last().is_some_and(|&j| j as usize >= n) {
            return Err(ConfigError::new("incremental", "dirty column out of range").into());
        }
        let mut changed_cols: Vec<u32> = Vec::new();
        let mut next_pending: Vec<usize> = Vec::new();
        for &j in &cols_to_solve {
            let j = j as usize;
            source.gather_col(j, idx_buf, val_buf);
            scratch.solve_ridge_rows(l, idx_buf, val_buf, lambda, row_buf).map_err(|e| {
                CsError::Solve { axis: SolveAxis::Column, index: j, detail: e.to_string() }
            })?;
            let row = &mut r.as_mut_slice()[j * rank..(j + 1) * rank];
            let changed = row.iter().zip(row_buf.iter()).any(|(a, b)| a.to_bits() != b.to_bits());
            if changed {
                row.copy_from_slice(row_buf);
                r_row_norms[j] = row_norm_sq(row_buf);
                changed_cols.push(j as u32);
                // The L rows observed in a changed column are now stale
                // relative to R; the next pass re-solves them.
                next_pending.extend(idx_buf.iter().map(|&i| i as usize));
            }
            // Re-score the column with the final factors (entries in
            // ascending row order, like the fused objective's partials).
            let r_row = &r.as_slice()[j * rank..(j + 1) * rank];
            let mut partial = 0.0;
            for (&i, &v) in idx_buf.iter().zip(val_buf.iter()) {
                let pred = dot_lr(l.row(i as usize), r_row);
                partial += (pred - v) * (pred - v);
            }
            fit_cols[j] = partial;
        }
        next_pending.sort_unstable();
        next_pending.dedup();
        *pending_rows = next_pending;
        // Estimate maintenance: rows with changed (or newly-entered) L
        // and columns with changed R are recomputed as l_i · r_j —
        // bit-identical to the full path's `matmul_transpose_b`.
        // Untouched cells keep bits that already equal that product.
        let est = estimate.as_mut_slice();
        for &i in changed_rows.iter().chain((m - shift..m).collect::<Vec<_>>().iter()) {
            let l_row = &l.as_slice()[i * rank..(i + 1) * rank];
            for j in 0..n {
                est[i * n + j] = dot_lr(l_row, &r.as_slice()[j * rank..(j + 1) * rank]);
            }
        }
        for &j in &changed_cols {
            let j = j as usize;
            let r_row = &r.as_slice()[j * rank..(j + 1) * rank];
            for i in 0..m {
                est[i * n + j] = dot_lr(&l.as_slice()[i * rank..(i + 1) * rank], r_row);
            }
        }
        // Objective from the cached partials: per-column fit folded in
        // column order plus the regularizer folded per row.
        let fit: f64 = fit_cols.iter().sum();
        let l2: f64 = l_row_norms.iter().sum();
        let r2: f64 = r_row_norms.iter().sum();
        Ok(IncrementalOutcome {
            objective: fit + lambda * (l2 + r2),
            rows_resolved: rows_to_solve.len() + cols_to_solve.len(),
        })
    }

    /// The freshest estimated traffic conditions: the last row of an
    /// update's estimate.
    pub fn latest_row(result: &CompletionResult) -> Vec<f64> {
        let m = result.estimate.rows();
        result.estimate.row(m - 1).to_vec()
    }

    /// Caps the per-solve sweep budget at `cap` (never raises it) — the
    /// sweep half of the serve watchdog: once a window has been solved
    /// cold, warm starts need only a few sweeps, so the service clamps
    /// the budget to bound worst-case latency per tick.
    pub fn limit_iterations(&mut self, cap: usize) {
        if cap >= 1 {
            self.config.iterations = self.config.iterations.min(cap);
        }
    }

    /// Forgets the cached factors (call when the segment set changes).
    pub fn reset(&mut self) {
        self.prev_r = None;
        self.delta = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::nmae_on_missing;
    use probes::mask::random_mask;
    use rand::SeedableRng;

    /// Rolling low-rank "traffic": daily factor + per-segment coupling.
    fn truth_rows(start_slot: usize, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |t, s| {
            let abs_t = (start_slot + t) as f64;
            let f = (2.0 * std::f64::consts::PI * abs_t / 24.0).sin();
            30.0 + 3.0 * (s % 5) as f64 + 9.0 * f * (0.6 + 0.05 * s as f64)
        })
    }

    fn window_at(
        start_slot: usize,
        m: usize,
        n: usize,
        integrity: f64,
        seed: u64,
    ) -> (Matrix, Tcm) {
        let truth = truth_rows(start_slot, m, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(m, n, integrity, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        (truth, tcm)
    }

    fn cfg() -> CsConfig {
        CsConfig { rank: 3, lambda: 0.2, tol: 1e-4, iterations: 100, ..CsConfig::default() }
    }

    #[test]
    fn streaming_estimates_track_truth() {
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        for step in 0..6 {
            let (truth, window) = window_at(step * 4, 24, 12, 0.3, 100 + step as u64);
            let result = online.update_detailed(&window).unwrap();
            let err = nmae_on_missing(&truth, &result.estimate, window.indicator());
            assert!(err < 0.12, "step {step}: NMAE {err}");
            let latest = OnlineEstimator::latest_row(&result);
            assert_eq!(latest.len(), 12);
            assert!(latest.iter().all(|v| v.is_finite()));
        }
        assert_eq!(online.updates(), 6);
    }

    #[test]
    fn warm_start_converges_faster() {
        // With a tight sweep budget, warm-starting from the neighbouring
        // window's factors must reach a (much) lower objective than a
        // cold random start — the property that makes the online scheme
        // cheap per slot.
        let budget = CsConfig { iterations: 3, tol: 0.0, ..cfg() };
        let (_, prev) = window_at(0, 24, 12, 0.4, 1);
        let prev_result = crate::cs::complete_matrix_detailed(&prev, &cfg()).unwrap();
        let (_, w) = window_at(1, 24, 12, 0.4, 2);
        let cold = crate::cs::complete_matrix_detailed(&w, &budget).unwrap();
        let warm = complete_matrix_warm(&w, &budget, &prev_result.factors.1).unwrap();
        assert!(
            warm.objective < 0.8 * cold.objective,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        // And the estimator accumulates sweep statistics.
        let mut online = OnlineEstimator::new(budget, 24).unwrap();
        online.update(&w).unwrap();
        assert!(online.mean_sweeps() > 0.0);
        assert_eq!(online.updates(), 1);
    }

    #[test]
    fn warm_quality_matches_cold() {
        let (truth, window) = window_at(10, 24, 12, 0.3, 7);
        // Cold solve.
        let cold = crate::cs::complete_matrix_detailed(&window, &cfg()).unwrap();
        // Warm solve from a neighbouring window's factors.
        let (_, prev) = window_at(9, 24, 12, 0.3, 6);
        let prev_result = crate::cs::complete_matrix_detailed(&prev, &cfg()).unwrap();
        let warm = complete_matrix_warm(&window, &cfg(), &prev_result.factors.1).unwrap();
        let cold_err = nmae_on_missing(&truth, &cold.estimate, window.indicator());
        let warm_err = nmae_on_missing(&truth, &warm.estimate, window.indicator());
        assert!(warm_err < cold_err + 0.02, "warm {warm_err} vs cold {cold_err}");
    }

    #[test]
    fn constructor_and_factor_restore_validate_input() {
        use crate::error::Error;
        // Bad inputs are errors, never panics.
        assert!(matches!(OnlineEstimator::new(cfg(), 0), Err(Error::Config(_))));
        let bad = CsConfig { rank: 0, ..cfg() };
        assert!(matches!(OnlineEstimator::new(bad, 24), Err(Error::Config(_))));
        // Warm-factor round trip through the checkpoint accessors.
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        assert!(online.warm_factors().is_none());
        let (_, w) = window_at(0, 24, 12, 0.4, 11);
        online.update(&w).unwrap();
        let saved = online.warm_factors().unwrap().clone();
        let mut fresh = OnlineEstimator::new(cfg(), 24).unwrap();
        fresh.set_warm_factors(saved).unwrap();
        assert_eq!(fresh.warm_factors(), online.warm_factors());
        // Factors with the wrong rank are rejected.
        assert!(fresh.set_warm_factors(Matrix::zeros(12, 7)).is_err());
    }

    #[test]
    fn wrong_window_height_rejected() {
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        let (_, w) = window_at(0, 12, 8, 0.5, 2);
        assert!(online.update(&w).is_err());
    }

    #[test]
    fn segment_count_change_requires_reset() {
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        let (_, w12) = window_at(0, 24, 12, 0.4, 3);
        online.update(&w12).unwrap();
        let (_, w8) = window_at(1, 24, 8, 0.4, 4);
        assert!(online.update(&w8).is_err(), "stale factors must be rejected");
        online.reset();
        assert!(online.update(&w8).is_ok());
    }

    #[test]
    fn warm_start_shape_validated() {
        let (_, w) = window_at(0, 24, 12, 0.4, 5);
        let bad_r = Matrix::zeros(5, 3);
        assert!(complete_matrix_warm(&w, &cfg(), &bad_r).is_err());
    }

    #[test]
    fn end_to_end_with_streaming_tcm() {
        // Drive the estimator from probes::stream::StreamingTcm — the
        // full online pipeline of the paper's future-work sketch.
        use probes::stream::StreamingTcm;
        let n = 10;
        let mut stream = StreamingTcm::new(0, 60, 24, n).unwrap();
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::RngExt;
        let mut last_err = None;
        for slot in 0..48usize {
            let truth_row = truth_rows(slot, 1, n);
            // A few random probes per slot.
            for _ in 0..6 {
                let seg = rng.random_range(0..n);
                let speed = truth_row.get(0, seg) * rng.random_range(0.95..1.05);
                stream.observe(slot as u64 * 60 + rng.random_range(0..60u64), seg, speed).unwrap();
            }
            if slot >= 23 {
                let window = stream.snapshot();
                let result = online.update_detailed(&window).unwrap();
                // Compare against the rolling truth for this window.
                let truth = truth_rows(slot + 1 - 24, 24, n);
                let err = nmae_on_missing(&truth, &result.estimate, window.indicator());
                last_err = Some(err);
            }
        }
        let err = last_err.expect("at least one online update ran");
        assert!(err < 0.15, "online pipeline NMAE {err}");
    }

    /// Streaming fixture for the incremental tests: a 6-slot, 10-segment
    /// window pre-filled with deterministic reports, plus the estimator
    /// primed from a full solve over it.
    fn primed_fixture() -> (probes::stream::StreamingTcm, OnlineEstimator, Matrix) {
        use probes::stream::StreamingTcm;
        let (m, n) = (6usize, 10usize);
        let mut stream = StreamingTcm::new(0, 60, m, n).unwrap();
        for slot in 0..m {
            for k in 0..7usize {
                let seg = (slot * 3 + k * 2) % n;
                let speed = 25.0 + (slot * n + seg) as f64 * 0.5 + k as f64;
                stream.observe(slot as u64 * 60 + k as u64, seg, speed).unwrap();
            }
        }
        let mut online = OnlineEstimator::new(cfg(), m).unwrap();
        let result = online.update_detailed(&stream.snapshot()).unwrap();
        online
            .prime_incremental(&stream, stream.head_slot(), &result.factors.0, &result.factors.1)
            .unwrap();
        (stream, online, result.estimate)
    }

    /// Dirty cells for round `round` of the incremental tests: a couple
    /// of in-window updates plus, on odd rounds, a report one slot past
    /// the head so the window slides.
    fn mutate_round(
        stream: &mut probes::stream::StreamingTcm,
        round: usize,
    ) -> (Vec<usize>, Vec<u32>) {
        let n = stream.num_segments();
        let m = stream.window_slots();
        let mut dirty_rows = Vec::new();
        let mut dirty_cols: Vec<u32> = Vec::new();
        if round % 2 == 1 {
            // Advance the head by one slot: every column observed in
            // the evicted tail row changes content.
            let (_, counts) = stream.row_raw(0);
            dirty_cols
                .extend(counts.iter().enumerate().filter(|(_, &c)| c > 0.0).map(|(j, _)| j as u32));
            let slot = stream.head_slot() + 1;
            stream.observe(slot as u64 * 60, (round * 3) % n, 40.0 + round as f64).unwrap();
            dirty_rows.push(m - 1);
            dirty_cols.push(((round * 3) % n) as u32);
        }
        for k in 0..3usize {
            let row = (round + k * 2) % (m - 1);
            let seg = (round * 5 + k * 3) % n;
            let ts = (stream.tail_slot() + row) as u64 * 60 + 30;
            stream.observe(ts, seg, 31.0 + (round + k) as f64).unwrap();
            dirty_rows.push(row);
            dirty_cols.push(seg as u32);
        }
        dirty_rows.sort_unstable();
        dirty_rows.dedup();
        dirty_cols.sort_unstable();
        dirty_cols.dedup();
        (dirty_rows, dirty_cols)
    }

    #[test]
    fn incremental_estimate_stays_consistent_with_factors() {
        // After every delta pass — including ones where the window
        // slides — the maintained estimate must equal L·Rᵀ of the
        // cached factors bit for bit, the invariant that makes the
        // incremental path indistinguishable from a from-factors
        // materialization downstream.
        let (mut stream, mut online, mut estimate) = primed_fixture();
        assert!(online.incremental_primed());
        for round in 0..6 {
            let (dirty_rows, dirty_cols) = mutate_round(&mut stream, round);
            let outcome = online
                .update_incremental(
                    &stream,
                    stream.head_slot(),
                    &dirty_rows,
                    &dirty_cols,
                    &mut estimate,
                )
                .unwrap();
            assert!(outcome.rows_resolved > 0, "round {round} resolved nothing");
            assert!(outcome.objective.is_finite());
            let delta = online.delta.as_ref().expect("still primed");
            let product = delta.l.matmul_transpose_b(&delta.r).unwrap();
            assert_eq!(
                estimate.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                product.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "round {round}: estimate drifted from L·Rᵀ"
            );
        }
    }

    #[test]
    fn incremental_row_set_parity() {
        // Memoization soundness on the L axis: passing only the dirty
        // rows must leave the cached state bitwise identical to a pass
        // that re-solves every row — clean rows are already consistent
        // with R, so re-solving them is a no-op. (No analogous claim
        // holds for columns: the stored R of a full solve is consistent
        // with the pre-sweep L, so the delta pass always re-solves the
        // affected columns.)
        let (mut stream, mut online, mut estimate) = primed_fixture();
        let m = stream.window_slots();
        let mut online_all = online.clone();
        let mut estimate_all = estimate.clone();
        for round in 0..6 {
            let (dirty_rows, dirty_cols) = mutate_round(&mut stream, round);
            let all_rows: Vec<usize> = (0..m).collect();
            let head = stream.head_slot();
            let a = online
                .update_incremental(&stream, head, &dirty_rows, &dirty_cols, &mut estimate)
                .unwrap();
            let b = online_all
                .update_incremental(&stream, head, &all_rows, &dirty_cols, &mut estimate_all)
                .unwrap();
            let (da, db) = (online.delta.as_ref().unwrap(), online_all.delta.as_ref().unwrap());
            assert_eq!(
                da.l.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                db.l.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "round {round}: L diverged"
            );
            assert_eq!(
                da.r.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                db.r.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "round {round}: R diverged"
            );
            assert_eq!(
                estimate.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                estimate_all.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "round {round}: estimates diverged"
            );
            assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "round {round}");
            assert!(a.rows_resolved <= b.rows_resolved);
        }
    }

    #[test]
    fn incremental_guards_and_error_paths() {
        let (stream, mut online, mut estimate) = primed_fixture();
        let head = stream.head_slot();
        // Not primed → config error, and the estimator stays usable.
        let mut cold = OnlineEstimator::new(cfg(), 6).unwrap();
        assert!(cold.update_incremental(&stream, head, &[0], &[0], &mut estimate).is_err());
        // Head moving backwards or past the window invalidates the
        // cached state: the next solve must be a full sweep.
        assert!(online.update_incremental(&stream, head + 6, &[0], &[0], &mut estimate).is_err());
        assert!(!online.incremental_primed());
        // Restoring checkpoint factors also drops the delta state.
        let (mut stream2, mut online2, _) = primed_fixture();
        assert!(online2.incremental_primed());
        assert_eq!(online2.incremental_head_slot(), Some(stream2.head_slot()));
        let saved = online2.warm_factors().unwrap().clone();
        online2.set_warm_factors(saved).unwrap();
        assert!(!online2.incremental_primed());
        // As does reset().
        let _ = mutate_round(&mut stream2, 0);
        let result = online2.update_detailed(&stream2.snapshot()).unwrap();
        online2
            .prime_incremental(&stream2, stream2.head_slot(), &result.factors.0, &result.factors.1)
            .unwrap();
        assert!(online2.incremental_primed());
        online2.reset();
        assert!(!online2.incremental_primed());
    }
}
