//! Online (streaming) traffic estimation — the paper's Section 6 future
//! work: "the algorithm can be further extended to support processing of
//! online streaming probe data".
//!
//! The extension is a sliding-window scheme on top of Algorithm 1:
//!
//! * a window of the `W` most recent time slots is completed whenever a
//!   new slot closes;
//! * the segment-factor matrix `R̂` of the previous window warm-starts
//!   the next solve ([`crate::cs::complete_matrix_warm`]) — consecutive
//!   windows share `W − 1` rows, so a couple of sweeps suffice instead
//!   of the offline `t = 100`;
//! * the caller reads the freshest row of the estimate as the live
//!   traffic map.
//!
//! The data-plane companion (ingesting raw probe observations into the
//! sliding window) is `probes::stream::StreamingTcm`.

use crate::cs::{complete_matrix_warm, CompletionResult, CsConfig};
use crate::error::{ConfigError, Error};
use linalg::Matrix;
use probes::Tcm;

/// Sliding-window online estimator.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use probes::Tcm;
/// use traffic_cs::cs::CsConfig;
/// use traffic_cs::online::OnlineEstimator;
///
/// let cfg = CsConfig { rank: 2, lambda: 0.1, ..CsConfig::default() };
/// let mut online = OnlineEstimator::new(cfg, 8)?;
/// // Feed window snapshots (e.g. from probes::stream::StreamingTcm):
/// let window = Tcm::complete(Matrix::filled(8, 5, 30.0));
/// let est = online.update(&window)?;
/// assert_eq!(est.shape(), (8, 5));
/// # Ok::<(), traffic_cs::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEstimator {
    config: CsConfig,
    window_slots: usize,
    /// Segment factors of the previous solve, used as warm start.
    prev_r: Option<Matrix>,
    /// Number of solves performed.
    updates: u64,
    /// Total sweeps across all solves (for the warm-start speedup
    /// diagnostics).
    total_sweeps: u64,
}

impl OnlineEstimator {
    /// Creates an online estimator completing `window_slots`-high
    /// windows with the given Algorithm-1 configuration.
    ///
    /// The configured `tol` should be positive so warm starts can
    /// actually terminate early; [`CsConfig::default`]'s tolerance works.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when `window_slots` is zero or the
    /// configuration fails [`CsConfig::builder`]'s validation — bad
    /// input is an error here, never a panic.
    pub fn new(config: CsConfig, window_slots: usize) -> Result<Self, Error> {
        if window_slots == 0 {
            return Err(
                ConfigError::new("window_slots", "window must hold at least one slot").into()
            );
        }
        config.validate()?;
        Ok(Self { config, window_slots, prev_r: None, updates: 0, total_sweeps: 0 })
    }

    /// Window height this estimator completes.
    pub fn window_slots(&self) -> usize {
        self.window_slots
    }

    /// The cached warm-start segment factors `R̂` of the previous solve,
    /// if any — the state a service checkpoints so a restarted process
    /// converges in a couple of sweeps instead of a cold `t = 100`.
    pub fn warm_factors(&self) -> Option<&Matrix> {
        self.prev_r.as_ref()
    }

    /// Restores warm-start factors saved by a previous process (see
    /// [`OnlineEstimator::warm_factors`]).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when `r`'s column count differs from the
    /// configured rank — factors from a different configuration would
    /// silently mis-seed every subsequent solve.
    pub fn set_warm_factors(&mut self, r: Matrix) -> Result<(), Error> {
        if r.cols() != self.config.rank || r.rows() == 0 {
            return Err(ConfigError::new(
                "warm_factors",
                format!(
                    "shape {}x{} incompatible with rank {}",
                    r.rows(),
                    r.cols(),
                    self.config.rank
                ),
            )
            .into());
        }
        self.prev_r = Some(r);
        Ok(())
    }

    /// The Algorithm-1 configuration in use.
    pub fn config(&self) -> &CsConfig {
        &self.config
    }

    /// Number of completed updates.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Mean ALS sweeps per update — with warm starts this drops well
    /// below the offline iteration budget after the first window.
    pub fn mean_sweeps(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        self.total_sweeps as f64 / self.updates as f64
    }

    /// Completes the current window snapshot, warm-starting from the
    /// previous window's factors, and returns the full estimate matrix
    /// (same shape as the window).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::cs::CsError`] as the unified [`enum@Error`];
    /// additionally rejects windows whose height differs from the
    /// configured `window_slots` or whose segment count changed since
    /// the previous update (the factor cache would be meaningless —
    /// call [`OnlineEstimator::reset`] when the segment set changes).
    pub fn update(&mut self, window: &Tcm) -> Result<Matrix, Error> {
        Ok(self.update_detailed(window)?.estimate)
    }

    /// Like [`OnlineEstimator::update`], returning full diagnostics.
    ///
    /// # Errors
    ///
    /// See [`OnlineEstimator::update`].
    pub fn update_detailed(&mut self, window: &Tcm) -> Result<CompletionResult, Error> {
        if window.num_slots() != self.window_slots {
            return Err(ConfigError::new(
                "window",
                format!(
                    "snapshot is {} slots high, estimator expects {}",
                    window.num_slots(),
                    self.window_slots
                ),
            )
            .into());
        }
        if let Some(prev) = &self.prev_r {
            if prev.rows() != window.num_segments() {
                return Err(ConfigError::new(
                    "window",
                    format!(
                        "segment count changed from {} to {}; call reset()",
                        prev.rows(),
                        window.num_segments()
                    ),
                )
                .into());
            }
        }
        let result = match &self.prev_r {
            Some(prev) => complete_matrix_warm(window, &self.config, prev)?,
            None => crate::cs::complete_matrix_detailed(window, &self.config)?,
        };
        self.prev_r = Some(result.factors.1.clone());
        self.updates += 1;
        self.total_sweeps += result.sweeps as u64;
        Ok(result)
    }

    /// The freshest estimated traffic conditions: the last row of an
    /// update's estimate.
    pub fn latest_row(result: &CompletionResult) -> Vec<f64> {
        let m = result.estimate.rows();
        result.estimate.row(m - 1).to_vec()
    }

    /// Caps the per-solve sweep budget at `cap` (never raises it) — the
    /// sweep half of the serve watchdog: once a window has been solved
    /// cold, warm starts need only a few sweeps, so the service clamps
    /// the budget to bound worst-case latency per tick.
    pub fn limit_iterations(&mut self, cap: usize) {
        if cap >= 1 {
            self.config.iterations = self.config.iterations.min(cap);
        }
    }

    /// Forgets the cached factors (call when the segment set changes).
    pub fn reset(&mut self) {
        self.prev_r = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::nmae_on_missing;
    use probes::mask::random_mask;
    use rand::SeedableRng;

    /// Rolling low-rank "traffic": daily factor + per-segment coupling.
    fn truth_rows(start_slot: usize, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |t, s| {
            let abs_t = (start_slot + t) as f64;
            let f = (2.0 * std::f64::consts::PI * abs_t / 24.0).sin();
            30.0 + 3.0 * (s % 5) as f64 + 9.0 * f * (0.6 + 0.05 * s as f64)
        })
    }

    fn window_at(
        start_slot: usize,
        m: usize,
        n: usize,
        integrity: f64,
        seed: u64,
    ) -> (Matrix, Tcm) {
        let truth = truth_rows(start_slot, m, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(m, n, integrity, &mut rng);
        let tcm = Tcm::complete(truth.clone()).masked(&mask).unwrap();
        (truth, tcm)
    }

    fn cfg() -> CsConfig {
        CsConfig { rank: 3, lambda: 0.2, tol: 1e-4, iterations: 100, ..CsConfig::default() }
    }

    #[test]
    fn streaming_estimates_track_truth() {
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        for step in 0..6 {
            let (truth, window) = window_at(step * 4, 24, 12, 0.3, 100 + step as u64);
            let result = online.update_detailed(&window).unwrap();
            let err = nmae_on_missing(&truth, &result.estimate, window.indicator());
            assert!(err < 0.12, "step {step}: NMAE {err}");
            let latest = OnlineEstimator::latest_row(&result);
            assert_eq!(latest.len(), 12);
            assert!(latest.iter().all(|v| v.is_finite()));
        }
        assert_eq!(online.updates(), 6);
    }

    #[test]
    fn warm_start_converges_faster() {
        // With a tight sweep budget, warm-starting from the neighbouring
        // window's factors must reach a (much) lower objective than a
        // cold random start — the property that makes the online scheme
        // cheap per slot.
        let budget = CsConfig { iterations: 3, tol: 0.0, ..cfg() };
        let (_, prev) = window_at(0, 24, 12, 0.4, 1);
        let prev_result = crate::cs::complete_matrix_detailed(&prev, &cfg()).unwrap();
        let (_, w) = window_at(1, 24, 12, 0.4, 2);
        let cold = crate::cs::complete_matrix_detailed(&w, &budget).unwrap();
        let warm = complete_matrix_warm(&w, &budget, &prev_result.factors.1).unwrap();
        assert!(
            warm.objective < 0.8 * cold.objective,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        // And the estimator accumulates sweep statistics.
        let mut online = OnlineEstimator::new(budget, 24).unwrap();
        online.update(&w).unwrap();
        assert!(online.mean_sweeps() > 0.0);
        assert_eq!(online.updates(), 1);
    }

    #[test]
    fn warm_quality_matches_cold() {
        let (truth, window) = window_at(10, 24, 12, 0.3, 7);
        // Cold solve.
        let cold = crate::cs::complete_matrix_detailed(&window, &cfg()).unwrap();
        // Warm solve from a neighbouring window's factors.
        let (_, prev) = window_at(9, 24, 12, 0.3, 6);
        let prev_result = crate::cs::complete_matrix_detailed(&prev, &cfg()).unwrap();
        let warm = complete_matrix_warm(&window, &cfg(), &prev_result.factors.1).unwrap();
        let cold_err = nmae_on_missing(&truth, &cold.estimate, window.indicator());
        let warm_err = nmae_on_missing(&truth, &warm.estimate, window.indicator());
        assert!(warm_err < cold_err + 0.02, "warm {warm_err} vs cold {cold_err}");
    }

    #[test]
    fn constructor_and_factor_restore_validate_input() {
        use crate::error::Error;
        // Bad inputs are errors, never panics.
        assert!(matches!(OnlineEstimator::new(cfg(), 0), Err(Error::Config(_))));
        let bad = CsConfig { rank: 0, ..cfg() };
        assert!(matches!(OnlineEstimator::new(bad, 24), Err(Error::Config(_))));
        // Warm-factor round trip through the checkpoint accessors.
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        assert!(online.warm_factors().is_none());
        let (_, w) = window_at(0, 24, 12, 0.4, 11);
        online.update(&w).unwrap();
        let saved = online.warm_factors().unwrap().clone();
        let mut fresh = OnlineEstimator::new(cfg(), 24).unwrap();
        fresh.set_warm_factors(saved).unwrap();
        assert_eq!(fresh.warm_factors(), online.warm_factors());
        // Factors with the wrong rank are rejected.
        assert!(fresh.set_warm_factors(Matrix::zeros(12, 7)).is_err());
    }

    #[test]
    fn wrong_window_height_rejected() {
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        let (_, w) = window_at(0, 12, 8, 0.5, 2);
        assert!(online.update(&w).is_err());
    }

    #[test]
    fn segment_count_change_requires_reset() {
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        let (_, w12) = window_at(0, 24, 12, 0.4, 3);
        online.update(&w12).unwrap();
        let (_, w8) = window_at(1, 24, 8, 0.4, 4);
        assert!(online.update(&w8).is_err(), "stale factors must be rejected");
        online.reset();
        assert!(online.update(&w8).is_ok());
    }

    #[test]
    fn warm_start_shape_validated() {
        let (_, w) = window_at(0, 24, 12, 0.4, 5);
        let bad_r = Matrix::zeros(5, 3);
        assert!(complete_matrix_warm(&w, &cfg(), &bad_r).is_err());
    }

    #[test]
    fn end_to_end_with_streaming_tcm() {
        // Drive the estimator from probes::stream::StreamingTcm — the
        // full online pipeline of the paper's future-work sketch.
        use probes::stream::StreamingTcm;
        let n = 10;
        let mut stream = StreamingTcm::new(0, 60, 24, n).unwrap();
        let mut online = OnlineEstimator::new(cfg(), 24).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::RngExt;
        let mut last_err = None;
        for slot in 0..48usize {
            let truth_row = truth_rows(slot, 1, n);
            // A few random probes per slot.
            for _ in 0..6 {
                let seg = rng.random_range(0..n);
                let speed = truth_row.get(0, seg) * rng.random_range(0.95..1.05);
                stream.observe(slot as u64 * 60 + rng.random_range(0..60u64), seg, speed).unwrap();
            }
            if slot >= 23 {
                let window = stream.snapshot();
                let result = online.update_detailed(&window).unwrap();
                // Compare against the rolling truth for this window.
                let truth = truth_rows(slot + 1 - 24, 24, n);
                let err = nmae_on_missing(&truth, &result.estimate, window.indicator());
                last_err = Some(err);
            }
        }
        let err = last_err.expect("at least one online update ran");
        assert!(err < 0.15, "online pipeline NMAE {err}");
    }
}
