//! Incident detection from traffic condition matrices.
//!
//! The paper's structure analysis identifies *type-2 eigenflows* —
//! temporal spikes — as the signature of localized traffic anomalies,
//! and its structural toolkit comes from Lakhina et al.'s network-wide
//! anomaly diagnosis (\[23\] in the paper). This module closes that
//! loop: it separates a TCM into a low-rank "normal traffic" baseline
//! plus a residual, and flags cells whose residual is an extreme
//! negative outlier (a speed collapse the citywide rhythm does not
//! explain).
//!
//! Because it runs on *complete* matrices, it composes directly with
//! the completion algorithm: recover the TCM from sparse probe data
//! first, then detect incidents on the estimate.

use linalg::stats::quantile;
use linalg::{Matrix, Svd};

/// Robust scale estimate: `1.4826 × MAD`, the consistency-corrected
/// median absolute deviation (insensitive to the anomalies themselves,
/// unlike the standard deviation — a week-long incident would otherwise
/// inflate its own detection threshold).
fn robust_center_scale(xs: &[f64]) -> (f64, f64) {
    let med = quantile(xs, 0.5);
    // Exclude (near-)zero deviations: a seasonal-median baseline leaves
    // the median day's cells at exactly zero residual, and that atom
    // would deflate the MAD and inflate every z-score.
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).filter(|d| *d > 1e-9).collect();
    if deviations.is_empty() {
        return (med, 0.0);
    }
    (med, 1.4826 * quantile(&deviations, 0.5))
}

/// Detector failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyError {
    /// Baseline rank is zero or leaves no residual (`>= min(m, n)`).
    InvalidBaselineRank {
        /// Requested rank.
        rank: usize,
        /// Exclusive upper bound.
        max: usize,
    },
    /// The decomposition failed (empty or non-finite input).
    Decomposition(String),
    /// Seasonal baseline needs at least two full periods of data.
    TooFewPeriods {
        /// Rows available.
        rows: usize,
        /// Requested period.
        period: usize,
    },
}

impl std::fmt::Display for AnomalyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnomalyError::InvalidBaselineRank { rank, max } => {
                write!(f, "baseline rank {rank} must be in 1..{max}")
            }
            AnomalyError::Decomposition(e) => write!(f, "decomposition failed: {e}"),
            AnomalyError::TooFewPeriods { rows, period } => {
                write!(f, "seasonal baseline needs ≥ 2 periods: {rows} rows at period {period}")
            }
        }
    }
}

impl std::error::Error for AnomalyError {}

/// How the "normal traffic" baseline is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Baseline {
    /// Per-segment seasonal median: the baseline for slot `t` is the
    /// median across days of the same time-of-day on the same segment.
    /// A median over days is immune to incidents confined to one day —
    /// the robustness that spectral baselines lack (an incident mixed
    /// into a harmonically-rich component classifies as periodic and
    /// would be absorbed). `period_slots` is the number of slots per
    /// seasonal cycle (slots per day on a slot grid).
    SeasonalMedian {
        /// Slots per seasonal period (e.g. 96 for a day of 15-min slots).
        period_slots: usize,
    },
    /// Reconstruct from the *type-1 (periodic) eigenflows* only — the
    /// paper's own decomposition of normal traffic.
    PeriodicEigenflows,
    /// Plain best rank-k approximation (Eq. 11). Simplest, but a generous
    /// `k` can swallow the largest incidents.
    Rank(usize),
}

/// Detector parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AnomalyConfig {
    /// Baseline construction.
    pub baseline: Baseline,
    /// A cell is anomalous when its residual is below
    /// `−threshold_sigma · σ` of its segment's residual distribution
    /// (robust σ: 1.4826 × MAD).
    pub threshold_sigma: f64,
    /// Minimum run length (consecutive anomalous slots on one segment)
    /// to report — single-slot blips are usually noise.
    pub min_run_slots: usize,
    /// Detection-refinement passes: after each pass, detected cells are
    /// replaced by their baseline values and the baseline is recomputed,
    /// so large incidents stop distorting the components that should
    /// describe *normal* traffic (a one-step robust PCA).
    pub refinement_passes: usize,
    /// Absolute floor on the peak speed drop (km/h): a statistically
    /// significant but sub-`min_peak_drop` dip is not operationally an
    /// incident. `0.0` disables the floor.
    pub min_peak_drop: f64,
}

impl Default for AnomalyConfig {
    /// Defaults assume a 30-minute slot grid (48 slots per day); set
    /// `baseline` explicitly for other granularities.
    fn default() -> Self {
        Self {
            baseline: Baseline::SeasonalMedian { period_slots: 48 },
            threshold_sigma: 3.0,
            min_run_slots: 1,
            refinement_passes: 2,
            min_peak_drop: 0.0,
        }
    }
}

/// A detected anomaly: a maximal run of consecutive anomalous slots on
/// one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectedAnomaly {
    /// Segment column.
    pub segment: usize,
    /// First anomalous slot (inclusive).
    pub start_slot: usize,
    /// Last anomalous slot (inclusive).
    pub end_slot: usize,
    /// Most negative residual in the run, km/h.
    pub peak_residual: f64,
    /// Peak residual in segment-σ units (most negative z-score).
    pub peak_zscore: f64,
}

impl DetectedAnomaly {
    /// Whether the detection overlaps slots `[start, end]` on `segment`.
    pub fn overlaps(&self, segment: usize, start: usize, end: usize) -> bool {
        self.segment == segment && self.start_slot <= end && start <= self.end_slot
    }
}

/// Detects incident-like speed collapses in a complete TCM.
///
/// ```
/// use linalg::Matrix;
/// use traffic_cs::anomaly::{detect_anomalies, AnomalyConfig, Baseline};
///
/// // Two near-identical "days" of 4 slots — except one crashed cell.
/// let mut x = Matrix::from_fn(8, 3, |t, s| {
///     40.0 + (t % 4) as f64 + 0.3 * ((t * 3 + s) % 7) as f64
/// });
/// x.set(6, 1, 5.0);
/// let cfg = AnomalyConfig {
///     baseline: Baseline::SeasonalMedian { period_slots: 4 },
///     threshold_sigma: 3.0,
///     ..AnomalyConfig::default()
/// };
/// let found = detect_anomalies(&x, &cfg)?;
/// assert_eq!(found[0].segment, 1);
/// assert_eq!(found[0].start_slot, 6);
/// # Ok::<(), traffic_cs::anomaly::AnomalyError>(())
/// ```
///
/// # Errors
///
/// Propagates SVD failures (empty/non-finite input) and rejects a
/// baseline rank of zero or ≥ `min(m, n)` (no residual would remain).
pub fn detect_anomalies(
    x: &Matrix,
    config: &AnomalyConfig,
) -> Result<Vec<DetectedAnomaly>, AnomalyError> {
    let mut cleaned = x.clone();
    let mut detections = Vec::new();
    let passes = config.refinement_passes.max(1);
    for _ in 0..passes {
        let baseline = compute_baseline(&cleaned, config)?;
        detections = detect_against_baseline(x, &baseline, config);
        // Replace detected cells with the baseline for the next pass.
        cleaned = x.clone();
        for d in &detections {
            for t in d.start_slot..=d.end_slot {
                cleaned.set(t, d.segment, baseline.get(t, d.segment));
            }
        }
    }
    Ok(detections)
}

/// Per-segment seasonal-median baseline of a complete matrix: the
/// baseline for slot `t` is the median across periods of the same phase
/// (`t mod period_slots`) on the same segment. This is the robust
/// "normal traffic" model used by the detectors, exposed for callers
/// that want to detect against a completed estimate
/// (see `examples/incident_detection.rs` and the CLI's `detect`).
///
/// # Errors
///
/// Returns [`AnomalyError::TooFewPeriods`] unless the matrix covers at
/// least two full periods.
pub fn seasonal_median_baseline(x: &Matrix, period_slots: usize) -> Result<Matrix, AnomalyError> {
    if period_slots == 0 || x.rows() < 2 * period_slots {
        return Err(AnomalyError::TooFewPeriods { rows: x.rows(), period: period_slots });
    }
    let mut baseline = Matrix::zeros(x.rows(), x.cols());
    for seg in 0..x.cols() {
        for phase in 0..period_slots {
            let vals: Vec<f64> =
                (phase..x.rows()).step_by(period_slots).map(|t| x.get(t, seg)).collect();
            let med = quantile(&vals, 0.5);
            for t in (phase..x.rows()).step_by(period_slots) {
                baseline.set(t, seg, med);
            }
        }
    }
    Ok(baseline)
}

fn compute_baseline(x: &Matrix, config: &AnomalyConfig) -> Result<Matrix, AnomalyError> {
    let max_rank = x.rows().min(x.cols());
    match config.baseline {
        Baseline::SeasonalMedian { period_slots } => seasonal_median_baseline(x, period_slots),
        Baseline::Rank(k) => {
            if k == 0 || k >= max_rank {
                return Err(AnomalyError::InvalidBaselineRank { rank: k, max: max_rank });
            }
            Ok(Svd::compute(x).map_err(|e| AnomalyError::Decomposition(e.to_string()))?.truncate(k))
        }
        Baseline::PeriodicEigenflows => {
            let analysis = crate::eigenflow::EigenflowAnalysis::compute(x)
                .map_err(|e| AnomalyError::Decomposition(e.to_string()))?;
            Ok(analysis.reconstruct_by_type(crate::eigenflow::EigenflowType::Periodic))
        }
    }
}

fn detect_against_baseline(
    x: &Matrix,
    baseline: &Matrix,
    config: &AnomalyConfig,
) -> Vec<DetectedAnomaly> {
    let residual = x - baseline;

    let mut out = Vec::new();
    for seg in 0..x.cols() {
        let col = residual.col(seg);
        let (mu, sigma) = robust_center_scale(&col);
        if sigma == 0.0 {
            continue; // perfectly explained segment
        }
        let threshold = mu - config.threshold_sigma * sigma;
        // Collect maximal runs below the threshold.
        let mut run_start: Option<usize> = None;
        for t in 0..=col.len() {
            let below = t < col.len() && col[t] < threshold;
            match (run_start, below) {
                (None, true) => run_start = Some(t),
                (Some(s), false) => {
                    let e = t - 1;
                    if e + 1 - s >= config.min_run_slots {
                        let (peak_t, peak) = (s..=e)
                            .map(|i| (i, col[i]))
                            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite residuals"))
                            .expect("non-empty run");
                        let _ = peak_t;
                        if peak <= -config.min_peak_drop {
                            out.push(DetectedAnomaly {
                                segment: seg,
                                start_slot: s,
                                end_slot: e,
                                peak_residual: peak,
                                peak_zscore: (peak - mu) / sigma,
                            });
                        }
                    }
                    run_start = None;
                }
                _ => {}
            }
        }
    }
    // Strongest first.
    out.sort_by(|a, b| a.peak_zscore.partial_cmp(&b.peak_zscore).expect("finite z-scores"));
    out
}

/// Detects anomalies using only *observed* evidence: residuals are
/// `observed value − baseline` at observed cells, scored per segment
/// with the same robust threshold. Unobserved cells are never flagged
/// (a rank-limited completion smears strong incidents into cells it has
/// no evidence for; this variant is immune to that). A run continues
/// through unobserved slots and is broken by an observed non-anomalous
/// slot.
///
/// The baseline is any complete matrix of "normal traffic" — typically
/// the seasonal median of a completed estimate (see
/// `examples/incident_detection.rs`).
///
/// # Errors
///
/// Rejects shape mismatches between the TCM and the baseline.
pub fn detect_anomalies_sparse(
    observed: &probes::Tcm,
    baseline: &Matrix,
    config: &AnomalyConfig,
) -> Result<Vec<DetectedAnomaly>, AnomalyError> {
    if observed.values().shape() != baseline.shape() {
        return Err(AnomalyError::Decomposition(format!(
            "baseline shape {:?} does not match TCM {:?}",
            baseline.shape(),
            observed.values().shape()
        )));
    }
    let mut out = Vec::new();
    for seg in 0..observed.num_segments() {
        // Observed residuals for this segment.
        let cells: Vec<(usize, f64)> = (0..observed.num_slots())
            .filter_map(|t| observed.get(t, seg).map(|v| (t, v - baseline.get(t, seg))))
            .collect();
        if cells.len() < 4 {
            continue; // not enough evidence for a scale estimate
        }
        let residuals: Vec<f64> = cells.iter().map(|&(_, r)| r).collect();
        let (mu, sigma) = robust_center_scale(&residuals);
        if sigma == 0.0 {
            continue;
        }
        let threshold = mu - config.threshold_sigma * sigma;
        // Runs over observed cells; unobserved gaps do not break a run.
        let mut run: Vec<(usize, f64)> = Vec::new();
        let flush = |run: &mut Vec<(usize, f64)>, out: &mut Vec<DetectedAnomaly>| {
            if run.len() >= config.min_run_slots {
                let &(_, peak) = run
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite residuals"))
                    .expect("non-empty run");
                if peak <= -config.min_peak_drop {
                    out.push(DetectedAnomaly {
                        segment: seg,
                        start_slot: run[0].0,
                        end_slot: run[run.len() - 1].0,
                        peak_residual: peak,
                        peak_zscore: (peak - mu) / sigma,
                    });
                }
            }
            run.clear();
        };
        for &(t, r) in &cells {
            if r < threshold {
                run.push((t, r));
            } else {
                flush(&mut run, &mut out);
            }
        }
        flush(&mut run, &mut out);
    }
    out.sort_by(|a, b| a.peak_zscore.partial_cmp(&b.peak_zscore).expect("finite z-scores"));
    Ok(out)
}

/// Precision/recall of a detection set against labelled incidents
/// (`(segment, start_slot, end_slot)` triples). A detection is a true
/// positive when it overlaps any label; a label is recalled when any
/// detection overlaps it.
pub fn precision_recall(
    detections: &[DetectedAnomaly],
    labels: &[(usize, usize, usize)],
) -> (f64, f64) {
    if detections.is_empty() {
        return (0.0, 0.0);
    }
    let tp =
        detections.iter().filter(|d| labels.iter().any(|&(s, a, b)| d.overlaps(s, a, b))).count();
    let recalled =
        labels.iter().filter(|&&(s, a, b)| detections.iter().any(|d| d.overlaps(s, a, b))).count();
    let precision = tp as f64 / detections.len() as f64;
    let recall = if labels.is_empty() { 1.0 } else { recalled as f64 / labels.len() as f64 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    /// Low-rank daily pattern + injected incidents + mild noise.
    fn matrix_with_incidents(incidents: &[(usize, usize, usize)]) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut x = Matrix::from_fn(96, 24, |t, s| {
            let f = (2.0 * std::f64::consts::PI * t as f64 / 48.0).sin();
            40.0 + 9.0 * f * (0.7 + 0.03 * s as f64) + rng.random_range(-1.0..1.0)
        });
        for &(seg, a, b) in incidents {
            for t in a..=b {
                x.set(t, seg, x.get(t, seg) * 0.35);
            }
        }
        x
    }

    #[test]
    fn finds_injected_incidents() {
        let labels = [(3usize, 20usize, 24usize), (17, 60, 66), (9, 40, 42)];
        let x = matrix_with_incidents(&labels);
        let cfg = AnomalyConfig { min_run_slots: 2, ..AnomalyConfig::default() };
        let detections = detect_anomalies(&x, &cfg).unwrap();
        let (precision, recall) = precision_recall(&detections, &labels);
        assert!(recall == 1.0, "recall {recall}: {detections:?}");
        assert!(precision > 0.7, "precision {precision}");
        // Strongest detection is genuinely strong.
        assert!(detections[0].peak_zscore < -3.0);
    }

    #[test]
    fn clean_matrix_yields_few_detections() {
        let x = matrix_with_incidents(&[]);
        let detections = detect_anomalies(&x, &AnomalyConfig::default()).unwrap();
        // 3σ on ~2300 cells: a handful of noise hits at most.
        assert!(detections.len() <= 5, "{} spurious detections", detections.len());
    }

    #[test]
    fn min_run_filters_blips() {
        let labels = [(5usize, 30usize, 36usize)];
        let x = matrix_with_incidents(&labels);
        let long_only = AnomalyConfig { min_run_slots: 3, ..AnomalyConfig::default() };
        let detections = detect_anomalies(&x, &long_only).unwrap();
        assert!(detections.iter().all(|d| d.end_slot + 1 - d.start_slot >= 3));
        let (_, recall) = precision_recall(&detections, &labels);
        assert_eq!(recall, 1.0);
    }

    #[test]
    fn overlap_semantics() {
        let d = DetectedAnomaly {
            segment: 2,
            start_slot: 10,
            end_slot: 12,
            peak_residual: -9.0,
            peak_zscore: -4.0,
        };
        assert!(d.overlaps(2, 12, 20));
        assert!(d.overlaps(2, 5, 10));
        assert!(!d.overlaps(2, 13, 20));
        assert!(!d.overlaps(3, 10, 12));
    }

    #[test]
    fn config_validation() {
        let x = matrix_with_incidents(&[]);
        assert!(detect_anomalies(
            &x,
            &AnomalyConfig { baseline: Baseline::Rank(0), ..Default::default() }
        )
        .is_err());
        assert!(detect_anomalies(
            &x,
            &AnomalyConfig { baseline: Baseline::Rank(24), ..Default::default() }
        )
        .is_err());
        // An explicit small rank also works on clean data.
        let ok = detect_anomalies(
            &x,
            &AnomalyConfig { baseline: Baseline::Rank(2), ..Default::default() },
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn precision_recall_edge_cases() {
        assert_eq!(precision_recall(&[], &[(1, 2, 3)]), (0.0, 0.0));
        let d = DetectedAnomaly {
            segment: 1,
            start_slot: 2,
            end_slot: 3,
            peak_residual: -5.0,
            peak_zscore: -4.0,
        };
        assert_eq!(precision_recall(&[d], &[]), (0.0, 1.0));
    }

    #[test]
    fn sparse_detector_flags_only_observed_evidence() {
        use probes::mask::random_mask;
        use rand::SeedableRng;
        let labels = [(7usize, 50usize, 58usize), (12, 20, 26)];
        let truth = matrix_with_incidents(&labels);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mask = random_mask(96, 24, 0.4, &mut rng);
        let observed = probes::Tcm::complete(truth.clone()).masked(&mask).unwrap();
        // Baseline: seasonal median of the truth (stand-in for a
        // completed estimate).
        let baseline = seasonal_median_baseline(&truth, 48).unwrap();
        let detections = detect_anomalies_sparse(
            &observed,
            &baseline,
            &AnomalyConfig {
                threshold_sigma: 3.0,
                min_run_slots: 1,
                min_peak_drop: 3.0,
                ..Default::default()
            },
        )
        .unwrap();
        // Every detection is anchored at observed cells.
        for d in &detections {
            assert!(observed.is_observed(d.start_slot, d.segment));
            assert!(observed.is_observed(d.end_slot, d.segment));
        }
        let (precision, recall) = precision_recall(&detections, &labels);
        assert!(recall == 1.0, "recall {recall}: {detections:?}");
        assert!(precision > 0.6, "precision {precision}: {detections:?}");
    }

    #[test]
    fn sparse_detector_validates_shapes() {
        let truth = matrix_with_incidents(&[]);
        let observed = probes::Tcm::complete(truth);
        let bad = Matrix::zeros(3, 3);
        assert!(detect_anomalies_sparse(&observed, &bad, &AnomalyConfig::default()).is_err());
    }

    #[test]
    fn detection_works_on_completed_estimates() {
        // The intended pipeline: mask the matrix, complete it, detect on
        // the estimate.
        use crate::cs::{complete_matrix, CsConfig};
        use probes::mask::random_mask;
        let labels = [(7usize, 50usize, 58usize)];
        let truth = matrix_with_incidents(&labels);
        // Seed 7: of 16 mask realizations inspected under the vendored
        // StdRng, only seed 6 drops enough incident cells for completion
        // to smooth the incident away; the rest recall it at 100%.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mask = random_mask(96, 24, 0.5, &mut rng);
        let tcm = probes::Tcm::complete(truth).masked(&mask).unwrap();
        // Rank high enough to carry the incident into the estimate.
        let cfg = CsConfig { rank: 8, lambda: 0.05, ..CsConfig::default() };
        let estimate = complete_matrix(&tcm, &cfg).unwrap();
        // Completion error fragments anomalous runs, so detect single
        // slots at a higher σ instead of requiring contiguity.
        let detections = detect_anomalies(
            &estimate,
            &AnomalyConfig { threshold_sigma: 3.0, min_run_slots: 1, ..AnomalyConfig::default() },
        )
        .unwrap();
        let (_, recall) = precision_recall(&detections, &labels);
        assert_eq!(recall, 1.0, "incident lost in completion: {detections:?}");
    }
}
