//! Adaptive traffic-matrix construction — the paper's Section 6 future
//! work: "it is possible to construct different matrices for estimating
//! traffic conditions at different locations … to find the best way for
//! constructing adaptive measurement matrices".
//!
//! The Section 4.5 experiments (Figs. 17–18) showed that *which* road
//! segments share a matrix with the target matters less than *how many*
//! — but that holds for segments that all share the citywide rhythm.
//! This module implements the natural adaptive policy: rank candidate
//! segments by the historical correlation of their condition series with
//! the target segment's, and build the estimation matrix from the top
//! correlates. On heterogeneous networks (where some segments follow a
//! different latent pattern) this dominates random selection.

use crate::cs::{complete_matrix, CsConfig, CsError};
use crate::error::ConfigError;
use linalg::stats::pearson_masked;
use linalg::Matrix;
use probes::Tcm;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Candidate segments ranked by `|corr|` with `target`'s series, best
/// first. Correlations are computed over the time slots where both
/// columns are observed in `historical`; segments with fewer than two
/// common observations rank last with correlation 0.
///
/// The target itself is excluded from the ranking.
///
/// ```
/// use linalg::Matrix;
/// use probes::Tcm;
/// use traffic_cs::selection::correlation_ranking;
///
/// // Column 1 follows column 0; column 2 is constant.
/// let x = Matrix::from_fn(10, 3, |t, s| match s {
///     0 => t as f64,
///     1 => 2.0 * t as f64 + 1.0,
///     _ => 5.0,
/// });
/// let ranking = correlation_ranking(&Tcm::complete(x), 0);
/// assert_eq!(ranking[0].0, 1); // the correlated twin ranks first
/// ```
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn correlation_ranking(historical: &Tcm, target: usize) -> Vec<(usize, f64)> {
    correlation_ranking_threads(historical, target, 0)
}

/// [`correlation_ranking`] with an explicit worker count (`0` defers to
/// [`workpool::set_default_threads`], `1` forces the sequential path).
/// Per-candidate correlations are independent and land in fixed slots,
/// so the ranking is identical for every thread count.
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn correlation_ranking_threads(
    historical: &Tcm,
    target: usize,
    num_threads: usize,
) -> Vec<(usize, f64)> {
    let n = historical.num_segments();
    assert!(target < n, "target column {target} out of bounds");
    let m = historical.num_slots();
    let target_col = historical.values().col(target);
    let target_mask: Vec<bool> = (0..m).map(|t| historical.is_observed(t, target)).collect();
    let candidates: Vec<usize> = (0..n).filter(|&j| j != target).collect();
    // Correlating a candidate costs ~m flops; below the pool's pay-off
    // point the fan-out would be pure spawn overhead.
    let threads = if candidates.len() * m < 32_768 { 1 } else { num_threads };
    let mut ranked: Vec<(usize, f64)> =
        workpool::parallel_map_indexed(candidates.len(), threads, |idx| {
            let j = candidates[idx];
            let col = historical.values().col(j);
            let mask: Vec<bool> = (0..m).map(|t| historical.is_observed(t, j)).collect();
            (j, pearson_masked(&target_col, &col, &target_mask, &mask).abs())
        });
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite correlations").then(a.0.cmp(&b.0)));
    ranked
}

/// Column indices for an adaptive estimation matrix: the target first,
/// followed by its `k` most correlated companions (clamped to the
/// available segment count).
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn select_correlated(historical: &Tcm, target: usize, k: usize) -> Vec<usize> {
    let ranking = correlation_ranking(historical, target);
    let mut out = vec![target];
    out.extend(ranking.into_iter().take(k).map(|(j, _)| j));
    out
}

/// Builds the adaptive sub-matrix directly (target is column 0 of the
/// result).
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn adaptive_matrix(historical: &Tcm, target: usize, k: usize) -> Tcm {
    historical.select_segments(&select_correlated(historical, target, k))
}

/// Cross-validated score of one companion count `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldScore {
    /// Number of companion segments evaluated.
    pub k: usize,
    /// Held-out NMAE of each fold, in fold order.
    pub fold_errors: Vec<f64>,
    /// Mean of [`fold_errors`](FoldScore::fold_errors).
    pub mean_nmae: f64,
}

/// Parameters of the fold evaluation in [`evaluate_k_folds`].
#[derive(Debug, Clone, PartialEq)]
pub struct CvConfig {
    /// Number of folds the target's observed cells are split into.
    pub folds: usize,
    /// Template for the inner Algorithm-1 runs.
    pub cs: CsConfig,
    /// Seed for the fold assignment shuffle.
    pub seed: u64,
    /// Worker threads for the `(k, fold)` fan-out: `0` defers to
    /// [`workpool::set_default_threads`], `1` runs sequentially. While
    /// the fan-out is parallel the inner completions are forced
    /// sequential, so the evaluation never occupies more than
    /// `num_threads` cores.
    pub num_threads: usize,
}

impl Default for CvConfig {
    fn default() -> Self {
        Self { folds: 4, cs: CsConfig::default(), seed: 7, num_threads: 0 }
    }
}

impl CvConfig {
    /// Validated construction mirroring [`CsConfig::builder`].
    ///
    /// ```
    /// use traffic_cs::selection::CvConfig;
    ///
    /// let cfg = CvConfig::builder().folds(5).seed(3).build()?;
    /// assert_eq!(cfg.folds, 5);
    /// assert!(CvConfig::builder().folds(0).build().is_err());
    /// # Ok::<(), traffic_cs::ConfigError>(())
    /// ```
    pub fn builder() -> CvConfigBuilder {
        CvConfigBuilder { cfg: CvConfig::default() }
    }
}

/// Builder for [`CvConfig`]; see [`CvConfig::builder`].
#[derive(Debug, Clone)]
pub struct CvConfigBuilder {
    cfg: CvConfig,
}

impl CvConfigBuilder {
    /// Number of folds (must be ≥ 2 so there is a held-out split).
    pub fn folds(mut self, folds: usize) -> Self {
        self.cfg.folds = folds;
        self
    }

    /// Template for the inner Algorithm-1 runs.
    pub fn cs(mut self, cs: CsConfig) -> Self {
        self.cfg.cs = cs;
        self
    }

    /// Seed for the fold-assignment shuffle.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Worker threads for the `(k, fold)` fan-out.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.cfg.num_threads = num_threads;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first offending field.
    pub fn build(self) -> Result<CvConfig, ConfigError> {
        if self.cfg.folds < 2 {
            return Err(ConfigError::new("folds", "need at least 2 folds for a held-out split"));
        }
        self.cfg.cs.validate()?;
        Ok(self.cfg)
    }
}

/// Cross-validates companion counts for the adaptive matrix: for every
/// `k` in `ks` and every fold, the fold's share of the *target's*
/// observed cells is hidden, companions are re-ranked on the remaining
/// data (no leakage from the held-out cells), the adaptive sub-matrix is
/// completed, and the hidden cells score the estimate. Scores come back
/// in the order of `ks`, each with per-fold errors in fold order.
///
/// Every `(k, fold)` cell is an independent completion, so the full grid
/// fans out over the worker pool; results are slot-indexed and the fold
/// split is seeded, making the output independent of the thread count.
///
/// # Errors
///
/// [`CsError`] when the target has too few observed cells to split
/// (fewer than `2 × folds`), when `ks` or `folds` is empty
/// ([`CsError::NoIterations`]), or when an inner completion fails — the
/// error reported is the one the sequential `ks × folds` loop would hit
/// first.
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn evaluate_k_folds(
    historical: &Tcm,
    target: usize,
    ks: &[usize],
    config: &CvConfig,
) -> Result<Vec<FoldScore>, CsError> {
    assert!(target < historical.num_segments(), "target column {target} out of bounds");
    if ks.is_empty() || config.folds == 0 {
        return Err(CsError::NoIterations);
    }
    let observed: Vec<usize> =
        (0..historical.num_slots()).filter(|&t| historical.is_observed(t, target)).collect();
    if observed.len() < 2 * config.folds {
        return Err(CsError::NoObservations);
    }

    // Seeded shuffle, then round-robin fold assignment: every fold gets
    // within-one-of-equal shares and the split is reproducible.
    let mut shuffled = observed;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    shuffled.shuffle(&mut rng);
    let fold_of = |idx: usize| idx % config.folds;

    let cells: Vec<(usize, usize)> =
        ks.iter().flat_map(|&k| (0..config.folds).map(move |f| (k, f))).collect();
    let workers = workpool::resolve_threads(config.num_threads).min(cells.len());
    let inner_threads = if workers > 1 { 1 } else { config.cs.num_threads };

    let mut cv_span = telemetry::span(telemetry::Level::Info, "cv.evaluate");
    if cv_span.is_enabled() {
        cv_span.record("target", target);
        cv_span.record("folds", config.folds);
        cv_span.record("ks", ks.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(","));
    }

    let errors: Vec<Result<f64, CsError>> =
        workpool::parallel_map_indexed(cells.len(), config.num_threads, |idx| {
            let (k, fold) = cells[idx];
            let mut fold_span = telemetry::span(telemetry::Level::Debug, "cv.fold");
            if fold_span.is_enabled() {
                fold_span.record("k", k);
                fold_span.record("fold", fold);
            }
            let held_out: Vec<usize> = shuffled
                .iter()
                .enumerate()
                .filter(|&(i, _)| fold_of(i) == fold)
                .map(|(_, &t)| t)
                .collect();
            let mut train_mask =
                Matrix::filled(historical.num_slots(), historical.num_segments(), 1.0);
            for &t in &held_out {
                train_mask.set(t, target, 0.0);
            }
            let train = historical.masked(&train_mask).expect("mask shape matches");
            let cols = select_correlated(&train, target, k);
            let sub = train.select_segments(&cols);
            let cfg = CsConfig { num_threads: inner_threads, ..config.cs.clone() };
            let est = complete_matrix(&sub, &cfg)?;
            // Score on the hidden target cells (column 0 of the
            // sub-matrix holds the target).
            let mut num = 0.0;
            let mut den = 0.0;
            for &t in &held_out {
                let truth = historical.values().get(t, target);
                num += (truth - est.get(t, 0)).abs();
                den += truth.abs();
            }
            let nmae = if den > 0.0 { num / den } else { 0.0 };
            if fold_span.is_enabled() {
                fold_span.record("held_out", held_out.len());
                fold_span.record("nmae", nmae);
            }
            if telemetry::metrics_enabled() {
                telemetry::counter("cv.folds_evaluated").incr();
            }
            Ok(nmae)
        });
    drop(cv_span);

    // Deterministic error selection: the first failure in ks × folds
    // order, exactly what a sequential nested loop would report.
    let mut flat = Vec::with_capacity(cells.len());
    for e in errors {
        flat.push(e?);
    }
    Ok(ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let fold_errors: Vec<f64> = flat[i * config.folds..(i + 1) * config.folds].to_vec();
            let mean_nmae = fold_errors.iter().sum::<f64>() / fold_errors.len() as f64;
            FoldScore { k, fold_errors, mean_nmae }
        })
        .collect())
}

/// Picks the companion count with the best cross-validated NMAE (ties
/// break toward the smaller `k` — fewer segments, cheaper completion).
///
/// # Errors
///
/// See [`evaluate_k_folds`].
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn select_k_by_cv(
    historical: &Tcm,
    target: usize,
    ks: &[usize],
    config: &CvConfig,
) -> Result<usize, CsError> {
    let scores = evaluate_k_folds(historical, target, ks, config)?;
    Ok(scores
        .iter()
        .min_by(|a, b| {
            a.mean_nmae.partial_cmp(&b.mean_nmae).expect("finite NMAE").then(a.k.cmp(&b.k))
        })
        .expect("ks is non-empty")
        .k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::{complete_matrix, CsConfig};
    use linalg::Matrix;
    use probes::mask::random_mask;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Heterogeneous city: segments 0..10 follow factor A (like the
    /// target), segments 10..30 follow an independent factor B.
    fn heterogeneous_truth(m: usize) -> Matrix {
        Matrix::from_fn(m, 30, |t, s| {
            let fa = (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin();
            let fb = (2.0 * std::f64::consts::PI * (t as f64 + 7.3) / 17.0).cos();
            if s < 10 {
                35.0 + 8.0 * fa * (0.8 + 0.05 * s as f64)
            } else {
                35.0 + 8.0 * fb * (0.8 + 0.03 * s as f64)
            }
        })
    }

    fn masked(truth: &Matrix, integrity: f64, seed: u64) -> Tcm {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(truth.rows(), truth.cols(), integrity, &mut rng);
        Tcm::complete(truth.clone()).masked(&mask).unwrap()
    }

    #[test]
    fn ranking_finds_the_same_family() {
        let truth = heterogeneous_truth(96);
        let tcm = masked(&truth, 0.6, 1);
        let ranking = correlation_ranking(&tcm, 0);
        // The 9 same-family segments (1..10) must occupy the top ranks.
        let top9: Vec<usize> = ranking.iter().take(9).map(|&(j, _)| j).collect();
        for j in top9 {
            assert!(j < 10, "segment {j} from the wrong family ranked top");
        }
        // And their correlations are near 1 while family-B's are low.
        assert!(ranking[0].1 > 0.9);
        let worst_same_family =
            ranking.iter().filter(|&&(j, _)| j < 10).map(|&(_, c)| c).fold(1.0, f64::min);
        let best_other =
            ranking.iter().filter(|&&(j, _)| j >= 10).map(|&(_, c)| c).fold(0.0, f64::max);
        assert!(worst_same_family > best_other, "{worst_same_family} vs {best_other}");
    }

    #[test]
    fn select_correlated_puts_target_first() {
        let truth = heterogeneous_truth(48);
        let tcm = masked(&truth, 0.7, 2);
        let sel = select_correlated(&tcm, 5, 6);
        assert_eq!(sel[0], 5);
        assert_eq!(sel.len(), 7);
        assert!(!sel[1..].contains(&5));
        // Oversized k clamps.
        let all = select_correlated(&tcm, 5, 999);
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn adaptive_beats_random_selection() {
        let truth = heterogeneous_truth(96);
        // Historical week: moderately observed, used only for ranking.
        let history = masked(&truth, 0.5, 3);
        // Evaluation week (same structure), sparsely observed.
        let eval = masked(&truth, 0.2, 4);

        let nmae_target = |cols: &[usize]| {
            let sub_truth = truth.select_columns(cols);
            let sub = eval.select_segments(cols);
            let cfg = CsConfig { rank: 2, lambda: 0.05, ..CsConfig::default() };
            let est = complete_matrix(&sub, &cfg).unwrap();
            // Error on the target column (position 0).
            let mut num = 0.0;
            let mut den = 0.0;
            for t in 0..sub.num_slots() {
                if !sub.is_observed(t, 0) {
                    num += (sub_truth.get(t, 0) - est.get(t, 0)).abs();
                    den += sub_truth.get(t, 0).abs();
                }
            }
            num / den
        };

        let adaptive = select_correlated(&history, 0, 8);
        let adaptive_err = nmae_target(&adaptive);

        // Random selections of the same size (target first).
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut random_errs = Vec::new();
        for _ in 0..5 {
            let mut pool: Vec<usize> = (1..30).collect();
            pool.shuffle(&mut rng);
            let mut cols = vec![0usize];
            cols.extend(pool.into_iter().take(8));
            random_errs.push(nmae_target(&cols));
        }
        let random_mean = random_errs.iter().sum::<f64>() / random_errs.len() as f64;
        assert!(
            adaptive_err < random_mean,
            "adaptive {adaptive_err} vs random mean {random_mean} ({random_errs:?})"
        );
    }

    #[test]
    fn adaptive_matrix_shape() {
        let truth = heterogeneous_truth(48);
        let tcm = masked(&truth, 0.6, 6);
        let sub = adaptive_matrix(&tcm, 3, 5);
        assert_eq!(sub.num_segments(), 6);
        assert_eq!(sub.num_slots(), 48);
        // Column 0 is the target's data.
        for t in 0..48 {
            assert_eq!(sub.get(t, 0), tcm.get(t, 3));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_target_panics() {
        let truth = heterogeneous_truth(24);
        let tcm = masked(&truth, 0.5, 7);
        correlation_ranking(&tcm, 99);
    }

    #[test]
    fn fold_scores_cover_every_k_and_fold() {
        let truth = heterogeneous_truth(96);
        let tcm = masked(&truth, 0.5, 8);
        let cv = CvConfig {
            folds: 3,
            cs: CsConfig { rank: 2, lambda: 0.05, iterations: 30, ..CsConfig::default() },
            ..CvConfig::default()
        };
        let scores = evaluate_k_folds(&tcm, 0, &[4, 8, 12], &cv).unwrap();
        assert_eq!(scores.len(), 3);
        for (score, &k) in scores.iter().zip(&[4usize, 8, 12]) {
            assert_eq!(score.k, k);
            assert_eq!(score.fold_errors.len(), 3);
            assert!(score.fold_errors.iter().all(|e| e.is_finite() && *e >= 0.0));
            let mean = score.fold_errors.iter().sum::<f64>() / 3.0;
            assert!((score.mean_nmae - mean).abs() < 1e-15);
        }
    }

    #[test]
    fn cv_finds_that_more_segments_help() {
        // Section 4.5's finding (Fig. 17): matrix size matters more than
        // segment membership. At low integrity a 4-companion matrix is
        // underpowered and the fold errors say so, loudly — CV must pick
        // the larger set, and its choice must be the argmin of the
        // reported means.
        let truth = heterogeneous_truth(96);
        let tcm = masked(&truth, 0.25, 9);
        let cv = CvConfig {
            folds: 4,
            cs: CsConfig { rank: 2, lambda: 0.05, iterations: 40, ..CsConfig::default() },
            ..CvConfig::default()
        };
        let scores = evaluate_k_folds(&tcm, 0, &[4, 25], &cv).unwrap();
        assert!(
            scores[1].mean_nmae < scores[0].mean_nmae,
            "25 companions ({}) should beat 4 ({}) at 25% integrity",
            scores[1].mean_nmae,
            scores[0].mean_nmae
        );
        let k = select_k_by_cv(&tcm, 0, &[4, 25], &cv).unwrap();
        let argmin =
            scores.iter().min_by(|a, b| a.mean_nmae.partial_cmp(&b.mean_nmae).unwrap()).unwrap().k;
        assert_eq!(k, argmin);
    }

    #[test]
    fn fold_evaluation_validates_inputs() {
        let truth = heterogeneous_truth(24);
        let tcm = masked(&truth, 0.5, 10);
        let cv = CvConfig::default();
        assert!(matches!(evaluate_k_folds(&tcm, 0, &[], &cv), Err(CsError::NoIterations)));
        let no_folds = CvConfig { folds: 0, ..cv.clone() };
        assert!(matches!(evaluate_k_folds(&tcm, 0, &[4], &no_folds), Err(CsError::NoIterations)));
        // A target with almost no observations cannot be split.
        let mut mask = Matrix::filled(24, 30, 1.0);
        for t in 1..24 {
            mask.set(t, 0, 0.0);
        }
        let sparse = tcm.masked(&mask).unwrap();
        assert!(matches!(evaluate_k_folds(&sparse, 0, &[4], &cv), Err(CsError::NoObservations)));
    }
}
