//! Adaptive traffic-matrix construction — the paper's Section 6 future
//! work: "it is possible to construct different matrices for estimating
//! traffic conditions at different locations … to find the best way for
//! constructing adaptive measurement matrices".
//!
//! The Section 4.5 experiments (Figs. 17–18) showed that *which* road
//! segments share a matrix with the target matters less than *how many*
//! — but that holds for segments that all share the citywide rhythm.
//! This module implements the natural adaptive policy: rank candidate
//! segments by the historical correlation of their condition series with
//! the target segment's, and build the estimation matrix from the top
//! correlates. On heterogeneous networks (where some segments follow a
//! different latent pattern) this dominates random selection.

use linalg::stats::pearson_masked;
use probes::Tcm;

/// Candidate segments ranked by `|corr|` with `target`'s series, best
/// first. Correlations are computed over the time slots where both
/// columns are observed in `historical`; segments with fewer than two
/// common observations rank last with correlation 0.
///
/// The target itself is excluded from the ranking.
///
/// ```
/// use linalg::Matrix;
/// use probes::Tcm;
/// use traffic_cs::selection::correlation_ranking;
///
/// // Column 1 follows column 0; column 2 is constant.
/// let x = Matrix::from_fn(10, 3, |t, s| match s {
///     0 => t as f64,
///     1 => 2.0 * t as f64 + 1.0,
///     _ => 5.0,
/// });
/// let ranking = correlation_ranking(&Tcm::complete(x), 0);
/// assert_eq!(ranking[0].0, 1); // the correlated twin ranks first
/// ```
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn correlation_ranking(historical: &Tcm, target: usize) -> Vec<(usize, f64)> {
    let n = historical.num_segments();
    assert!(target < n, "target column {target} out of bounds");
    let m = historical.num_slots();
    let target_col = historical.values().col(target);
    let target_mask: Vec<bool> = (0..m).map(|t| historical.is_observed(t, target)).collect();
    let mut ranked: Vec<(usize, f64)> = (0..n)
        .filter(|&j| j != target)
        .map(|j| {
            let col = historical.values().col(j);
            let mask: Vec<bool> = (0..m).map(|t| historical.is_observed(t, j)).collect();
            (j, pearson_masked(&target_col, &col, &target_mask, &mask).abs())
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite correlations").then(a.0.cmp(&b.0)));
    ranked
}

/// Column indices for an adaptive estimation matrix: the target first,
/// followed by its `k` most correlated companions (clamped to the
/// available segment count).
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn select_correlated(historical: &Tcm, target: usize, k: usize) -> Vec<usize> {
    let ranking = correlation_ranking(historical, target);
    let mut out = vec![target];
    out.extend(ranking.into_iter().take(k).map(|(j, _)| j));
    out
}

/// Builds the adaptive sub-matrix directly (target is column 0 of the
/// result).
///
/// # Panics
///
/// Panics when `target` is out of bounds.
pub fn adaptive_matrix(historical: &Tcm, target: usize, k: usize) -> Tcm {
    historical.select_segments(&select_correlated(historical, target, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::{complete_matrix, CsConfig};
    use linalg::Matrix;
    use probes::mask::random_mask;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Heterogeneous city: segments 0..10 follow factor A (like the
    /// target), segments 10..30 follow an independent factor B.
    fn heterogeneous_truth(m: usize) -> Matrix {
        Matrix::from_fn(m, 30, |t, s| {
            let fa = (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin();
            let fb = (2.0 * std::f64::consts::PI * (t as f64 + 7.3) / 17.0).cos();
            if s < 10 {
                35.0 + 8.0 * fa * (0.8 + 0.05 * s as f64)
            } else {
                35.0 + 8.0 * fb * (0.8 + 0.03 * s as f64)
            }
        })
    }

    fn masked(truth: &Matrix, integrity: f64, seed: u64) -> Tcm {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mask = random_mask(truth.rows(), truth.cols(), integrity, &mut rng);
        Tcm::complete(truth.clone()).masked(&mask).unwrap()
    }

    #[test]
    fn ranking_finds_the_same_family() {
        let truth = heterogeneous_truth(96);
        let tcm = masked(&truth, 0.6, 1);
        let ranking = correlation_ranking(&tcm, 0);
        // The 9 same-family segments (1..10) must occupy the top ranks.
        let top9: Vec<usize> = ranking.iter().take(9).map(|&(j, _)| j).collect();
        for j in top9 {
            assert!(j < 10, "segment {j} from the wrong family ranked top");
        }
        // And their correlations are near 1 while family-B's are low.
        assert!(ranking[0].1 > 0.9);
        let worst_same_family =
            ranking.iter().filter(|&&(j, _)| j < 10).map(|&(_, c)| c).fold(1.0, f64::min);
        let best_other =
            ranking.iter().filter(|&&(j, _)| j >= 10).map(|&(_, c)| c).fold(0.0, f64::max);
        assert!(worst_same_family > best_other, "{worst_same_family} vs {best_other}");
    }

    #[test]
    fn select_correlated_puts_target_first() {
        let truth = heterogeneous_truth(48);
        let tcm = masked(&truth, 0.7, 2);
        let sel = select_correlated(&tcm, 5, 6);
        assert_eq!(sel[0], 5);
        assert_eq!(sel.len(), 7);
        assert!(!sel[1..].contains(&5));
        // Oversized k clamps.
        let all = select_correlated(&tcm, 5, 999);
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn adaptive_beats_random_selection() {
        let truth = heterogeneous_truth(96);
        // Historical week: moderately observed, used only for ranking.
        let history = masked(&truth, 0.5, 3);
        // Evaluation week (same structure), sparsely observed.
        let eval = masked(&truth, 0.2, 4);

        let nmae_target = |cols: &[usize]| {
            let sub_truth = truth.select_columns(cols);
            let sub = eval.select_segments(cols);
            let cfg = CsConfig { rank: 2, lambda: 0.05, ..CsConfig::default() };
            let est = complete_matrix(&sub, &cfg).unwrap();
            // Error on the target column (position 0).
            let mut num = 0.0;
            let mut den = 0.0;
            for t in 0..sub.num_slots() {
                if !sub.is_observed(t, 0) {
                    num += (sub_truth.get(t, 0) - est.get(t, 0)).abs();
                    den += sub_truth.get(t, 0).abs();
                }
            }
            num / den
        };

        let adaptive = select_correlated(&history, 0, 8);
        let adaptive_err = nmae_target(&adaptive);

        // Random selections of the same size (target first).
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut random_errs = Vec::new();
        for _ in 0..5 {
            let mut pool: Vec<usize> = (1..30).collect();
            pool.shuffle(&mut rng);
            let mut cols = vec![0usize];
            cols.extend(pool.into_iter().take(8));
            random_errs.push(nmae_target(&cols));
        }
        let random_mean = random_errs.iter().sum::<f64>() / random_errs.len() as f64;
        assert!(
            adaptive_err < random_mean,
            "adaptive {adaptive_err} vs random mean {random_mean} ({random_errs:?})"
        );
    }

    #[test]
    fn adaptive_matrix_shape() {
        let truth = heterogeneous_truth(48);
        let tcm = masked(&truth, 0.6, 6);
        let sub = adaptive_matrix(&tcm, 3, 5);
        assert_eq!(sub.num_segments(), 6);
        assert_eq!(sub.num_slots(), 48);
        // Column 0 is the target's data.
        for t in 0..48 {
            assert_eq!(sub.get(t, 0), tcm.get(t, 3));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_target_panics() {
        let truth = heterogeneous_truth(24);
        let tcm = masked(&truth, 0.5, 7);
        correlation_ranking(&tcm, 99);
    }
}
